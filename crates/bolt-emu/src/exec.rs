//! The functional emulator core.

use crate::block::{BlockCache, BlockTier, InjectedFault, TierCounts, TranslationMode};
use crate::spill::SpillIndex;
use crate::uop::{MicroOp, UopKind};
use crate::{BranchEvent, BranchKind, MemRecord, Memory, TraceSink, MAX_INST_LEN};
use bolt_isa::{decode, AluOp, Cond, Inst, Mem, Reg, Rm, ShiftOp, Target};
use std::fmt;

/// Fixed stack top for emulated programs.
pub const STACK_TOP: u64 = 0x7FFF_FF00_0000;
/// Return-address sentinel used by [`Machine::call_function`].
pub const RETURN_SENTINEL: u64 = 0xFFFF_FFFF_FFFF_FF00;

/// Arithmetic flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    pub zf: bool,
    pub sf: bool,
    pub of: bool,
    pub cf: bool,
    pub pf: bool,
}

impl Flags {
    /// Flags of a logical operation's result (`and`/`or`/`xor`/`test`):
    /// CF and OF cleared, ZF/SF/PF from the result. The single shared
    /// implementation behind every engine — the step engine computes it
    /// eagerly, the uop engine lazily at the first consumer.
    #[inline]
    pub fn of_logic(r: u64) -> Flags {
        Flags {
            zf: r == 0,
            sf: (r >> 63) != 0,
            of: false,
            cf: false,
            pf: (r as u8).count_ones().is_multiple_of(2),
        }
    }

    /// Flags of `a - b` (`sub`/`cmp`).
    #[inline]
    pub fn of_sub(a: u64, b: u64) -> Flags {
        let r = a.wrapping_sub(b);
        Flags {
            zf: r == 0,
            sf: (r >> 63) != 0,
            cf: a < b,
            of: (((a ^ b) & (a ^ r)) >> 63) != 0,
            pf: (r as u8).count_ones().is_multiple_of(2),
        }
    }

    /// Flags of `a + b`.
    #[inline]
    pub fn of_add(a: u64, b: u64) -> Flags {
        let r = a.wrapping_add(b);
        Flags {
            zf: r == 0,
            sf: (r >> 63) != 0,
            cf: r < a,
            of: ((!(a ^ b) & (a ^ r)) >> 63) != 0,
            pf: (r as u8).count_ones().is_multiple_of(2),
        }
    }

    /// Flags of a signed multiply producing `r`, with `over` reporting
    /// whether the full product overflowed 64 bits.
    #[inline]
    pub fn of_imul(r: i64, over: bool) -> Flags {
        Flags {
            zf: r == 0,
            sf: r < 0,
            of: over,
            cf: over,
            pf: (r as u8).count_ones().is_multiple_of(2),
        }
    }

    /// Flags of a nonzero-count shift producing `r` with carry-out `cf`.
    #[inline]
    pub fn of_shift(r: u64, cf: bool) -> Flags {
        Flags {
            zf: r == 0,
            sf: (r >> 63) != 0,
            of: false,
            cf,
            pf: (r as u8).count_ones().is_multiple_of(2),
        }
    }

    /// Evaluates a condition code against the flags.
    pub fn cond(&self, c: Cond) -> bool {
        match c {
            Cond::O => self.of,
            Cond::No => !self.of,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::P => self.pf,
            Cond::Np => !self.pf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || (self.sf != self.of),
            Cond::G => !self.zf && (self.sf == self.of),
        }
    }
}

/// Deferred flags state for the uop engine's lazy-flags optimization:
/// a flag-writing micro-op whose flags *are* consumed later records its
/// operands here (two or three stores, no `pf` popcount) instead of
/// computing the full [`Flags`] struct; the first consumer — a `jcc` or
/// `setcc` uop, or the run's exit — materializes them through the
/// shared [`Flags::of_logic`]-family helpers. Micro-ops whose flag
/// writes are provably dead (a later writer in the same block precedes
/// any reader) skip even this. Outside the uop hot loop the state is
/// always `Clean` and `Machine::flags` is architectural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum LazyFlags {
    /// `Machine::flags` is up to date.
    #[default]
    Clean,
    /// A logical op produced this result.
    Logic(u64),
    /// A subtraction/compare of these operands is pending.
    Sub(u64, u64),
    /// An addition of these operands is pending.
    Add(u64, u64),
    /// A signed multiply produced this result (with overflow bit).
    Imul(i64, bool),
    /// A nonzero shift produced this result (with carry-out).
    Shift(u64, bool),
}

/// Which execution engine drives a run.
///
/// All engines are observationally identical — same program output,
/// same retired-instruction counts, same trace-event stream as seen by
/// every sink (`tests/engine_invariance.rs` proves byte-identical
/// `Counters`, `Profile`, and rewritten ELF) — they differ only in
/// wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One fetch → decode-cache probe → dispatch per instruction
    /// ([`Machine::step`] in a loop). The reference engine.
    #[default]
    Step,
    /// Basic-block translation cache ([`Machine::run_blocks`]): decode a
    /// straight-line run once (blocks end at the first control transfer
    /// *or* memory-touching instruction), then execute its packed
    /// entries with no per-step fetch probe, charging the I-side
    /// footprint to the sink in one batched [`TraceSink::on_block`]
    /// call.
    Block,
    /// Superblock translation with chaining
    /// ([`Machine::run_superblocks`]): blocks span memory-touching
    /// instructions (roughly doubling typical block length), the
    /// batched event carries the executed instructions' memory records
    /// interleaved with the fetches, and a block's terminator caches
    /// its successor block so the hot loop skips the entry-index lookup
    /// entirely.
    Superblock,
    /// Pre-resolved micro-op execution ([`Machine::run_uops`]): blocks
    /// translate exactly like superblocks (same spanning, chaining, SMC,
    /// and event batching), but each decoded instruction is additionally
    /// *lowered* to a flat [`MicroOp`](crate::uop::MicroOp) — operands
    /// pre-resolved to register-file indices, immediates sign-extended,
    /// effective-address recipes split per addressing shape — so the hot
    /// loop is a linear sweep over a dense `#[repr(u8)]`-tagged array
    /// with no re-decode and no wide `Inst` match. Arithmetic flags are
    /// computed lazily: only micro-ops whose flags a later consumer
    /// actually reads record them (as pending operands), and dead flag
    /// writes are skipped outright. The fastest tier.
    Uop,
}

impl Engine {
    /// The accepted knob spellings, for error messages.
    pub const VALID: &'static str = "step|block|superblock|uop";
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "step" => Ok(Engine::Step),
            "block" => Ok(Engine::Block),
            "superblock" => Ok(Engine::Superblock),
            "uop" => Ok(Engine::Uop),
            other => Err(format!("expected one of {}, got {other:?}", Engine::VALID)),
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Step => "step",
            Engine::Block => "block",
            Engine::Superblock => "superblock",
            Engine::Uop => "uop",
        })
    }
}

/// Resolves an engine knob.
///
/// * `Some(engine)`: that engine.
/// * `None` (auto): the `BOLT_ENGINE` environment override (`step`,
///   `block`, `superblock`, or `uop`) if set, else [`Engine::Step`]. Like
///   `BOLT_THREADS` / `BOLT_SHARDS`, a set-but-garbled override fails
///   loudly instead of silently de-fanging a CI leg.
pub fn resolve_engine(engine: Option<Engine>) -> Engine {
    if let Some(e) = engine {
        return e;
    }
    if let Ok(v) = std::env::var("BOLT_ENGINE") {
        match v.trim().parse() {
            Ok(e) => return e,
            Err(msg) => panic!("BOLT_ENGINE: {msg}"),
        }
    }
    Engine::Step
}

/// The superblock engine's capture sink: records the executing block's
/// memory accesses (with their execute-time-resolved addresses, tagged
/// by instruction index) and its terminating branch, for delivery as
/// one interleaved [`BlockEvent`](crate::BlockEvent) followed by the
/// branch — the exact step-engine event order.
struct CaptureSink<'a> {
    mems: &'a mut Vec<MemRecord>,
    /// Index (within the block) of the instruction now executing.
    inst: u32,
    branch: Option<BranchEvent>,
}

impl TraceSink for CaptureSink<'_> {
    #[inline]
    fn on_mem(&mut self, addr: u64, len: u8, write: bool) {
        self.mems.push(MemRecord {
            inst: self.inst,
            addr,
            len,
            write,
        });
    }

    #[inline]
    fn on_branch(&mut self, ev: BranchEvent) {
        debug_assert!(self.branch.is_none(), "a block has at most one branch");
        self.branch = Some(ev);
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// The program invoked the exit syscall with this code.
    Exited(i64),
    /// The step budget ran out.
    MaxSteps,
    /// Control returned to the [`RETURN_SENTINEL`] (function-call mode).
    Returned,
}

/// Emulation errors (always fatal for the run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Bytes at `rip` did not decode.
    BadInstruction { rip: u64 },
    /// `ud2` executed.
    Trap { rip: u64 },
    /// Unknown syscall number.
    BadSyscall { rip: u64, number: u64 },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadInstruction { rip } => write!(f, "undecodable instruction at {rip:#x}"),
            EmuError::Trap { rip } => write!(f, "trap (ud2) at {rip:#x}"),
            EmuError::BadSyscall { rip, number } => {
                write!(f, "unsupported syscall {number} at {rip:#x}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    pub exit: Exit,
    /// Instructions retired.
    pub steps: u64,
}

/// The emulated machine: registers, flags, memory, and a decode cache.
///
/// # Examples
///
/// ```
/// use bolt_emu::Machine;
/// use bolt_elf::{Elf, Section};
///
/// // A binary whose entry point immediately exits with code 7:
/// //   movq $60, %rax ; movq $7, %rdi ; syscall
/// let code = vec![
///     0x48, 0xC7, 0xC0, 0x3C, 0, 0, 0,
///     0x48, 0xC7, 0xC7, 0x07, 0, 0, 0,
///     0x0F, 0x05,
/// ];
/// let mut elf = Elf::new(0x400000);
/// elf.sections.push(Section::code(".text", 0x400000, code));
///
/// let mut m = Machine::new();
/// m.load_elf(&elf);
/// let r = m.run(&mut bolt_emu::NullSink, 100)?;
/// assert_eq!(r.exit, bolt_emu::Exit::Exited(7));
/// # Ok::<(), bolt_emu::EmuError>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    pub regs: [u64; 16],
    pub flags: Flags,
    pub rip: u64,
    pub mem: Memory,
    /// Values written by the emit syscall — the program's observable
    /// output (used to verify BOLT preserves semantics).
    pub output: Vec<i64>,
    /// Flat decode-cache index covering the loaded text segment: slot
    /// `rip - icache_base` holds `entry + 1` into `icache_entries`, or
    /// 0 while undecoded. One `u32` per text byte (only instruction
    /// starts ever fill in); decoded instructions live packed in
    /// `icache_entries`, so the per-byte cost stays 4 bytes regardless
    /// of `size_of::<Inst>()`.
    icache_index: Vec<u32>,
    icache_entries: Vec<(Inst, u8)>,
    icache_base: u64,
    /// Decode cache for code executed outside the loaded text span
    /// (tests poke code into memory directly, and images wider than
    /// [`ICACHE_MAX_SPAN`] fall back here entirely): a sorted spill
    /// index with last-hit memo and bounded out-of-order pending
    /// buffer, shared with the block cache's out-of-span path.
    icache_spill: SpillIndex<(Inst, u8)>,
    /// Precomputed decode-cache watch range (flat span plus spill
    /// entries, with [`MAX_INST_LEN`] slack): a store outside
    /// `[icache_watch_lo, icache_watch_hi)` provably cannot overlap any
    /// cached decode, so `note_text_write`'s hot path is two compares.
    icache_watch_lo: u64,
    icache_watch_hi: u64,
    /// Basic-block translation cache for [`run_blocks`](Machine::run_blocks)
    /// and [`run_superblocks`](Machine::run_superblocks).
    blocks: BlockCache,
    /// Reused capture buffer for the superblock engine's per-block
    /// memory records.
    mem_buf: Vec<MemRecord>,
    /// Pending lazy-flags state (uop engine only; `Clean` — and `flags`
    /// architectural — at every observable boundary).
    lazy: LazyFlags,
}

/// Largest text span (in bytes) the flat decode cache covers — 32 MiB
/// of index per machine at 4 bytes per text byte. An image with
/// executable sections spread wider falls back to the spill map.
const ICACHE_MAX_SPAN: u64 = 8 << 20;

// Manual impl: the derive would zero-init the watch range, whose empty
// interval is `(u64::MAX, 0)` — a derived `(0, 0)` would let
// `spill_insert` pin `watch_lo` at 0 on machines never passed through
// `load_elf`, degrading the store fast path to the precise checks.
impl Default for Machine {
    fn default() -> Machine {
        Machine {
            regs: [0; 16],
            flags: Flags::default(),
            rip: 0,
            mem: Memory::default(),
            output: Vec::new(),
            icache_index: Vec::new(),
            icache_entries: Vec::new(),
            icache_base: 0,
            icache_spill: SpillIndex::default(),
            icache_watch_lo: u64::MAX,
            icache_watch_hi: 0,
            blocks: BlockCache::default(),
            mem_buf: Vec::new(),
            lazy: LazyFlags::Clean,
        }
    }
}

impl Machine {
    pub fn new() -> Machine {
        Machine::default()
    }

    /// Resets all architectural and cached state — registers, flags,
    /// memory, recorded output, and the decode caches — returning the
    /// machine to its freshly-constructed state. Called by [`load_elf`]
    /// so a machine can be reused across independent runs (e.g. one
    /// worker emulating many shards) without state from a previous
    /// program leaking into the next.
    ///
    /// [`load_elf`]: Machine::load_elf
    pub fn reset(&mut self) {
        self.regs = [0; 16];
        self.flags = Flags::default();
        self.rip = 0;
        self.mem.clear();
        self.output.clear();
        self.icache_index.clear();
        self.icache_entries.clear();
        self.icache_base = 0;
        self.icache_spill.clear();
        self.icache_watch_lo = u64::MAX;
        self.icache_watch_hi = 0;
        self.blocks.clear();
        self.mem_buf.clear();
        self.lazy = LazyFlags::Clean;
    }

    /// Loads all allocatable sections of an ELF image and initializes
    /// `rip`/`rsp`. The machine is fully [`reset`](Machine::reset)
    /// first: a reused machine behaves exactly like a fresh one.
    pub fn load_elf(&mut self, elf: &bolt_elf::Elf) {
        self.reset();
        for s in &elf.sections {
            if s.is_alloc() {
                self.mem.write(s.addr, &s.data);
            }
        }
        // Size the flat decode cache to the executable span.
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for s in &elf.sections {
            if s.is_alloc() && s.is_exec() && !s.data.is_empty() {
                lo = lo.min(s.addr);
                hi = hi.max(s.addr + s.data.len() as u64);
            }
        }
        if lo < hi && hi - lo <= ICACHE_MAX_SPAN {
            self.icache_base = lo;
            self.icache_index.resize((hi - lo) as usize, 0);
            self.icache_watch_lo = lo;
            self.icache_watch_hi = hi + MAX_INST_LEN;
        }
        self.rip = elf.entry;
        self.set_reg(Reg::Rsp, STACK_TOP - 64);
    }

    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.num() as usize]
    }

    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.num() as usize] = v;
    }

    /// Register access by pre-resolved micro-op index. The mask keeps
    /// the bounds check out of the hot loop; lowered indices are always
    /// in 0..16.
    #[inline(always)]
    fn r(&self, i: u8) -> u64 {
        self.regs[(i & 15) as usize]
    }

    #[inline(always)]
    fn set_r(&mut self, i: u8, v: u64) {
        self.regs[(i & 15) as usize] = v;
    }

    /// Effective address of a pre-resolved `base + disp` recipe.
    #[inline(always)]
    fn ea_bd(&self, op: &MicroOp) -> u64 {
        self.r(op.b).wrapping_add(op.imm as u64)
    }

    /// Effective address of a pre-resolved `base + index*scale + disp`
    /// recipe.
    #[inline(always)]
    fn ea_bis(&self, op: &MicroOp) -> u64 {
        self.r(op.b)
            .wrapping_add(self.r(op.c).wrapping_mul(op.d as u64))
            .wrapping_add(op.imm as u64)
    }

    fn effective_addr(&self, mem: &Mem) -> u64 {
        match mem {
            Mem::BaseDisp { base, disp } => self.reg(*base).wrapping_add(*disp as i64 as u64),
            Mem::BaseIndexScale {
                base,
                index,
                scale,
                disp,
            } => self
                .reg(*base)
                .wrapping_add(self.reg(*index).wrapping_mul(*scale as u64))
                .wrapping_add(*disp as i64 as u64),
            Mem::RipRel { target } => match target {
                Target::Addr(a) => *a,
                Target::Label(_) => panic!("unresolved label reached the emulator"),
            },
        }
    }

    fn fetch(&mut self, rip: u64) -> Result<(Inst, u8), EmuError> {
        // Fast path: the flat index over the loaded text segment.
        let slot = rip
            .checked_sub(self.icache_base)
            .map(|o| o as usize)
            .filter(|&o| o < self.icache_index.len());
        if let Some(o) = slot {
            let e = self.icache_index[o];
            if e != 0 {
                return Ok(self.icache_entries[(e - 1) as usize]);
            }
        } else if let Some(hit) = self.icache_spill.lookup(rip) {
            return Ok(hit);
        }
        let mut buf = [0u8; 16];
        self.mem.read(rip, &mut buf);
        let d = decode(&buf, rip).map_err(|_| EmuError::BadInstruction { rip })?;
        match slot {
            Some(o) => {
                self.icache_entries.push((d.inst, d.len));
                self.icache_index[o] = self.icache_entries.len() as u32;
            }
            None => self.spill_insert(rip, (d.inst, d.len)),
        }
        Ok((d.inst, d.len))
    }

    /// Caches an out-of-span decode in the sorted spill index, growing
    /// the watch range to cover it.
    fn spill_insert(&mut self, rip: u64, entry: (Inst, u8)) {
        self.icache_watch_lo = self.icache_watch_lo.min(rip);
        self.icache_watch_hi = self.icache_watch_hi.max(rip + MAX_INST_LEN);
        self.icache_spill.insert(rip, entry);
    }

    /// Invalidates the decode and block-translation caches when a store
    /// lands in cached text. The fast path (stores to data/stack) is two
    /// range compares; programs that patch their own code pay a full
    /// flush, and both engines then refetch the new bytes — a store into
    /// text behaves architecturally under either engine.
    fn note_text_write(&mut self, addr: u64, len: u64) {
        // Hot path: both cache layers keep a precomputed watch range
        // over everything they have cached, so a store to data or the
        // stack costs four compares total.
        self.blocks.note_write(addr, len);
        if addr >= self.icache_watch_hi || addr + len <= self.icache_watch_lo {
            return;
        }
        // The store may overlap cached decodes: run the precise
        // per-structure checks and flush whatever matches.
        if !self.icache_index.is_empty() {
            let hi = self.icache_base + self.icache_index.len() as u64;
            if addr < hi + MAX_INST_LEN && addr + len > self.icache_base {
                self.icache_index.fill(0);
                self.icache_entries.clear();
            }
        }
        if let Some((first, last)) = self.icache_spill.bounds() {
            if addr < last + MAX_INST_LEN && addr + len > first {
                self.icache_spill.clear();
            }
        }
    }

    fn set_flags_logic(&mut self, r: u64) {
        self.flags = Flags::of_logic(r);
    }

    fn set_flags_sub(&mut self, a: u64, b: u64) -> u64 {
        self.flags = Flags::of_sub(a, b);
        a.wrapping_sub(b)
    }

    fn set_flags_add(&mut self, a: u64, b: u64) -> u64 {
        self.flags = Flags::of_add(a, b);
        a.wrapping_add(b)
    }

    /// Folds any pending lazy-flags state into `self.flags`. Called by
    /// the uop engine at each flags consumer and at every boundary where
    /// `flags` becomes observable (run exit, fallback to exact
    /// stepping); a no-op everywhere else, since only uop execution ever
    /// leaves the state non-`Clean`.
    #[inline]
    fn materialize_flags(&mut self) {
        match std::mem::replace(&mut self.lazy, LazyFlags::Clean) {
            LazyFlags::Clean => {}
            LazyFlags::Logic(r) => self.flags = Flags::of_logic(r),
            LazyFlags::Sub(a, b) => self.flags = Flags::of_sub(a, b),
            LazyFlags::Add(a, b) => self.flags = Flags::of_add(a, b),
            LazyFlags::Imul(r, over) => self.flags = Flags::of_imul(r, over),
            LazyFlags::Shift(r, cf) => self.flags = Flags::of_shift(r, cf),
        }
    }

    fn alu(&mut self, op: AluOp, a: u64, b: u64) -> u64 {
        match op {
            AluOp::Add => self.set_flags_add(a, b),
            AluOp::Sub => self.set_flags_sub(a, b),
            AluOp::Cmp => {
                self.set_flags_sub(a, b);
                a
            }
            AluOp::And => {
                let r = a & b;
                self.set_flags_logic(r);
                r
            }
            AluOp::Or => {
                let r = a | b;
                self.set_flags_logic(r);
                r
            }
            AluOp::Xor => {
                let r = a ^ b;
                self.set_flags_logic(r);
                r
            }
        }
    }

    fn push<S: TraceSink + ?Sized>(&mut self, v: u64, sink: &mut S) {
        let rsp = self.reg(Reg::Rsp).wrapping_sub(8);
        self.set_reg(Reg::Rsp, rsp);
        self.mem.write_u64(rsp, v);
        self.note_text_write(rsp, 8);
        sink.on_mem(rsp, 8, true);
    }

    fn pop<S: TraceSink + ?Sized>(&mut self, sink: &mut S) -> u64 {
        let rsp = self.reg(Reg::Rsp);
        let v = self.mem.read_u64(rsp);
        sink.on_mem(rsp, 8, false);
        self.set_reg(Reg::Rsp, rsp.wrapping_add(8));
        v
    }

    fn resolve_rm<S: TraceSink + ?Sized>(&mut self, rm: &Rm, sink: &mut S) -> u64 {
        match rm {
            Rm::Reg(r) => self.reg(*r),
            Rm::Mem(m) => {
                let ea = self.effective_addr(m);
                sink.on_mem(ea, 8, false);
                self.mem.read_u64(ea)
            }
        }
    }

    /// Executes one instruction. Returns `Some(exit)` when the program
    /// terminates.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn step<S: TraceSink + ?Sized>(&mut self, sink: &mut S) -> Result<Option<Exit>, EmuError> {
        let rip = self.rip;
        let (inst, len) = self.fetch(rip)?;
        sink.on_inst(rip, len);
        self.exec_inst(rip, inst, len, sink)
    }

    /// Executes one already-decoded instruction at `rip` (occupying
    /// `len` bytes), advancing `self.rip`. The caller has already
    /// charged the fetch to the sink — `on_inst` ([`step`](Machine::step))
    /// or a batched `on_block` ([`run_blocks`](Machine::run_blocks)).
    fn exec_inst<S: TraceSink + ?Sized>(
        &mut self,
        rip: u64,
        inst: Inst,
        len: u8,
        sink: &mut S,
    ) -> Result<Option<Exit>, EmuError> {
        let next = rip + len as u64;
        let mut new_rip = next;

        match inst {
            Inst::Push(r) => {
                let v = self.reg(r);
                self.push(v, sink);
            }
            Inst::Pop(r) => {
                let v = self.pop(sink);
                self.set_reg(r, v);
            }
            Inst::MovRR { dst, src } => {
                let v = self.reg(src);
                self.set_reg(dst, v);
            }
            Inst::MovRI { dst, imm } => self.set_reg(dst, imm as u64),
            Inst::MovRSym { dst, target } => {
                let Target::Addr(a) = target else {
                    panic!("unresolved symbol reached the emulator");
                };
                self.set_reg(dst, a);
            }
            Inst::Load { dst, mem } => {
                let ea = self.effective_addr(&mem);
                sink.on_mem(ea, 8, false);
                let v = self.mem.read_u64(ea);
                self.set_reg(dst, v);
            }
            Inst::Store { mem, src } => {
                let ea = self.effective_addr(&mem);
                sink.on_mem(ea, 8, true);
                let v = self.reg(src);
                self.mem.write_u64(ea, v);
                self.note_text_write(ea, 8);
            }
            Inst::Lea { dst, mem } => {
                let ea = self.effective_addr(&mem);
                self.set_reg(dst, ea);
            }
            Inst::Alu { op, dst, src } => {
                let r = self.alu(op, self.reg(dst), self.reg(src));
                if op.writes_dst() {
                    self.set_reg(dst, r);
                }
            }
            Inst::AluI { op, dst, imm } => {
                let r = self.alu(op, self.reg(dst), imm as i64 as u64);
                if op.writes_dst() {
                    self.set_reg(dst, r);
                }
            }
            Inst::Test { a, b } => {
                let r = self.reg(a) & self.reg(b);
                self.set_flags_logic(r);
            }
            Inst::Imul { dst, src } => {
                let a = self.reg(dst) as i64;
                let b = self.reg(src) as i64;
                let (r, over) = a.overflowing_mul(b);
                self.flags = Flags::of_imul(r, over);
                self.set_reg(dst, r as u64);
            }
            Inst::Shift { op, dst, amount } => {
                let a = self.reg(dst);
                let c = (amount & 63) as u32;
                if c != 0 {
                    let (r, cf) = match op {
                        ShiftOp::Shl => (a.wrapping_shl(c), (a >> (64 - c)) & 1 != 0),
                        ShiftOp::Shr => (a.wrapping_shr(c), (a >> (c - 1)) & 1 != 0),
                        ShiftOp::Sar => (
                            ((a as i64).wrapping_shr(c)) as u64,
                            ((a as i64) >> (c - 1)) & 1 != 0,
                        ),
                    };
                    self.flags = Flags::of_shift(r, cf);
                    self.set_reg(dst, r);
                }
            }
            Inst::Setcc { cond, dst } => {
                let bit = u64::from(self.flags.cond(cond));
                let old = self.reg(dst);
                self.set_reg(dst, (old & !0xFF) | bit);
            }
            Inst::Movzx8 { dst, src } => {
                let v = self.reg(src) & 0xFF;
                self.set_reg(dst, v);
            }
            Inst::Jcc { cond, target, .. } => {
                let taken = self.flags.cond(cond);
                let tgt = target.addr().expect("decoded branches are resolved");
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: if taken { tgt } else { next },
                    taken,
                    kind: BranchKind::Cond,
                });
                if taken {
                    new_rip = tgt;
                }
            }
            Inst::Jmp { target, .. } => {
                let tgt = target.addr().expect("decoded branches are resolved");
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::Uncond,
                });
                new_rip = tgt;
            }
            Inst::JmpInd { rm } => {
                let tgt = self.resolve_rm(&rm, sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::IndirectJump,
                });
                new_rip = tgt;
            }
            Inst::Call { target } => {
                let tgt = target.addr().expect("decoded branches are resolved");
                self.push(next, sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::Call,
                });
                new_rip = tgt;
            }
            Inst::CallInd { rm } => {
                let tgt = self.resolve_rm(&rm, sink);
                self.push(next, sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::IndirectCall,
                });
                new_rip = tgt;
            }
            Inst::Ret | Inst::RepzRet => {
                let tgt = self.pop(sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::Return,
                });
                if tgt == RETURN_SENTINEL {
                    self.rip = tgt;
                    return Ok(Some(Exit::Returned));
                }
                new_rip = tgt;
            }
            Inst::Nop { .. } => {}
            Inst::Ud2 => return Err(EmuError::Trap { rip }),
            Inst::Syscall => {
                let nr = self.reg(Reg::Rax);
                match nr {
                    1 => {
                        // "emit": record rdi as program output.
                        let v = self.reg(Reg::Rdi) as i64;
                        self.output.push(v);
                        self.set_reg(Reg::Rax, 8);
                    }
                    60 | 231 => {
                        self.rip = next;
                        return Ok(Some(Exit::Exited(self.reg(Reg::Rdi) as i64)));
                    }
                    number => return Err(EmuError::BadSyscall { rip, number }),
                }
            }
        }

        self.rip = new_rip;
        Ok(None)
    }

    /// Runs until exit, error, or `max_steps` instructions, under the
    /// engine [`resolve_engine`] picks (the `BOLT_ENGINE` environment
    /// override, defaulting to per-instruction stepping). All engines
    /// are observationally identical — see [`Engine`].
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn run<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        max_steps: u64,
    ) -> Result<RunResult, EmuError> {
        self.run_engine(sink, max_steps, resolve_engine(None))
    }

    /// [`run`](Machine::run) with an explicit engine choice.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn run_engine<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        max_steps: u64,
        engine: Engine,
    ) -> Result<RunResult, EmuError> {
        match engine {
            Engine::Step => self.run_steps(sink, max_steps),
            Engine::Block => self.run_blocks(sink, max_steps),
            Engine::Superblock => self.run_superblocks(sink, max_steps),
            Engine::Uop => self.run_uops(sink, max_steps),
        }
    }

    /// The step engine: fetch → dispatch per instruction.
    fn run_steps<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        max_steps: u64,
    ) -> Result<RunResult, EmuError> {
        let mut steps = 0u64;
        while steps < max_steps {
            steps += 1;
            if let Some(exit) = self.step(sink)? {
                return Ok(RunResult { exit, steps });
            }
        }
        Ok(RunResult {
            exit: Exit::MaxSteps,
            steps,
        })
    }

    /// The block engine: executes translated basic blocks from the
    /// translation cache — decode once per block, then a tight loop over
    /// packed pre-decoded entries with a single batched
    /// [`TraceSink::on_block`] charge for the block's I-side footprint.
    ///
    /// Blocks end at the first control transfer *or* memory-touching
    /// instruction (so all `on_mem`/`on_branch` events come from a
    /// block's final instruction, and the sink-visible event order is
    /// exactly the step engine's), self-invalidate on stores into text,
    /// and code outside the flat text span translates through the
    /// cache's sorted spill index. A step budget landing inside a block
    /// finishes with per-instruction stepping, so [`Exit::MaxSteps`]
    /// triggers at exactly the same retired count as the step engine.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn run_blocks<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        max_steps: u64,
    ) -> Result<RunResult, EmuError> {
        self.blocks.ensure_span(
            self.icache_base,
            self.icache_index.len(),
            TranslationMode::Block,
        );
        let mut steps = 0u64;
        while steps < max_steps {
            // Reclaim invalidated pools only between blocks: a store is
            // always a block's last instruction, so nothing is ever
            // executing out of the pools when they are rebuilt.
            self.blocks.reclaim();
            let rip = self.rip;
            let idx = match self.blocks.lookup(rip) {
                Some(i) => i,
                None => self.blocks.translate(&self.mem, rip)?,
            };
            let (range, entry) = self.blocks.inst_range(idx);
            let count = range.len() as u64;
            if max_steps - steps < count {
                // The budget lands inside this block: finish with exact
                // per-instruction stepping so MaxSteps fires at the same
                // retired count as the step engine.
                while steps < max_steps {
                    steps += 1;
                    if let Some(exit) = self.step(sink)? {
                        return Ok(RunResult { exit, steps });
                    }
                }
                break;
            }
            if self.blocks.tier(idx) == BlockTier::Step {
                // Degraded block: its packed entries are untrusted, so
                // retire the same instruction count through the
                // interpreter's architectural fetch path instead.
                for _ in 0..count {
                    steps += 1;
                    if let Some(exit) = self.step(sink)? {
                        return Ok(RunResult { exit, steps });
                    }
                }
                continue;
            }
            sink.on_block(self.blocks.event(idx));
            let mut at = entry;
            for i in range {
                let (inst, len) = self.blocks.inst(i);
                steps += 1;
                if let Some(exit) = self.exec_inst(at, inst, len, sink)? {
                    return Ok(RunResult { exit, steps });
                }
                at += len as u64;
            }
        }
        Ok(RunResult {
            exit: Exit::MaxSteps,
            steps,
        })
    }

    /// The superblock engine: like [`run_blocks`](Machine::run_blocks),
    /// but blocks span memory-touching instructions (ending only at
    /// control transfers), and consecutive blocks *chain* — a block's
    /// terminator caches its successor block index so the hot loop
    /// skips the entry-index lookup on direct jumps and fall-throughs.
    ///
    /// Event-order exactness: a block with no memory-touching
    /// instructions charges its event up front (all its events are
    /// fetches, plus a possible terminating branch — already in step
    /// order). A block with memory accesses executes against a capture
    /// buffer first, then emits one [`TraceSink::on_block`] whose
    /// fetch records and [`MemRecord`]s interleave by instruction
    /// index, followed by the terminator's live branch event — exactly
    /// the step engine's order. Stores into cached text set the cache's
    /// dirty flag; the engine checks it after every executed
    /// instruction and abandons the packed entries mid-block (emitting
    /// the executed prefix's event), so self-modifying code — even code
    /// patching *later instructions of the same block* — refetches the
    /// patched bytes just like the step engine. A step budget landing
    /// inside a block finishes with per-instruction stepping, so
    /// [`Exit::MaxSteps`] fires at exactly the same retired count.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn run_superblocks<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        max_steps: u64,
    ) -> Result<RunResult, EmuError> {
        let mut mems = std::mem::take(&mut self.mem_buf);
        let r = self.run_superblocks_inner(sink, max_steps, &mut mems);
        mems.clear();
        self.mem_buf = mems;
        r
    }

    fn run_superblocks_inner<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        max_steps: u64,
        mems: &mut Vec<MemRecord>,
    ) -> Result<RunResult, EmuError> {
        self.blocks.ensure_span(
            self.icache_base,
            self.icache_index.len(),
            TranslationMode::Superblock,
        );
        let mut steps = 0u64;
        // The block just executed, if its chain links are still valid —
        // the source end of the next transition's cached link.
        let mut prev: Option<u32> = None;
        while steps < max_steps {
            // Reclaim invalidated pools only between blocks; any chain
            // state died with them.
            if self.blocks.reclaim() {
                prev = None;
            }
            let rip = self.rip;
            let idx = match prev.and_then(|p| self.blocks.linked(p, rip)) {
                Some(i) => i,
                None => {
                    let i = match self.blocks.lookup(rip) {
                        Some(i) => i,
                        None => self.blocks.translate(&self.mem, rip)?,
                    };
                    if let Some(p) = prev {
                        self.blocks.install_link(p, rip, i);
                    }
                    i
                }
            };
            let (range, _, _) = self.blocks.block_info(idx);
            let count = range.len() as u64;
            if max_steps - steps < count {
                // The budget lands inside this block: finish with exact
                // per-instruction stepping so MaxSteps fires at the same
                // retired count as the step engine.
                while steps < max_steps {
                    steps += 1;
                    if let Some(exit) = self.step(sink)? {
                        return Ok(RunResult { exit, steps });
                    }
                }
                break;
            }
            if self.blocks.tier(idx) == BlockTier::Step {
                // Degraded block: its packed entries are untrusted, so
                // retire the same instruction count through the
                // interpreter's architectural fetch path instead.
                for _ in 0..count {
                    steps += 1;
                    if let Some(exit) = self.step(sink)? {
                        return Ok(RunResult { exit, steps });
                    }
                }
                prev = None;
                continue;
            }
            let (executed, outcome) = self.exec_block_insts(idx, sink, mems);
            steps += executed as u64;
            if let Some(exit) = outcome? {
                return Ok(RunResult { exit, steps });
            }
            prev = if (executed as u64) < count {
                None
            } else {
                Some(idx)
            };
        }
        Ok(RunResult {
            exit: Exit::MaxSteps,
            steps,
        })
    }

    /// Executes one translated block's *decoded* instruction entries
    /// with superblock event batching, returning how many instructions
    /// were attempted (including one that exited or faulted) and the
    /// outcome of the last attempt. Shared by the superblock engine and
    /// the uop engine's decoded-tier fallback.
    ///
    /// A block with no memory-touching instructions charges its event
    /// up front and executes with the live sink; a block with memory
    /// accesses executes against a capture buffer, then emits one
    /// prefix event with interleaved records followed by the
    /// terminator's branch — exactly the step engine's event order.
    /// `executed < range.len()` means the block was abandoned mid-way
    /// (SMC dirty, exit, or error) and any chain state is stale.
    fn exec_block_insts<S: TraceSink + ?Sized>(
        &mut self,
        idx: u32,
        sink: &mut S,
        mems: &mut Vec<MemRecord>,
    ) -> (u32, Result<Option<Exit>, EmuError>) {
        let (range, entry, has_mems) = self.blocks.block_info(idx);
        if !has_mems {
            // No D-side events anywhere in the block: charge the
            // event up front and execute with the live sink (its
            // only other possible event, a terminating branch,
            // follows the fetches in step order too).
            sink.on_block(self.blocks.event(idx));
            let mut at = entry;
            let mut executed = 0u32;
            for i in range {
                let (inst, len) = self.blocks.inst(i);
                executed += 1;
                match self.exec_inst(at, inst, len, sink) {
                    Ok(None) => {}
                    other => return (executed, other),
                }
                at += len as u64;
            }
            return (executed, Ok(None));
        }
        // Memory accesses mid-block: execute against a capture
        // buffer, then emit one event carrying the interleaved
        // fetch + memory records, then the terminator's branch.
        mems.clear();
        let mut cap = CaptureSink {
            mems: &mut *mems,
            inst: 0,
            branch: None,
        };
        let mut at = entry;
        let mut executed = 0u32;
        let mut outcome = Ok(None);
        for i in range {
            let (inst, len) = self.blocks.inst(i);
            cap.inst = executed;
            executed += 1;
            match self.exec_inst(at, inst, len, &mut cap) {
                Ok(None) => {}
                other => {
                    outcome = other;
                    break;
                }
            }
            at += len as u64;
            // A store may have patched cached text — possibly this
            // very block's later instructions. Abandon the packed
            // entries; the prefix event reports exactly what
            // retired, and the patched bytes retranslate next
            // iteration.
            if self.blocks.is_dirty() {
                break;
            }
        }
        let branch = cap.branch;
        debug_assert!(
            {
                let shapes = self.blocks.shapes(idx);
                mems.len() <= shapes.len()
                    && mems
                        .iter()
                        .zip(shapes)
                        .all(|(m, s)| m.inst == s.inst && m.write == s.write)
            },
            "captured records must match the translation-time shapes"
        );
        sink.on_block(self.blocks.prefix_event(idx, executed, mems));
        if let Some(ev) = branch {
            sink.on_branch(ev);
        }
        (executed, outcome)
    }

    /// The uop engine: superblock translation and chaining, but the hot
    /// loop executes *lowered micro-ops* ([`crate::uop`]) instead of
    /// re-dispatching decoded [`Inst`]s — operands are already direct
    /// register-file indices, immediates are sign-extended, effective
    /// addresses are per-shape recipes, and the dispatch is one dense
    /// jump table over a `#[repr(u8)]` tag. Arithmetic flags are lazy:
    /// only micro-ops whose flags a later op actually consumes record
    /// them (as pending operands in [`LazyFlags`]), the full
    /// [`Flags`] — including the `pf` popcount — materializes at the
    /// first consumer, and provably-dead flag writes are skipped
    /// outright.
    ///
    /// Everything the superblock engine guarantees carries over
    /// unchanged — event order (batched [`TraceSink::on_block`] with
    /// interleaved memory records, then the live branch), SMC
    /// self-invalidation with mid-block abandonment, chain links, spill
    /// translation, and the exact [`Exit::MaxSteps`] fallback to
    /// per-instruction stepping (the decoded pool stays populated
    /// alongside the micro-ops for precisely that path). Pending lazy
    /// flags materialize at every boundary where `flags` becomes
    /// observable: flag consumers, the stepping fallback, and run exit.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn run_uops<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        max_steps: u64,
    ) -> Result<RunResult, EmuError> {
        let mut mems = std::mem::take(&mut self.mem_buf);
        let r = self.run_uops_inner(sink, max_steps, &mut mems);
        // Whatever pending state the hot loop left becomes architectural
        // before flags are observable to the caller — on normal exit,
        // MaxSteps, and errors alike.
        self.materialize_flags();
        mems.clear();
        self.mem_buf = mems;
        r
    }

    fn run_uops_inner<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        max_steps: u64,
        mems: &mut Vec<MemRecord>,
    ) -> Result<RunResult, EmuError> {
        self.blocks.ensure_span(
            self.icache_base,
            self.icache_index.len(),
            TranslationMode::Uop,
        );
        let mut steps = 0u64;
        // The block just executed, if its chain links are still valid —
        // the source end of the next transition's cached link.
        let mut prev: Option<u32> = None;
        while steps < max_steps {
            // Reclaim invalidated pools only between blocks; any chain
            // state died with them.
            if self.blocks.reclaim() {
                prev = None;
            }
            let rip = self.rip;
            let idx = match prev.and_then(|p| self.blocks.linked(p, rip)) {
                Some(i) => i,
                None => {
                    let i = match self.blocks.lookup(rip) {
                        Some(i) => i,
                        None => self.blocks.translate(&self.mem, rip)?,
                    };
                    if let Some(p) = prev {
                        self.blocks.install_link(p, rip, i);
                    }
                    i
                }
            };
            let (range, entry, has_mems) = self.blocks.block_info(idx);
            let count = range.len() as u64;
            if max_steps - steps < count {
                // The budget lands inside this block: materialize any
                // pending flags and finish with exact per-instruction
                // stepping so MaxSteps fires at the same retired count
                // as the step engine.
                self.materialize_flags();
                while steps < max_steps {
                    steps += 1;
                    if let Some(exit) = self.step(sink)? {
                        return Ok(RunResult { exit, steps });
                    }
                }
                break;
            }
            let tier = self.blocks.tier(idx);
            if tier != BlockTier::Full {
                // Degraded block: any pending lazy flags become
                // architectural before a fallback path reads or
                // rewrites them.
                self.materialize_flags();
                if tier == BlockTier::Step {
                    // The packed entries are untrusted end to end;
                    // retire the same instruction count through the
                    // interpreter's architectural fetch path.
                    for _ in 0..count {
                        steps += 1;
                        if let Some(exit) = self.step(sink)? {
                            return Ok(RunResult { exit, steps });
                        }
                    }
                    prev = None;
                    continue;
                }
                // Decoded tier: the lowered micro-ops are untrusted but
                // the decoded entries validated clean — execute them
                // with full superblock batching; the uop pool is never
                // read.
                let (executed, outcome) = self.exec_block_insts(idx, sink, mems);
                steps += executed as u64;
                if let Some(exit) = outcome? {
                    return Ok(RunResult { exit, steps });
                }
                prev = if (executed as u64) < count {
                    None
                } else {
                    Some(idx)
                };
                continue;
            }
            if !has_mems {
                // No D-side events anywhere in the block: charge the
                // event up front and execute with the live sink.
                sink.on_block(self.blocks.event(idx));
                let mut at = entry;
                for i in range {
                    let op = self.blocks.uop(i);
                    steps += 1;
                    if let Some(exit) = self.exec_uop(at, op, sink)? {
                        return Ok(RunResult { exit, steps });
                    }
                    at += op.len as u64;
                }
                prev = Some(idx);
                continue;
            }
            // Memory accesses mid-block: execute against a capture
            // buffer, then emit one event carrying the interleaved
            // fetch + memory records, then the terminator's branch.
            mems.clear();
            let mut cap = CaptureSink {
                mems: &mut *mems,
                inst: 0,
                branch: None,
            };
            let mut at = entry;
            let mut executed = 0u32;
            let mut outcome = Ok(None);
            for i in range {
                let op = self.blocks.uop(i);
                cap.inst = executed;
                steps += 1;
                executed += 1;
                match self.exec_uop(at, op, &mut cap) {
                    Ok(None) => {}
                    other => {
                        outcome = other;
                        break;
                    }
                }
                at += op.len as u64;
                // A store may have patched cached text — possibly this
                // very block's later micro-ops. Abandon the packed
                // entries; the prefix event reports exactly what
                // retired, and the patched bytes retranslate (and
                // re-lower) next iteration.
                if self.blocks.is_dirty() {
                    break;
                }
            }
            let branch = cap.branch;
            debug_assert!(
                {
                    let shapes = self.blocks.shapes(idx);
                    mems.len() <= shapes.len()
                        && mems
                            .iter()
                            .zip(shapes)
                            .all(|(m, s)| m.inst == s.inst && m.write == s.write)
                },
                "captured records must match the translation-time shapes"
            );
            sink.on_block(self.blocks.prefix_event(idx, executed, mems));
            if let Some(ev) = branch {
                sink.on_branch(ev);
            }
            if let Some(exit) = outcome? {
                return Ok(RunResult { exit, steps });
            }
            prev = if (executed as u64) < count {
                None
            } else {
                Some(idx)
            };
        }
        Ok(RunResult {
            exit: Exit::MaxSteps,
            steps,
        })
    }

    /// Executes one lowered micro-op at `rip`, advancing `self.rip`. The
    /// uop-engine counterpart of [`exec_inst`](Machine::exec_inst):
    /// observationally identical per instruction (same memory, branch,
    /// output, and exit behavior through the sink), but with operands
    /// pre-resolved and flag writes deferred into [`LazyFlags`] (and
    /// skipped entirely when provably dead).
    fn exec_uop<S: TraceSink + ?Sized>(
        &mut self,
        rip: u64,
        op: MicroOp,
        sink: &mut S,
    ) -> Result<Option<Exit>, EmuError> {
        let next = rip + op.len as u64;
        let mut new_rip = next;

        match op.kind {
            UopKind::MovRR => {
                let v = self.r(op.b);
                self.set_r(op.a, v);
            }
            UopKind::MovRI => self.set_r(op.a, op.imm as u64),
            UopKind::LoadBD => {
                let ea = self.ea_bd(&op);
                sink.on_mem(ea, 8, false);
                let v = self.mem.read_u64(ea);
                self.set_r(op.a, v);
            }
            UopKind::LoadBIS => {
                let ea = self.ea_bis(&op);
                sink.on_mem(ea, 8, false);
                let v = self.mem.read_u64(ea);
                self.set_r(op.a, v);
            }
            UopKind::LoadAbs => {
                let ea = op.imm as u64;
                sink.on_mem(ea, 8, false);
                let v = self.mem.read_u64(ea);
                self.set_r(op.a, v);
            }
            UopKind::StoreBD => {
                let ea = self.ea_bd(&op);
                sink.on_mem(ea, 8, true);
                let v = self.r(op.a);
                self.mem.write_u64(ea, v);
                self.note_text_write(ea, 8);
            }
            UopKind::StoreBIS => {
                let ea = self.ea_bis(&op);
                sink.on_mem(ea, 8, true);
                let v = self.r(op.a);
                self.mem.write_u64(ea, v);
                self.note_text_write(ea, 8);
            }
            UopKind::StoreAbs => {
                let ea = op.imm as u64;
                sink.on_mem(ea, 8, true);
                let v = self.r(op.a);
                self.mem.write_u64(ea, v);
                self.note_text_write(ea, 8);
            }
            UopKind::LeaBD => {
                let ea = self.ea_bd(&op);
                self.set_r(op.a, ea);
            }
            UopKind::LeaBIS => {
                let ea = self.ea_bis(&op);
                self.set_r(op.a, ea);
            }
            UopKind::Push => {
                let v = self.r(op.a);
                self.push(v, sink);
            }
            UopKind::Pop => {
                let v = self.pop(sink);
                self.set_r(op.a, v);
            }
            UopKind::AddRR => {
                let a = self.r(op.a);
                let b = self.r(op.b);
                if op.fl {
                    self.lazy = LazyFlags::Add(a, b);
                }
                self.set_r(op.a, a.wrapping_add(b));
            }
            UopKind::AddRI => {
                let a = self.r(op.a);
                let b = op.imm as u64;
                if op.fl {
                    self.lazy = LazyFlags::Add(a, b);
                }
                self.set_r(op.a, a.wrapping_add(b));
            }
            UopKind::SubRR => {
                let a = self.r(op.a);
                let b = self.r(op.b);
                if op.fl {
                    self.lazy = LazyFlags::Sub(a, b);
                }
                self.set_r(op.a, a.wrapping_sub(b));
            }
            UopKind::SubRI => {
                let a = self.r(op.a);
                let b = op.imm as u64;
                if op.fl {
                    self.lazy = LazyFlags::Sub(a, b);
                }
                self.set_r(op.a, a.wrapping_sub(b));
            }
            UopKind::AndRR => {
                let r = self.r(op.a) & self.r(op.b);
                if op.fl {
                    self.lazy = LazyFlags::Logic(r);
                }
                self.set_r(op.a, r);
            }
            UopKind::AndRI => {
                let r = self.r(op.a) & op.imm as u64;
                if op.fl {
                    self.lazy = LazyFlags::Logic(r);
                }
                self.set_r(op.a, r);
            }
            UopKind::OrRR => {
                let r = self.r(op.a) | self.r(op.b);
                if op.fl {
                    self.lazy = LazyFlags::Logic(r);
                }
                self.set_r(op.a, r);
            }
            UopKind::OrRI => {
                let r = self.r(op.a) | op.imm as u64;
                if op.fl {
                    self.lazy = LazyFlags::Logic(r);
                }
                self.set_r(op.a, r);
            }
            UopKind::XorRR => {
                let r = self.r(op.a) ^ self.r(op.b);
                if op.fl {
                    self.lazy = LazyFlags::Logic(r);
                }
                self.set_r(op.a, r);
            }
            UopKind::XorRI => {
                let r = self.r(op.a) ^ op.imm as u64;
                if op.fl {
                    self.lazy = LazyFlags::Logic(r);
                }
                self.set_r(op.a, r);
            }
            UopKind::CmpRR => {
                // A compare only produces flags — dead ones vanish.
                if op.fl {
                    self.lazy = LazyFlags::Sub(self.r(op.a), self.r(op.b));
                }
            }
            UopKind::CmpRI => {
                if op.fl {
                    self.lazy = LazyFlags::Sub(self.r(op.a), op.imm as u64);
                }
            }
            UopKind::Test => {
                if op.fl {
                    self.lazy = LazyFlags::Logic(self.r(op.a) & self.r(op.b));
                }
            }
            UopKind::Imul => {
                let a = self.r(op.a) as i64;
                let b = self.r(op.b) as i64;
                let (r, over) = a.overflowing_mul(b);
                if op.fl {
                    self.lazy = LazyFlags::Imul(r, over);
                }
                self.set_r(op.a, r as u64);
            }
            UopKind::Shl => {
                // Lowering guarantees a count in 1..=63.
                let a = self.r(op.a);
                let c = op.c as u32;
                let r = a.wrapping_shl(c);
                if op.fl {
                    self.lazy = LazyFlags::Shift(r, (a >> (64 - c)) & 1 != 0);
                }
                self.set_r(op.a, r);
            }
            UopKind::Shr => {
                let a = self.r(op.a);
                let c = op.c as u32;
                let r = a.wrapping_shr(c);
                if op.fl {
                    self.lazy = LazyFlags::Shift(r, (a >> (c - 1)) & 1 != 0);
                }
                self.set_r(op.a, r);
            }
            UopKind::Sar => {
                let a = self.r(op.a);
                let c = op.c as u32;
                let r = (a as i64).wrapping_shr(c) as u64;
                if op.fl {
                    self.lazy = LazyFlags::Shift(r, ((a as i64) >> (c - 1)) & 1 != 0);
                }
                self.set_r(op.a, r);
            }
            UopKind::Setcc => {
                self.materialize_flags();
                let cond = Cond::from_cc(op.c).expect("lowered cc is valid");
                let bit = u64::from(self.flags.cond(cond));
                let old = self.r(op.a);
                self.set_r(op.a, (old & !0xFF) | bit);
            }
            UopKind::Movzx8 => {
                let v = self.r(op.b) & 0xFF;
                self.set_r(op.a, v);
            }
            UopKind::Jcc => {
                self.materialize_flags();
                let cond = Cond::from_cc(op.c).expect("lowered cc is valid");
                let taken = self.flags.cond(cond);
                let tgt = op.imm as u64;
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: if taken { tgt } else { next },
                    taken,
                    kind: BranchKind::Cond,
                });
                if taken {
                    new_rip = tgt;
                }
            }
            UopKind::Jmp => {
                let tgt = op.imm as u64;
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::Uncond,
                });
                new_rip = tgt;
            }
            UopKind::JmpIndReg => {
                let tgt = self.r(op.b);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::IndirectJump,
                });
                new_rip = tgt;
            }
            UopKind::JmpIndMemBD | UopKind::JmpIndMemBIS | UopKind::JmpIndMemAbs => {
                let ea = match op.kind {
                    UopKind::JmpIndMemBD => self.ea_bd(&op),
                    UopKind::JmpIndMemBIS => self.ea_bis(&op),
                    _ => op.imm as u64,
                };
                sink.on_mem(ea, 8, false);
                let tgt = self.mem.read_u64(ea);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::IndirectJump,
                });
                new_rip = tgt;
            }
            UopKind::Call => {
                let tgt = op.imm as u64;
                self.push(next, sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::Call,
                });
                new_rip = tgt;
            }
            UopKind::CallIndReg => {
                let tgt = self.r(op.b);
                self.push(next, sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::IndirectCall,
                });
                new_rip = tgt;
            }
            UopKind::CallIndMemBD | UopKind::CallIndMemBIS | UopKind::CallIndMemAbs => {
                // Event order matches the step engine: target load,
                // return-address push, branch.
                let ea = match op.kind {
                    UopKind::CallIndMemBD => self.ea_bd(&op),
                    UopKind::CallIndMemBIS => self.ea_bis(&op),
                    _ => op.imm as u64,
                };
                sink.on_mem(ea, 8, false);
                let tgt = self.mem.read_u64(ea);
                self.push(next, sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::IndirectCall,
                });
                new_rip = tgt;
            }
            UopKind::Ret => {
                let tgt = self.pop(sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::Return,
                });
                if tgt == RETURN_SENTINEL {
                    self.rip = tgt;
                    return Ok(Some(Exit::Returned));
                }
                new_rip = tgt;
            }
            UopKind::Nop => {}
            UopKind::Ud2 => return Err(EmuError::Trap { rip }),
            UopKind::Syscall => {
                let nr = self.reg(Reg::Rax);
                match nr {
                    1 => {
                        let v = self.reg(Reg::Rdi) as i64;
                        self.output.push(v);
                        self.set_reg(Reg::Rax, 8);
                    }
                    60 | 231 => {
                        self.rip = next;
                        return Ok(Some(Exit::Exited(self.reg(Reg::Rdi) as i64)));
                    }
                    number => return Err(EmuError::BadSyscall { rip, number }),
                }
            }
        }

        self.rip = new_rip;
        Ok(None)
    }

    /// Cumulative per-tier block-translation counts: how many
    /// translations ran at full tier and how many the fallback ladder
    /// degraded ([`BlockTier::Decoded`] / [`BlockTier::Step`]). Zero
    /// degradations on a healthy image; diagnostics only, never part
    /// of a [`RunResult`].
    pub fn tier_counts(&self) -> TierCounts {
        self.blocks.tier_counts()
    }

    /// Arms a deterministic injected translation fault: the `nth`
    /// subsequent block translation (0-based) degrades exactly as a
    /// real validation finding of `kind` would. Per-machine state (no
    /// globals), for the fault-injection harness.
    pub fn inject_translation_fault(&mut self, nth: u64, kind: InjectedFault) {
        self.blocks.inject_fault(nth, kind);
    }

    /// Calls the function at `addr` with up to six integer arguments,
    /// running until it returns. Used by unit tests to exercise individual
    /// functions.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn call_function<S: TraceSink + ?Sized>(
        &mut self,
        addr: u64,
        args: &[u64],
        sink: &mut S,
        max_steps: u64,
    ) -> Result<u64, EmuError> {
        assert!(args.len() <= 6, "at most six register arguments");
        for (i, &a) in args.iter().enumerate() {
            self.set_reg(Reg::ARGS[i], a);
        }
        self.set_reg(Reg::Rsp, STACK_TOP - 64);
        self.push(RETURN_SENTINEL, &mut crate::NullSink);
        self.rip = addr;
        let r = self.run(sink, max_steps)?;
        debug_assert!(matches!(r.exit, Exit::Returned | Exit::MaxSteps));
        Ok(self.reg(Reg::Rax))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingSink, NullSink};
    use bolt_isa::{encode_at, Label};

    /// Assembles instructions at `base`, resolving label `n` to the start
    /// of instruction `n`.
    fn asm(insts: &[Inst], base: u64) -> Vec<u8> {
        // Two passes: compute addresses, then encode with resolution.
        let mut addrs = Vec::with_capacity(insts.len());
        let mut pos = base;
        for i in insts {
            addrs.push(pos);
            pos += bolt_isa::encoded_len(i) as u64;
        }
        let mut out = Vec::new();
        for (i, inst) in insts.iter().enumerate() {
            let mut inst = *inst;
            if let Some(Target::Label(Label(n))) = inst.target() {
                inst.set_target(Target::Addr(addrs[n as usize]));
            }
            out.extend(encode_at(&inst, addrs[i]).unwrap().bytes);
        }
        out
    }

    fn machine_with(insts: &[Inst]) -> Machine {
        let mut m = Machine::new();
        let code = asm(insts, 0x400000);
        m.mem.write(0x400000, &code);
        m.rip = 0x400000;
        m.set_reg(Reg::Rsp, STACK_TOP - 64);
        m
    }

    #[test]
    fn arithmetic_and_flags() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 5,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 7,
            },
            Inst::Alu {
                op: AluOp::Add,
                dst: Reg::Rax,
                src: Reg::Rcx,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 12,
            },
        ];
        let mut m = machine_with(&insts);
        for _ in 0..4 {
            m.step(&mut NullSink).unwrap();
        }
        assert_eq!(m.reg(Reg::Rax), 12);
        assert!(m.flags.zf, "12 - 12 sets ZF");
        assert!(m.flags.cond(Cond::E));
        assert!(!m.flags.cond(Cond::L));
        assert!(m.flags.cond(Cond::Ge));
    }

    #[test]
    fn signed_comparison_conditions() {
        let mut m = machine_with(&[
            Inst::MovRI {
                dst: Reg::Rax,
                imm: -3,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 2,
            },
        ]);
        m.step(&mut NullSink).unwrap();
        m.step(&mut NullSink).unwrap();
        assert!(m.flags.cond(Cond::L), "-3 < 2 signed");
        assert!(!m.flags.cond(Cond::B), "-3 is huge unsigned");
        assert!(m.flags.cond(Cond::Ne));
    }

    #[test]
    fn setcc_and_movzx() {
        let mut m = machine_with(&[
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 10,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 3,
            },
            Inst::Setcc {
                cond: Cond::G,
                dst: Reg::Rdx,
            },
            Inst::Movzx8 {
                dst: Reg::Rdx,
                src: Reg::Rdx,
            },
        ]);
        m.set_reg(Reg::Rdx, 0xFFFF_FFFF_FFFF_FF00);
        for _ in 0..4 {
            m.step(&mut NullSink).unwrap();
        }
        assert_eq!(m.reg(Reg::Rdx), 1);
    }

    #[test]
    fn branch_events_and_control_flow() {
        // 0: mov rax, 1
        // 1: test rax, rax
        // 2: jne L4 (taken)
        // 3: ud2 (skipped)
        // 4: ret -> sentinel
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Test {
                a: Reg::Rax,
                b: Reg::Rax,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Label(Label(4)),
                width: bolt_isa::JumpWidth::Near,
            },
            Inst::Ud2,
            Inst::Ret,
        ];
        let mut m = machine_with(&insts);
        m.push(RETURN_SENTINEL, &mut NullSink);
        let mut sink = CountingSink::default();
        let r = m.run(&mut sink, 100).unwrap();
        assert_eq!(r.exit, Exit::Returned);
        assert_eq!(sink.taken_cond_branches, 1);
        assert_eq!(sink.returns, 1);
        assert_eq!(r.steps, 4);
    }

    #[test]
    fn call_and_stack_discipline() {
        // main: call f; ret
        // f: mov rax, 42; ret
        let insts = [
            Inst::Call {
                target: Target::Label(Label(2)),
            },
            Inst::Ret,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 42,
            },
            Inst::Ret,
        ];
        let mut m = machine_with(&insts);
        let rax = m.call_function(0x400000, &[], &mut NullSink, 100).unwrap();
        assert_eq!(rax, 42);
    }

    #[test]
    fn memory_and_jump_table_dispatch() {
        // Jump table with 2 entries in "rodata" at 0x500000.
        // mov rax, 1 (index)
        // movabs r10, 0x500000
        // mov r11, [r10 + rax*8]
        // jmp r11
        // L4: mov rax, 111; ret   (entry 0)
        // L6: mov rax, 222; ret   (entry 1)
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::R10,
                imm: 0x500000,
            },
            Inst::Load {
                dst: Reg::R11,
                mem: Mem::BaseIndexScale {
                    base: Reg::R10,
                    index: Reg::Rax,
                    scale: 8,
                    disp: 0,
                },
            },
            Inst::JmpInd {
                rm: Rm::Reg(Reg::R11),
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 111,
            },
            Inst::Ret,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 222,
            },
            Inst::Ret,
        ];
        let mut m = machine_with(&insts);
        // Compute addresses of insts 4 and 6 the same way `asm` does.
        let mut addrs = vec![0x400000u64];
        for i in &insts {
            let last = *addrs.last().unwrap();
            addrs.push(last + bolt_isa::encoded_len(i) as u64);
        }
        m.mem.write_u64(0x500000, addrs[4]);
        m.mem.write_u64(0x500008, addrs[6]);
        let mut sink = CountingSink::default();
        let rax = m.call_function(0x400000, &[], &mut sink, 100).unwrap();
        assert_eq!(rax, 222, "index 1 selects the second table entry");
        assert!(sink.mem_reads >= 1);
    }

    #[test]
    fn syscall_emit_and_exit() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::Rdi,
                imm: -99,
            },
            Inst::Syscall,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::MovRI {
                dst: Reg::Rdi,
                imm: 3,
            },
            Inst::Syscall,
        ];
        let mut m = machine_with(&insts);
        let r = m.run(&mut NullSink, 100).unwrap();
        assert_eq!(r.exit, Exit::Exited(3));
        assert_eq!(m.output, vec![-99]);
    }

    /// An ELF whose entry emits `mark` and then exits with `mark`.
    fn emitting_elf(mark: i64) -> bolt_elf::Elf {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::Rdi,
                imm: mark,
            },
            Inst::Syscall,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::Syscall,
        ];
        let code = asm(&insts, 0x400000);
        let mut elf = bolt_elf::Elf::new(0x400000);
        elf.sections
            .push(bolt_elf::Section::code(".text", 0x400000, code));
        elf
    }

    #[test]
    fn load_elf_fully_resets_machine_state() {
        // First program: dirties regs, flags, memory, and output.
        let mut m = Machine::new();
        m.load_elf(&emitting_elf(11));
        m.set_reg(Reg::R9, 0xDEAD);
        m.mem.write_u64(0x700000, 0xDEAD_BEEF);
        let r = m.run(&mut NullSink, 100).unwrap();
        assert_eq!(r.exit, Exit::Exited(11));
        assert_eq!(m.output, vec![11]);

        // Reloading must not leak any of that into the second run.
        m.load_elf(&emitting_elf(22));
        assert_eq!(m.reg(Reg::R9), 0, "stale registers cleared");
        assert_eq!(m.flags, Flags::default(), "stale flags cleared");
        assert_eq!(m.mem.read_u64(0x700000), 0, "stale memory pages cleared");
        assert!(m.output.is_empty(), "stale output cleared");
        let r = m.run(&mut NullSink, 100).unwrap();
        assert_eq!(r.exit, Exit::Exited(22));
        assert_eq!(m.output, vec![22], "only the second program's output");

        // A reused machine matches a fresh one observably.
        let mut fresh = Machine::new();
        fresh.load_elf(&emitting_elf(22));
        fresh.run(&mut NullSink, 100).unwrap();
        assert_eq!(m.output, fresh.output);
        assert_eq!(m.regs, fresh.regs);
    }

    #[test]
    fn flat_icache_covers_loaded_text() {
        let mut m = Machine::new();
        m.load_elf(&emitting_elf(5));
        assert!(
            !m.icache_index.is_empty(),
            "flat index sized to the text span"
        );
        assert_eq!(m.icache_base, 0x400000);
        // Pinned to the step engine: this test asserts the *decode*
        // cache's internals (the block engine never consults it).
        let r = m.run_engine(&mut NullSink, 100, Engine::Step).unwrap();
        assert_eq!(r.exit, Exit::Exited(5));
        assert_eq!(
            m.icache_entries.len(),
            5,
            "one packed entry per decoded instruction start"
        );
        assert!(m.icache_spill.is_empty(), "no spill for in-span code");
    }

    /// Runs `elf` under one engine on a fresh machine, returning every
    /// observable: exit, steps, output, final registers, and the counted
    /// trace events.
    fn observe(
        elf: &bolt_elf::Elf,
        engine: Engine,
        max_steps: u64,
    ) -> (RunResult, Machine, CountingSink) {
        let mut m = Machine::new();
        m.load_elf(elf);
        let mut sink = CountingSink::default();
        let r = m.run_engine(&mut sink, max_steps, engine).unwrap();
        (r, m, sink)
    }

    #[test]
    fn block_engines_match_step_engine_observably() {
        let elf = emitting_elf(42);
        let (rs, ms, ss) = observe(&elf, Engine::Step, u64::MAX);
        for engine in [Engine::Block, Engine::Superblock, Engine::Uop] {
            let (rb, mb, sb) = observe(&elf, engine, u64::MAX);
            assert_eq!(rs, rb, "{engine}: exit and retired count identical");
            assert_eq!(ms.output, mb.output, "{engine}");
            assert_eq!(ms.regs, mb.regs, "{engine}");
            assert_eq!(ms.flags, mb.flags, "{engine}");
            assert_eq!(
                format!("{ss:?}"),
                format!("{sb:?}"),
                "{engine}: every counted trace event identical"
            );
        }
    }

    /// Satellite regression: `Exit::MaxSteps` must trigger at exactly
    /// the same retired-instruction count under every engine, including
    /// budgets landing in the middle of a translated block.
    #[test]
    fn max_steps_boundary_identical_across_engines() {
        let elf = emitting_elf(7); // 5 instructions, one straight block
        for budget in 1..=5u64 {
            let (rs, ms, ss) = observe(&elf, Engine::Step, budget);
            for engine in [Engine::Block, Engine::Superblock, Engine::Uop] {
                let (rb, mb, sb) = observe(&elf, engine, budget);
                assert_eq!(rs, rb, "{engine} budget {budget}: exit/steps");
                assert_eq!(rs.steps, budget.min(5), "budget {budget}");
                assert_eq!(ms.rip, mb.rip, "{engine} budget {budget}: same rip");
                assert_eq!(ms.output, mb.output, "{engine} budget {budget}");
                assert_eq!(ss.insts, sb.insts, "{engine} budget {budget}");
            }
        }
    }

    /// Code with no flat text span (poked directly into memory) runs
    /// through the step engine's sorted spill decode cache — or, under
    /// the block engines, through the block cache's sorted spill index
    /// (the out-of-span satellite) — and every engine agrees.
    #[test]
    fn spill_region_code_runs_identically_under_all_engines() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 3,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 4,
            },
            Inst::Alu {
                op: AluOp::Add,
                dst: Reg::Rax,
                src: Reg::Rcx,
            },
            Inst::Ret,
        ];
        let run = |engine: Engine| {
            let mut m = machine_with(&insts);
            m.push(RETURN_SENTINEL, &mut NullSink);
            let mut sink = CountingSink::default();
            let r = m.run_engine(&mut sink, 100, engine).unwrap();
            assert!(m.icache_index.is_empty(), "no flat span for poked code");
            (r, m.reg(Reg::Rax), sink.insts, m.icache_spill.len())
        };
        let (rs, rax_s, insts_s, spill_s) = run(Engine::Step);
        assert_eq!(rax_s, 7);
        assert_eq!(spill_s, 4, "step: every instruction in the spill vec");
        for engine in [Engine::Block, Engine::Superblock, Engine::Uop] {
            let (rb, rax_b, insts_b, spill_b) = run(engine);
            assert_eq!(rs, rb, "{engine}");
            assert_eq!((rax_s, insts_s), (rax_b, insts_b), "{engine}");
            assert_eq!(
                spill_b, 0,
                "{engine}: out-of-span code translates into spill-indexed \
                 blocks instead of stepping through the decode cache"
            );
        }
    }

    /// The full sink-visible event sequence — fetches, memory accesses,
    /// and branches, in order — must be identical across all three
    /// engines on a program interleaving ALU work, loads, stores,
    /// pushes/pops, calls, and returns. This is the superblock engine's
    /// core ordering obligation: its batched events carry interleaved
    /// fetch + memory records that replay in exactly the step order.
    #[test]
    fn event_order_identical_across_engines() {
        #[derive(Debug, PartialEq)]
        enum E {
            I(u64, u8),
            M(u64, u8, bool),
            B(u64, u64, bool),
        }
        #[derive(Default)]
        struct Log(Vec<E>);
        impl TraceSink for Log {
            // No `on_block` override: the default replay must linearize
            // batched events into the exact step sequence.
            fn on_inst(&mut self, addr: u64, len: u8) {
                self.0.push(E::I(addr, len));
            }
            fn on_mem(&mut self, addr: u64, len: u8, write: bool) {
                self.0.push(E::M(addr, len, write));
            }
            fn on_branch(&mut self, ev: BranchEvent) {
                self.0.push(E::B(ev.from, ev.to, ev.taken));
            }
        }
        // main: interleaved mem + alu, a call (callee loads/stores),
        // a loop, then emit + exit.
        let insts = [
            Inst::MovRI {
                dst: Reg::R10,
                imm: 0x500000,
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 5,
            },
            Inst::Store {
                mem: Mem::BaseDisp {
                    base: Reg::R10,
                    disp: 0,
                },
                src: Reg::Rax,
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Load {
                dst: Reg::Rcx,
                mem: Mem::BaseDisp {
                    base: Reg::R10,
                    disp: 0,
                },
            },
            Inst::Push(Reg::Rcx),
            Inst::Pop(Reg::Rdx),
            Inst::Call {
                target: Target::Label(Label(12)),
            },
            // loop: rax -= 1; jne loop-head (two iterations)
            Inst::AluI {
                op: AluOp::Sub,
                dst: Reg::Rax,
                imm: 3,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Label(Label(8)),
                width: bolt_isa::JumpWidth::Near,
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::Syscall,
            // callee: load, alu, store, ret
            Inst::Load {
                dst: Reg::R11,
                mem: Mem::BaseDisp {
                    base: Reg::R10,
                    disp: 0,
                },
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::R11,
                imm: 7,
            },
            Inst::Store {
                mem: Mem::BaseDisp {
                    base: Reg::R10,
                    disp: 8,
                },
                src: Reg::R11,
            },
            Inst::Ret,
        ];
        let run = |engine: Engine| {
            let mut m = machine_with(&insts);
            let mut log = Log::default();
            let r = m.run_engine(&mut log, 1000, engine).unwrap();
            (r, m.output.clone(), log.0)
        };
        let (rs, out_s, log_s) = run(Engine::Step);
        assert!(log_s.iter().any(|e| matches!(e, E::M(..))), "mems present");
        for engine in [Engine::Block, Engine::Superblock, Engine::Uop] {
            let (r, out, log) = run(engine);
            assert_eq!(rs, r, "{engine}");
            assert_eq!(out_s, out, "{engine}");
            assert_eq!(log_s, log, "{engine}: exact event sequence");
        }
    }

    /// Chaining: after a superblock loop warms up, block transitions
    /// resolve through the terminator's cached links without consulting
    /// the entry index — and the run stays observationally identical.
    #[test]
    fn superblock_chaining_resolves_loop_transitions() {
        let mut m = Machine::new();
        m.load_elf(&emitting_elf(3));
        let r = m.run_engine(&mut NullSink, u64::MAX, Engine::Superblock);
        assert_eq!(r.unwrap().exit, Exit::Exited(3));
        // The single straight-line block chains nothing (it exits), but
        // a looping program installs and follows links.
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 0,
            },
            // loop head (own block: jcc target)
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 4,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Label(Label(1)),
                width: bolt_isa::JumpWidth::Near,
            },
            Inst::Ret,
        ];
        let mut m = machine_with(&insts);
        m.push(RETURN_SENTINEL, &mut NullSink);
        let mut sink = CountingSink::default();
        let r = m.run_engine(&mut sink, 1000, Engine::Superblock).unwrap();
        assert_eq!(r.exit, Exit::Returned);
        assert_eq!(m.reg(Reg::Rax), 4);
        // The loop block (head..jcc) links both arms: back to the head
        // and forward to the ret block.
        let len = |i: &Inst| bolt_isa::encoded_len(i) as u64;
        let head_rip = 0x400000 + len(&insts[0]);
        let fall_rip = head_rip + len(&insts[1]) + len(&insts[2]) + len(&insts[3]);
        let head = m.blocks.lookup(head_rip).expect("head translated");
        assert!(
            m.blocks.lookup(fall_rip).is_some(),
            "fall-through block translated"
        );
        assert_eq!(
            m.blocks.linked(head, head_rip),
            Some(head),
            "taken arm chained back to the head"
        );
        assert!(
            m.blocks.linked(head, fall_rip).is_some(),
            "fall-through arm chained too"
        );
    }

    /// Spill entries stay sorted by rip and re-execution hits the memo
    /// path (the shrink-`icache_spill` satellite's regression test).
    #[test]
    fn spill_vec_sorted_and_rehit_after_loop() {
        // A loop executed twice: second iteration refetches every spill
        // entry through the memo / binary-search path.
        //   0: mov rax, 0
        //   1: add rax, 1
        //   2: cmp rax, 2
        //   3: jne 1
        //   4: ret
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 0,
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 2,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Label(Label(1)),
                width: bolt_isa::JumpWidth::Near,
            },
            Inst::Ret,
        ];
        let mut m = machine_with(&insts);
        m.push(RETURN_SENTINEL, &mut NullSink);
        let r = m.run_engine(&mut NullSink, 100, Engine::Step).unwrap();
        assert_eq!(r.exit, Exit::Returned);
        assert_eq!(r.steps, 1 + 2 * 3 + 1, "two loop iterations then ret");
        assert!(
            m.icache_spill.main.windows(2).all(|w| w[0].0 < w[1].0),
            "spill entries sorted by rip"
        );
        assert_eq!(m.icache_spill.len(), 5, "each inst cached exactly once");
    }

    /// Out-of-order spill decode (a high-address entry jumping to
    /// lower-address code, the call-graph-order pattern of a wide image)
    /// goes through the bounded pending buffer and merges cleanly.
    #[test]
    fn out_of_order_spill_inserts_use_pending_buffer() {
        let mut m = Machine::new();
        // Low-address function: emit 9 then exit 9.
        let low = asm(
            &[
                Inst::MovRI {
                    dst: Reg::Rax,
                    imm: 1,
                },
                Inst::MovRI {
                    dst: Reg::Rdi,
                    imm: 9,
                },
                Inst::Syscall,
                Inst::MovRI {
                    dst: Reg::Rax,
                    imm: 60,
                },
                Inst::Syscall,
            ],
            0x400000,
        );
        m.mem.write(0x400000, &low);
        // High-address entry: jump down to it.
        let high = asm(
            &[Inst::Jmp {
                target: Target::Addr(0x400000),
                width: bolt_isa::JumpWidth::Near,
            }],
            0x500000,
        );
        m.mem.write(0x500000, &high);
        m.rip = 0x500000;
        let r = m.run_engine(&mut NullSink, 100, Engine::Step).unwrap();
        assert_eq!(r.exit, Exit::Exited(9));
        assert_eq!(m.output, vec![9]);
        assert_eq!(
            m.icache_spill.main.len(),
            1,
            "only the jmp appended in order"
        );
        assert_eq!(
            m.icache_spill.pending.len(),
            5,
            "lower-rip decodes buffered as pending"
        );
        assert!(m.icache_spill.pending.windows(2).all(|w| w[0].0 < w[1].0));

        // A second run refetches everything through memo/main/pending.
        m.rip = 0x500000;
        m.output.clear();
        let r = m.run_engine(&mut NullSink, 100, Engine::Step).unwrap();
        assert_eq!(r.exit, Exit::Exited(9));
        assert_eq!(m.output, vec![9]);
        assert_eq!(
            m.icache_spill.pending.len(),
            5,
            "no re-decode, no duplicates"
        );

        // An explicit merge folds pending into the sorted main vector
        // and later fetches still resolve.
        m.icache_spill.merge();
        assert!(m.icache_spill.pending.is_empty());
        assert_eq!(m.icache_spill.len(), 6);
        assert!(m.icache_spill.main.windows(2).all(|w| w[0].0 < w[1].0));
        m.rip = 0x500000;
        m.output.clear();
        let r = m.run_engine(&mut NullSink, 100, Engine::Block).unwrap();
        assert_eq!(r.exit, Exit::Exited(9));
        assert_eq!(m.output, vec![9]);
    }

    #[test]
    fn traps_and_bad_code() {
        let mut m = machine_with(&[Inst::Ud2]);
        assert_eq!(m.step(&mut NullSink), Err(EmuError::Trap { rip: 0x400000 }));
        let mut m = Machine::new();
        m.rip = 0x999000; // zeros decode as add [rax], al? -> unsupported
        assert!(matches!(
            m.step(&mut NullSink),
            Err(EmuError::BadInstruction { .. })
        ));
    }

    #[test]
    fn shifts() {
        let mut m = machine_with(&[
            Inst::MovRI {
                dst: Reg::Rax,
                imm: -16,
            },
            Inst::Shift {
                op: ShiftOp::Sar,
                dst: Reg::Rax,
                amount: 2,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 3,
            },
            Inst::Shift {
                op: ShiftOp::Shl,
                dst: Reg::Rcx,
                amount: 4,
            },
        ]);
        for _ in 0..4 {
            m.step(&mut NullSink).unwrap();
        }
        assert_eq!(m.reg(Reg::Rax) as i64, -4);
        assert_eq!(m.reg(Reg::Rcx), 48);
    }

    /// An ELF mixing ALU work, a store/load pair (exercising the
    /// captured-event path), a conditional branch, and output syscalls —
    /// rich enough that a degraded block changes real behavior if the
    /// fallback is wrong.
    fn tiered_elf() -> bolt_elf::Elf {
        let insts = [
            Inst::MovRI {
                dst: Reg::R10,
                imm: 0x600000,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 5,
            },
            Inst::Store {
                mem: Mem::base(Reg::R10, 0),
                src: Reg::Rcx,
            },
            Inst::Load {
                dst: Reg::Rdi,
                mem: Mem::base(Reg::R10, 0),
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rdi,
                imm: 5,
            },
            Inst::Jcc {
                cond: Cond::E,
                target: Target::Label(Label(7)),
                width: bolt_isa::JumpWidth::Near,
            },
            Inst::Ud2,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Syscall,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::Syscall,
        ];
        let code = asm(&insts, 0x400000);
        let mut elf = bolt_elf::Elf::new(0x400000);
        elf.sections
            .push(bolt_elf::Section::code(".text", 0x400000, code));
        elf
    }

    /// Runs `elf` under one engine with an optional injected
    /// translation fault armed for the `nth` translated block.
    fn observe_fault(
        elf: &bolt_elf::Elf,
        engine: Engine,
        fault: Option<(u64, InjectedFault)>,
    ) -> (RunResult, Machine, CountingSink) {
        let mut m = Machine::new();
        m.load_elf(elf);
        if let Some((nth, kind)) = fault {
            m.inject_translation_fault(nth, kind);
        }
        let mut sink = CountingSink::default();
        let r = m.run_engine(&mut sink, u64::MAX, engine).unwrap();
        (r, m, sink)
    }

    /// A healthy image degrades nothing: every translated block runs at
    /// full tier under every block engine.
    #[test]
    fn clean_run_translates_every_block_at_full_tier() {
        let elf = tiered_elf();
        for engine in [Engine::Block, Engine::Superblock, Engine::Uop] {
            let (_, m, _) = observe_fault(&elf, engine, None);
            let t = m.tier_counts();
            assert!(t.full > 0, "{engine}: blocks were translated");
            assert_eq!(t.degraded(), 0, "{engine}: nothing degraded");
        }
    }

    /// An injected uop-structural fault degrades exactly that block to
    /// the decoded tier, with every observable identical to the step
    /// engine — translation failure must never abort a run.
    #[test]
    fn injected_uop_fault_degrades_to_decoded_tier_identically() {
        let elf = tiered_elf();
        let (rs, ms, ss) = observe_fault(&elf, Engine::Step, None);
        for nth in 0..2u64 {
            let (rb, mb, sb) =
                observe_fault(&elf, Engine::Uop, Some((nth, InjectedFault::UopInvalid)));
            let t = mb.tier_counts();
            assert_eq!(t.decoded, 1, "block {nth} fell back to decoded");
            assert_eq!(t.step, 0);
            assert!(t.full > 0, "siblings stayed at full tier");
            assert_eq!(rs, rb, "block {nth}: exit and retired count");
            assert_eq!(ms.output, mb.output, "block {nth}");
            assert_eq!(ms.regs, mb.regs, "block {nth}");
            assert_eq!(ms.flags, mb.flags, "block {nth}");
            assert_eq!(format!("{ss:?}"), format!("{sb:?}"), "block {nth}: events");
        }
    }

    /// An injected semantic-validation fault degrades exactly that
    /// block to the step tier under every block engine, again with
    /// observables identical to pure stepping.
    #[test]
    fn injected_sem_fault_degrades_to_step_tier_identically() {
        let elf = tiered_elf();
        let (rs, ms, ss) = observe_fault(&elf, Engine::Step, None);
        for engine in [Engine::Block, Engine::Superblock, Engine::Uop] {
            for nth in 0..2u64 {
                let (rb, mb, sb) =
                    observe_fault(&elf, engine, Some((nth, InjectedFault::SemInvalid)));
                let t = mb.tier_counts();
                assert_eq!(t.step, 1, "{engine} block {nth}: fell back to step");
                assert_eq!(t.decoded, 0, "{engine} block {nth}");
                assert!(t.full > 0, "{engine} block {nth}: siblings full");
                assert_eq!(rs, rb, "{engine} block {nth}: exit/steps");
                assert_eq!(ms.output, mb.output, "{engine} block {nth}");
                assert_eq!(ms.regs, mb.regs, "{engine} block {nth}");
                assert_eq!(ms.flags, mb.flags, "{engine} block {nth}");
                assert_eq!(
                    format!("{ss:?}"),
                    format!("{sb:?}"),
                    "{engine} block {nth}: events"
                );
            }
        }
    }

    /// Tier counters are cumulative across cache rebuilds: an
    /// [`ensure_span`](BlockCache::ensure_span) mode switch clears the
    /// pools but neither the counters nor an armed fault.
    #[test]
    fn tier_counts_survive_cache_rebuilds() {
        let elf = tiered_elf();
        let mut m = Machine::new();
        m.load_elf(&elf);
        m.inject_translation_fault(0, InjectedFault::SemInvalid);
        m.run_engine(&mut NullSink, u64::MAX, Engine::Block)
            .unwrap();
        let after_first = m.tier_counts();
        assert_eq!(
            after_first.step, 1,
            "armed fault survived load_elf's span setup"
        );
        // Re-running under a different mode rebuilds the pools; the
        // counters keep accumulating on top of the first run's.
        m.rip = 0x400000;
        m.set_reg(Reg::Rsp, STACK_TOP - 64);
        m.run_engine(&mut NullSink, u64::MAX, Engine::Superblock)
            .unwrap();
        let after_second = m.tier_counts();
        assert_eq!(after_second.step, after_first.step);
        assert!(after_second.full > after_first.full);
    }
}
