//! Symbolic block evaluation for translation validation.
//!
//! A small term language over the machine's *initial* state — one
//! symbol per register, one for the incoming flags, one per loaded
//! memory value — plus two abstract evaluators: one over decoded
//! [`Inst`] step semantics (mirroring `Machine::exec_inst`), one over
//! [`MicroOp`] semantics including the `LazyFlags` materialization
//! rules and liveness barriers (mirroring `Machine::exec_uop`). Running
//! both over one packed block from a common initial state yields two
//! [`SymState`]s whose structural equality *proves* the translation
//! semantically faithful: same final register file, same flags at every
//! point where flags are observable, same ordered memory-effect list,
//! same terminator. [`crate::transval`] performs that comparison and
//! turns disagreements into findings.
//!
//! Terms are constant-folded and canonicalized as they are built (both
//! evaluators go through the same smart constructors), so equivalent
//! computations — an immediate the interpreter sign-extends at execute
//! time vs one the lowering pre-extended — converge to one
//! representative and compare equal structurally; no solver is needed.
//!
//! The model is exact, not conservative: every rule here restates one
//! arm of `exec_inst`/`exec_uop` over terms instead of values, with the
//! flag classes coming from the shared [`bolt_isa::flag_effect`] table.

use crate::exec::Flags;
use crate::uop::{lower_mem, MicroOp, UopKind};
use bolt_isa::{Cond, Inst, Reg, Rm, ShiftOp, Target};
use std::fmt;
use std::rc::Rc;

/// A symbolic 64-bit value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// The value register `i` held when the block was entered.
    Init(u8),
    Const(u64),
    /// The value produced by the block's memory effect number `seq`
    /// (effects are numbered in executor event order, so a load that
    /// happens after a store is a different symbol from one before it).
    Load {
        addr: Rc<Term>,
        seq: u32,
    },
    Add(Rc<Term>, Rc<Term>),
    Sub(Rc<Term>, Rc<Term>),
    And(Rc<Term>, Rc<Term>),
    Or(Rc<Term>, Rc<Term>),
    Xor(Rc<Term>, Rc<Term>),
    /// Low 64 bits of the product (signed and unsigned agree there).
    Mul(Rc<Term>, Rc<Term>),
    Shl(Rc<Term>, u8),
    Shr(Rc<Term>, u8),
    Sar(Rc<Term>, u8),
    /// `0`/`1` from evaluating `cond` against symbolic flags.
    CondBit(SymFlags, Cond),
}

/// A symbolic flags state: which [`Flags::of_*`](Flags) formula
/// produced it and the operand terms it was applied to. Mirrors the
/// executor's `LazyFlags` exactly — two states are equivalent iff their
/// class and operands agree, which is precisely when materializing them
/// yields identical concrete flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymFlags {
    /// The flags the block was entered with.
    Init,
    /// `Flags::of_logic(r)`.
    Logic(Rc<Term>),
    /// `Flags::of_sub(a, b)`.
    Sub(Rc<Term>, Rc<Term>),
    /// `Flags::of_add(a, b)`.
    Add(Rc<Term>, Rc<Term>),
    /// `Flags::of_imul` over the product of `a * b`.
    Imul(Rc<Term>, Rc<Term>),
    /// `Flags::of_shift` over `a` shifted by a nonzero masked count.
    Shift(ShiftOp, Rc<Term>, u8),
}

/// One data-memory effect, in executor event order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymEffect {
    /// Instruction index within the block.
    pub inst: u32,
    /// `true` for stores.
    pub write: bool,
    /// Symbolic effective address.
    pub addr: Rc<Term>,
    /// Access width in bytes (fixed at 8 by this ISA).
    pub width: u8,
    /// The value stored (writes only; loads *produce* a
    /// [`Term::Load`]).
    pub value: Option<Rc<Term>>,
}

/// One point where the flags are observable — a consumer (`jcc`,
/// `setcc`), a store/push liveness barrier (self-modifying code can
/// truncate the block there and hand the flags to freshly decoded
/// code), or the block exit. The uop evaluator records the
/// *would-be-materialized* state at each point; a dead-marked live
/// writer shows up as a stale entry that disagrees with the step
/// semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagCheck {
    pub inst: u32,
    pub flags: SymFlags,
}

/// The block's symbolic control-flow exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymTerminator {
    /// Fell off the packed block's end (length cap or span boundary)
    /// into the next address.
    FallThrough(u64),
    /// Unconditional jump (direct targets fold to a constant).
    Jump(Rc<Term>),
    /// Conditional branch: `cond` over `flags` picks `taken` or `fall`.
    CondJump {
        flags: SymFlags,
        cond: Cond,
        taken: u64,
        fall: u64,
    },
    /// Call (the return-address push is already in the effect list).
    Call { target: Rc<Term>, ret: u64 },
    /// Return to the popped value.
    Ret(Rc<Term>),
    /// Syscall at this instruction; behavior is a fixed function of the
    /// register file, which the register comparison covers.
    Syscall { next: u64 },
    /// `ud2`.
    Trap,
}

/// The final symbolic machine state of one block evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymState {
    /// Final symbolic register file.
    pub regs: [Rc<Term>; 16],
    /// Index of the last instruction that wrote each register
    /// (`u32::MAX` if untouched) — finding attribution.
    pub reg_writer: [u32; 16],
    /// Ordered memory effects.
    pub effects: Vec<SymEffect>,
    /// Flags at every observation point, in order.
    pub flag_checks: Vec<FlagCheck>,
    /// Flags at block exit (would-be-materialized on the uop side; a
    /// chained successor may consume them).
    pub exit_flags: SymFlags,
    pub terminator: SymTerminator,
}

// ---------------------------------------------------------------------------
// Smart constructors: constant folding + canonicalization. Both
// evaluators build terms exclusively through these, so equivalent
// computations converge structurally.

fn c64(v: u64) -> Rc<Term> {
    Rc::new(Term::Const(v))
}

fn const_of(t: &Rc<Term>) -> Option<u64> {
    match **t {
        Term::Const(v) => Some(v),
        _ => None,
    }
}

/// Orders a commutative pair: constants go right, so `k + x` and
/// `x + k` canonicalize identically.
fn commute(a: Rc<Term>, b: Rc<Term>) -> (Rc<Term>, Rc<Term>) {
    if const_of(&a).is_some() && const_of(&b).is_none() {
        (b, a)
    } else {
        (a, b)
    }
}

fn add(a: Rc<Term>, b: Rc<Term>) -> Rc<Term> {
    match (const_of(&a), const_of(&b)) {
        (Some(x), Some(y)) => c64(x.wrapping_add(y)),
        (Some(0), _) => b,
        (_, Some(0)) => a,
        _ => {
            let (a, b) = commute(a, b);
            Rc::new(Term::Add(a, b))
        }
    }
}

fn sub(a: Rc<Term>, b: Rc<Term>) -> Rc<Term> {
    match (const_of(&a), const_of(&b)) {
        (Some(x), Some(y)) => c64(x.wrapping_sub(y)),
        (_, Some(0)) => a,
        _ => Rc::new(Term::Sub(a, b)),
    }
}

fn and(a: Rc<Term>, b: Rc<Term>) -> Rc<Term> {
    match (const_of(&a), const_of(&b)) {
        (Some(x), Some(y)) => c64(x & y),
        (Some(0), _) | (_, Some(0)) => c64(0),
        (Some(u64::MAX), _) => b,
        (_, Some(u64::MAX)) => a,
        _ => {
            let (a, b) = commute(a, b);
            Rc::new(Term::And(a, b))
        }
    }
}

fn or(a: Rc<Term>, b: Rc<Term>) -> Rc<Term> {
    match (const_of(&a), const_of(&b)) {
        (Some(x), Some(y)) => c64(x | y),
        (Some(0), _) => b,
        (_, Some(0)) => a,
        _ => {
            let (a, b) = commute(a, b);
            Rc::new(Term::Or(a, b))
        }
    }
}

fn xor(a: Rc<Term>, b: Rc<Term>) -> Rc<Term> {
    match (const_of(&a), const_of(&b)) {
        (Some(x), Some(y)) => c64(x ^ y),
        (Some(0), _) => b,
        (_, Some(0)) => a,
        _ => {
            let (a, b) = commute(a, b);
            Rc::new(Term::Xor(a, b))
        }
    }
}

fn mul(a: Rc<Term>, b: Rc<Term>) -> Rc<Term> {
    match (const_of(&a), const_of(&b)) {
        (Some(x), Some(y)) => c64(x.wrapping_mul(y)),
        (Some(1), _) => b,
        (_, Some(1)) => a,
        _ => {
            let (a, b) = commute(a, b);
            Rc::new(Term::Mul(a, b))
        }
    }
}

/// `a` shifted by a masked count in `1..=63` — same result formulas as
/// the executor's shift arms.
fn shift(op: ShiftOp, a: Rc<Term>, c: u8) -> Rc<Term> {
    if let Some(x) = const_of(&a) {
        let n = c as u32;
        return c64(match op {
            ShiftOp::Shl => x.wrapping_shl(n),
            ShiftOp::Shr => x.wrapping_shr(n),
            ShiftOp::Sar => (x as i64).wrapping_shr(n) as u64,
        });
    }
    Rc::new(match op {
        ShiftOp::Shl => Term::Shl(a, c),
        ShiftOp::Shr => Term::Shr(a, c),
        ShiftOp::Sar => Term::Sar(a, c),
    })
}

/// Concrete flags of a symbolic state whose operands are all constant.
fn concrete_flags(f: &SymFlags) -> Option<Flags> {
    Some(match f {
        SymFlags::Init => return None,
        SymFlags::Logic(r) => Flags::of_logic(const_of(r)?),
        SymFlags::Sub(a, b) => Flags::of_sub(const_of(a)?, const_of(b)?),
        SymFlags::Add(a, b) => Flags::of_add(const_of(a)?, const_of(b)?),
        SymFlags::Imul(a, b) => {
            let (r, over) = (const_of(a)? as i64).overflowing_mul(const_of(b)? as i64);
            Flags::of_imul(r, over)
        }
        SymFlags::Shift(op, a, c) => {
            let a = const_of(a)?;
            let n = *c as u32;
            let (r, cf) = match op {
                ShiftOp::Shl => (a.wrapping_shl(n), (a >> (64 - n)) & 1 != 0),
                ShiftOp::Shr => (a.wrapping_shr(n), (a >> (n - 1)) & 1 != 0),
                ShiftOp::Sar => (
                    (a as i64).wrapping_shr(n) as u64,
                    ((a as i64) >> (n - 1)) & 1 != 0,
                ),
            };
            Flags::of_shift(r, cf)
        }
    })
}

/// `0`/`1` from `cond` over `flags`, folded when the flags are fully
/// constant.
fn cond_bit(flags: &SymFlags, cond: Cond) -> Rc<Term> {
    match concrete_flags(flags) {
        Some(f) => c64(u64::from(f.cond(cond))),
        None => Rc::new(Term::CondBit(flags.clone(), cond)),
    }
}

// ---------------------------------------------------------------------------
// The evaluator.

/// How a flag write lands, distinguishing the two evaluators:
/// the step side writes eagerly; the uop side defers live writes
/// (pending until a consumer materializes them) and skips dead ones
/// entirely — exactly `exec_uop`'s behavior.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FlagWrite {
    Eager,
    Lazy,
    Dead,
}

struct Evaluator {
    regs: [Rc<Term>; 16],
    reg_writer: [u32; 16],
    /// Architectural flags (what `Machine::flags` holds).
    flags: SymFlags,
    /// Pending lazy state (uop side; always `None` on the step side).
    lazy: Option<SymFlags>,
    effects: Vec<SymEffect>,
    flag_checks: Vec<FlagCheck>,
    terminator: Option<SymTerminator>,
}

const RSP: usize = 4;

impl Evaluator {
    fn new() -> Evaluator {
        Evaluator {
            regs: std::array::from_fn(|i| Rc::new(Term::Init(i as u8))),
            reg_writer: [u32::MAX; 16],
            flags: SymFlags::Init,
            lazy: None,
            effects: Vec::new(),
            flag_checks: Vec::new(),
            terminator: None,
        }
    }

    fn reg(&self, i: u8) -> Rc<Term> {
        self.regs[i as usize].clone()
    }

    fn set_reg(&mut self, inst: u32, i: u8, v: Rc<Term>) {
        self.regs[i as usize] = v;
        self.reg_writer[i as usize] = inst;
    }

    /// The flags a consumer (or an SMC truncation) would observe right
    /// now: the pending lazy state if any, else the architectural one.
    fn observable_flags(&self) -> SymFlags {
        self.lazy.clone().unwrap_or_else(|| self.flags.clone())
    }

    fn write_flags(&mut self, f: SymFlags, how: FlagWrite) {
        match how {
            FlagWrite::Eager => self.flags = f,
            FlagWrite::Lazy => self.lazy = Some(f),
            FlagWrite::Dead => {}
        }
    }

    /// A flags consumer at instruction `inst`: materializes any pending
    /// state (the uop engine's `materialize_flags`) and records the
    /// observation.
    fn consume_flags(&mut self, inst: u32) -> SymFlags {
        if let Some(l) = self.lazy.take() {
            self.flags = l;
        }
        self.flag_checks.push(FlagCheck {
            inst,
            flags: self.flags.clone(),
        });
        self.flags.clone()
    }

    /// A store/push liveness barrier at instruction `inst`: the flags
    /// are not materialized (the executor doesn't), but they must be
    /// *recoverable* — record what would materialize.
    fn barrier_check(&mut self, inst: u32) {
        let flags = self.observable_flags();
        self.flag_checks.push(FlagCheck { inst, flags });
    }

    /// Records a load effect and returns its value symbol.
    fn load(&mut self, inst: u32, addr: Rc<Term>) -> Rc<Term> {
        let seq = self.effects.len() as u32;
        self.effects.push(SymEffect {
            inst,
            write: false,
            addr: addr.clone(),
            width: 8,
            value: None,
        });
        Rc::new(Term::Load { addr, seq })
    }

    fn store(&mut self, inst: u32, addr: Rc<Term>, value: Rc<Term>) {
        self.effects.push(SymEffect {
            inst,
            write: true,
            addr,
            width: 8,
            value: Some(value),
        });
    }

    /// `push v`: rsp decrements, then the store lands at the new rsp.
    fn push_stack(&mut self, inst: u32, v: Rc<Term>) {
        let rsp = sub(self.regs[RSP].clone(), c64(8));
        self.set_reg(inst, RSP as u8, rsp.clone());
        self.store(inst, rsp, v);
    }

    /// `pop`: load at rsp, then rsp increments.
    fn pop_stack(&mut self, inst: u32) -> Rc<Term> {
        let rsp = self.regs[RSP].clone();
        let v = self.load(inst, rsp.clone());
        self.set_reg(inst, RSP as u8, add(rsp, c64(8)));
        v
    }

    /// Shared effective-address recipe over the pre-resolved `(base,
    /// index, scale, disp, shape)` form — the step evaluator feeds it
    /// through [`lower_mem`], the uop evaluator straight from the
    /// micro-op fields, so a faithful pair builds the identical term.
    fn ea(&self, base: u8, index: u8, scale: u8, disp: i64, shape: usize) -> Rc<Term> {
        match shape {
            0 => add(self.reg(base), c64(disp as u64)),
            1 => add(
                add(self.reg(base), mul(self.reg(index), c64(scale as u64))),
                c64(disp as u64),
            ),
            _ => c64(disp as u64),
        }
    }

    /// Shared ALU + shift + mul cores, keyed the same way both
    /// executors are.
    fn alu(&mut self, inst: u32, op: bolt_isa::AluOp, dst: u8, b: Rc<Term>, how: FlagWrite) {
        use bolt_isa::AluOp;
        let a = self.reg(dst);
        let (result, flags) = match op {
            AluOp::Add => (
                Some(add(a.clone(), b.clone())),
                SymFlags::Add(a.clone(), b.clone()),
            ),
            AluOp::Sub => (
                Some(sub(a.clone(), b.clone())),
                SymFlags::Sub(a.clone(), b.clone()),
            ),
            AluOp::Cmp => (None, SymFlags::Sub(a.clone(), b.clone())),
            AluOp::And => {
                let r = and(a.clone(), b.clone());
                (Some(r.clone()), SymFlags::Logic(r))
            }
            AluOp::Or => {
                let r = or(a.clone(), b.clone());
                (Some(r.clone()), SymFlags::Logic(r))
            }
            AluOp::Xor => {
                let r = xor(a.clone(), b.clone());
                (Some(r.clone()), SymFlags::Logic(r))
            }
        };
        self.write_flags(flags, how);
        if let Some(r) = result {
            self.set_reg(inst, dst, r);
        }
    }

    fn imul(&mut self, inst: u32, dst: u8, src: u8, how: FlagWrite) {
        let a = self.reg(dst);
        let b = self.reg(src);
        self.write_flags(SymFlags::Imul(a.clone(), b.clone()), how);
        self.set_reg(inst, dst, mul(a, b));
    }

    /// Nonzero masked-count shift.
    fn shift(&mut self, inst: u32, op: ShiftOp, dst: u8, c: u8, how: FlagWrite) {
        let a = self.reg(dst);
        self.write_flags(SymFlags::Shift(op, a.clone(), c), how);
        self.set_reg(inst, dst, shift(op, a, c));
    }

    fn setcc(&mut self, inst: u32, cc: Cond, dst: u8) {
        let flags = self.consume_flags(inst);
        let bit = cond_bit(&flags, cc);
        let old = self.reg(dst);
        self.set_reg(inst, dst, or(and(old, c64(!0xFF)), bit));
    }

    fn finish(self, fall: u64) -> SymState {
        let exit_flags = self.observable_flags();
        SymState {
            regs: self.regs,
            reg_writer: self.reg_writer,
            effects: self.effects,
            flag_checks: self.flag_checks,
            exit_flags,
            terminator: self.terminator.unwrap_or(SymTerminator::FallThrough(fall)),
        }
    }
}

fn resolved(t: &Target) -> u64 {
    t.addr().expect("decoded branches are resolved")
}

/// Symbolically evaluates a packed block under decoded-`Inst` step
/// semantics — the reference side. Each arm restates the corresponding
/// `Machine::exec_inst` arm over terms.
pub fn sym_block_insts(insts: &[(Inst, u8)], entry: u64) -> SymState {
    let mut ev = Evaluator::new();
    let mut at = entry;
    for (i, &(inst, len)) in insts.iter().enumerate() {
        let i = i as u32;
        let next = at + len as u64;
        match inst {
            Inst::Push(r) => {
                ev.barrier_check(i);
                let v = ev.reg(r.num());
                ev.push_stack(i, v);
            }
            Inst::Pop(r) => {
                let v = ev.pop_stack(i);
                ev.set_reg(i, r.num(), v);
            }
            Inst::MovRR { dst, src } => {
                let v = ev.reg(src.num());
                ev.set_reg(i, dst.num(), v);
            }
            Inst::MovRI { dst, imm } => ev.set_reg(i, dst.num(), c64(imm as u64)),
            Inst::MovRSym { dst, target } => ev.set_reg(i, dst.num(), c64(resolved(&target))),
            Inst::Load { dst, mem } => {
                let (b, c, d, disp, shape) = lower_mem(&mem);
                let addr = ev.ea(b, c, d, disp, shape);
                let v = ev.load(i, addr);
                ev.set_reg(i, dst.num(), v);
            }
            Inst::Store { mem, src } => {
                ev.barrier_check(i);
                let (b, c, d, disp, shape) = lower_mem(&mem);
                let addr = ev.ea(b, c, d, disp, shape);
                let v = ev.reg(src.num());
                ev.store(i, addr, v);
            }
            Inst::Lea { dst, mem } => {
                let (b, c, d, disp, shape) = lower_mem(&mem);
                let addr = ev.ea(b, c, d, disp, shape);
                ev.set_reg(i, dst.num(), addr);
            }
            Inst::Alu { op, dst, src } => {
                let b = ev.reg(src.num());
                ev.alu(i, op, dst.num(), b, FlagWrite::Eager);
            }
            Inst::AluI { op, dst, imm } => {
                ev.alu(i, op, dst.num(), c64(imm as i64 as u64), FlagWrite::Eager);
            }
            Inst::Test { a, b } => {
                let r = and(ev.reg(a.num()), ev.reg(b.num()));
                ev.write_flags(SymFlags::Logic(r), FlagWrite::Eager);
            }
            Inst::Imul { dst, src } => ev.imul(i, dst.num(), src.num(), FlagWrite::Eager),
            Inst::Shift { op, dst, amount } => {
                let c = amount & 63;
                if c != 0 {
                    ev.shift(i, op, dst.num(), c, FlagWrite::Eager);
                }
            }
            Inst::Setcc { cond, dst } => ev.setcc(i, cond, dst.num()),
            Inst::Movzx8 { dst, src } => {
                let v = and(ev.reg(src.num()), c64(0xFF));
                ev.set_reg(i, dst.num(), v);
            }
            Inst::Jcc { cond, target, .. } => {
                let flags = ev.consume_flags(i);
                ev.terminator = Some(SymTerminator::CondJump {
                    flags,
                    cond,
                    taken: resolved(&target),
                    fall: next,
                });
            }
            Inst::Jmp { target, .. } => {
                ev.terminator = Some(SymTerminator::Jump(c64(resolved(&target))));
            }
            Inst::JmpInd { rm } => {
                let tgt = match rm {
                    Rm::Reg(r) => ev.reg(r.num()),
                    Rm::Mem(mem) => {
                        let (b, c, d, disp, shape) = lower_mem(&mem);
                        let addr = ev.ea(b, c, d, disp, shape);
                        ev.load(i, addr)
                    }
                };
                ev.terminator = Some(SymTerminator::Jump(tgt));
            }
            Inst::Call { target } => {
                ev.push_stack(i, c64(next));
                ev.terminator = Some(SymTerminator::Call {
                    target: c64(resolved(&target)),
                    ret: next,
                });
            }
            Inst::CallInd { rm } => {
                // Target resolves before the return-address push (so a
                // through-rsp call sees the pre-push rsp), matching the
                // executor's order.
                let tgt = match rm {
                    Rm::Reg(r) => ev.reg(r.num()),
                    Rm::Mem(mem) => {
                        let (b, c, d, disp, shape) = lower_mem(&mem);
                        let addr = ev.ea(b, c, d, disp, shape);
                        ev.load(i, addr)
                    }
                };
                ev.push_stack(i, c64(next));
                ev.terminator = Some(SymTerminator::Call {
                    target: tgt,
                    ret: next,
                });
            }
            Inst::Ret | Inst::RepzRet => {
                let tgt = ev.pop_stack(i);
                ev.terminator = Some(SymTerminator::Ret(tgt));
            }
            Inst::Nop { .. } => {}
            Inst::Ud2 => ev.terminator = Some(SymTerminator::Trap),
            Inst::Syscall => ev.terminator = Some(SymTerminator::Syscall { next }),
        }
        at = next;
        if ev.terminator.is_some() {
            break;
        }
    }
    ev.finish(at)
}

/// Symbolically evaluates a lowered block under [`MicroOp`] semantics —
/// the translated side, including lazy-flags deferral (live writers
/// pend, dead writers skip, consumers materialize) exactly as
/// `Machine::exec_uop` implements it.
pub fn sym_block_uops(uops: &[MicroOp], entry: u64) -> SymState {
    let mut ev = Evaluator::new();
    let mut at = entry;
    for (i, op) in uops.iter().enumerate() {
        let i = i as u32;
        let next = at + op.len as u64;
        let how = if op.fl {
            FlagWrite::Lazy
        } else {
            FlagWrite::Dead
        };
        use bolt_isa::AluOp;
        match op.kind {
            UopKind::MovRR => {
                let v = ev.reg(op.b);
                ev.set_reg(i, op.a, v);
            }
            UopKind::MovRI => ev.set_reg(i, op.a, c64(op.imm as u64)),
            UopKind::LoadBD | UopKind::LoadBIS | UopKind::LoadAbs => {
                let shape = (op.kind as u8 - UopKind::LoadBD as u8) as usize;
                let addr = ev.ea(op.b, op.c, op.d, op.imm, shape);
                let v = ev.load(i, addr);
                ev.set_reg(i, op.a, v);
            }
            UopKind::StoreBD | UopKind::StoreBIS | UopKind::StoreAbs => {
                ev.barrier_check(i);
                let shape = (op.kind as u8 - UopKind::StoreBD as u8) as usize;
                let addr = ev.ea(op.b, op.c, op.d, op.imm, shape);
                let v = ev.reg(op.a);
                ev.store(i, addr, v);
            }
            UopKind::LeaBD | UopKind::LeaBIS => {
                let shape = (op.kind as u8 - UopKind::LeaBD as u8) as usize;
                let addr = ev.ea(op.b, op.c, op.d, op.imm, shape);
                ev.set_reg(i, op.a, addr);
            }
            UopKind::Push => {
                ev.barrier_check(i);
                let v = ev.reg(op.a);
                ev.push_stack(i, v);
            }
            UopKind::Pop => {
                let v = ev.pop_stack(i);
                ev.set_reg(i, op.a, v);
            }
            UopKind::AddRR => {
                let b = ev.reg(op.b);
                ev.alu(i, AluOp::Add, op.a, b, how);
            }
            UopKind::AddRI => ev.alu(i, AluOp::Add, op.a, c64(op.imm as u64), how),
            UopKind::SubRR => {
                let b = ev.reg(op.b);
                ev.alu(i, AluOp::Sub, op.a, b, how);
            }
            UopKind::SubRI => ev.alu(i, AluOp::Sub, op.a, c64(op.imm as u64), how),
            UopKind::AndRR => {
                let b = ev.reg(op.b);
                ev.alu(i, AluOp::And, op.a, b, how);
            }
            UopKind::AndRI => ev.alu(i, AluOp::And, op.a, c64(op.imm as u64), how),
            UopKind::OrRR => {
                let b = ev.reg(op.b);
                ev.alu(i, AluOp::Or, op.a, b, how);
            }
            UopKind::OrRI => ev.alu(i, AluOp::Or, op.a, c64(op.imm as u64), how),
            UopKind::XorRR => {
                let b = ev.reg(op.b);
                ev.alu(i, AluOp::Xor, op.a, b, how);
            }
            UopKind::XorRI => ev.alu(i, AluOp::Xor, op.a, c64(op.imm as u64), how),
            UopKind::CmpRR => {
                let b = ev.reg(op.b);
                ev.alu(i, AluOp::Cmp, op.a, b, how);
            }
            UopKind::CmpRI => ev.alu(i, AluOp::Cmp, op.a, c64(op.imm as u64), how),
            UopKind::Test => {
                let r = and(ev.reg(op.a), ev.reg(op.b));
                ev.write_flags(SymFlags::Logic(r), how);
            }
            UopKind::Imul => ev.imul(i, op.a, op.b, how),
            UopKind::Shl => ev.shift(i, ShiftOp::Shl, op.a, op.c, how),
            UopKind::Shr => ev.shift(i, ShiftOp::Shr, op.a, op.c, how),
            UopKind::Sar => ev.shift(i, ShiftOp::Sar, op.a, op.c, how),
            UopKind::Setcc => {
                let cond = Cond::from_cc(op.c).expect("lowered cc is valid");
                ev.setcc(i, cond, op.a);
            }
            UopKind::Movzx8 => {
                let v = and(ev.reg(op.b), c64(0xFF));
                ev.set_reg(i, op.a, v);
            }
            UopKind::Jcc => {
                let cond = Cond::from_cc(op.c).expect("lowered cc is valid");
                let flags = ev.consume_flags(i);
                ev.terminator = Some(SymTerminator::CondJump {
                    flags,
                    cond,
                    taken: op.imm as u64,
                    fall: next,
                });
            }
            UopKind::Jmp => ev.terminator = Some(SymTerminator::Jump(c64(op.imm as u64))),
            UopKind::JmpIndReg => {
                let tgt = ev.reg(op.b);
                ev.terminator = Some(SymTerminator::Jump(tgt));
            }
            UopKind::JmpIndMemBD | UopKind::JmpIndMemBIS | UopKind::JmpIndMemAbs => {
                let shape = (op.kind as u8 - UopKind::JmpIndMemBD as u8) as usize;
                let addr = ev.ea(op.b, op.c, op.d, op.imm, shape);
                let tgt = ev.load(i, addr);
                ev.terminator = Some(SymTerminator::Jump(tgt));
            }
            UopKind::Call => {
                ev.push_stack(i, c64(next));
                ev.terminator = Some(SymTerminator::Call {
                    target: c64(op.imm as u64),
                    ret: next,
                });
            }
            UopKind::CallIndReg => {
                let tgt = ev.reg(op.b);
                ev.push_stack(i, c64(next));
                ev.terminator = Some(SymTerminator::Call {
                    target: tgt,
                    ret: next,
                });
            }
            UopKind::CallIndMemBD | UopKind::CallIndMemBIS | UopKind::CallIndMemAbs => {
                let shape = (op.kind as u8 - UopKind::CallIndMemBD as u8) as usize;
                let addr = ev.ea(op.b, op.c, op.d, op.imm, shape);
                let tgt = ev.load(i, addr);
                ev.push_stack(i, c64(next));
                ev.terminator = Some(SymTerminator::Call {
                    target: tgt,
                    ret: next,
                });
            }
            UopKind::Ret => {
                let tgt = ev.pop_stack(i);
                ev.terminator = Some(SymTerminator::Ret(tgt));
            }
            UopKind::Nop => {}
            UopKind::Ud2 => ev.terminator = Some(SymTerminator::Trap),
            UopKind::Syscall => ev.terminator = Some(SymTerminator::Syscall { next }),
        }
        at = next;
        if ev.terminator.is_some() {
            break;
        }
    }
    ev.finish(at)
}

// ---------------------------------------------------------------------------
// Rendering (finding details).

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Init(i) => match Reg::from_num(*i) {
                Some(r) => write!(f, "{r}@entry"),
                None => write!(f, "r{i}@entry"),
            },
            Term::Const(v) => write!(f, "{:#x}", *v),
            Term::Load { addr, seq } => write!(f, "load#{seq}[{addr}]"),
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Sub(a, b) => write!(f, "({a} - {b})"),
            Term::And(a, b) => write!(f, "({a} & {b})"),
            Term::Or(a, b) => write!(f, "({a} | {b})"),
            Term::Xor(a, b) => write!(f, "({a} ^ {b})"),
            Term::Mul(a, b) => write!(f, "({a} * {b})"),
            Term::Shl(a, c) => write!(f, "({a} << {c})"),
            Term::Shr(a, c) => write!(f, "({a} >> {c})"),
            Term::Sar(a, c) => write!(f, "({a} >>s {c})"),
            Term::CondBit(flags, cond) => write!(f, "cond:{}({flags})", cond.suffix()),
        }
    }
}

impl fmt::Display for SymFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymFlags::Init => write!(f, "flags@entry"),
            SymFlags::Logic(r) => write!(f, "logic({r})"),
            SymFlags::Sub(a, b) => write!(f, "sub({a}, {b})"),
            SymFlags::Add(a, b) => write!(f, "add({a}, {b})"),
            SymFlags::Imul(a, b) => write!(f, "imul({a}, {b})"),
            SymFlags::Shift(op, a, c) => write!(f, "{}({a}, {c})", op.mnemonic()),
        }
    }
}

impl fmt::Display for SymTerminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymTerminator::FallThrough(a) => write!(f, "fallthrough {a:#x}"),
            SymTerminator::Jump(t) => write!(f, "jmp {t}"),
            SymTerminator::CondJump {
                flags,
                cond,
                taken,
                fall,
            } => write!(f, "j{} on {flags} ? {taken:#x} : {fall:#x}", cond.suffix()),
            SymTerminator::Call { target, ret } => write!(f, "call {target} (ret {ret:#x})"),
            SymTerminator::Ret(t) => write!(f, "ret to {t}"),
            SymTerminator::Syscall { next } => write!(f, "syscall (next {next:#x})"),
            SymTerminator::Trap => write!(f, "trap"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::{AluOp, Mem};

    fn with_len(insts: &[Inst]) -> Vec<(Inst, u8)> {
        insts
            .iter()
            .map(|&i| (i, bolt_isa::encoded_len(&i) as u8))
            .collect()
    }

    #[test]
    fn folding_and_canonicalization() {
        assert_eq!(add(c64(3), c64(4)), c64(7));
        let x = Rc::new(Term::Init(0));
        assert_eq!(add(x.clone(), c64(0)), x);
        // `k + x` and `x + k` converge.
        assert_eq!(add(c64(5), x.clone()), add(x.clone(), c64(5)));
        assert_eq!(mul(x.clone(), c64(1)), x);
        assert_eq!(
            shift(ShiftOp::Sar, c64(0x8000_0000_0000_0000), 63),
            c64(u64::MAX)
        );
    }

    #[test]
    fn faithful_lowering_evaluates_identically() {
        let insts = with_len(&[
            Inst::Push(Reg::Rbp),
            Inst::Load {
                dst: Reg::Rdx,
                mem: Mem::BaseIndexScale {
                    base: Reg::R10,
                    index: Reg::Rax,
                    scale: 8,
                    disp: -16,
                },
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rdx,
                imm: -1,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Addr(0x400040),
                width: Default::default(),
            },
        ]);
        let mut uops = Vec::new();
        crate::uop::lower_into(&mut uops, &insts);
        let a = sym_block_insts(&insts, 0x400000);
        let b = sym_block_uops(&uops, 0x400000);
        assert_eq!(a, b);
    }

    #[test]
    fn dead_flag_writes_stay_invisible_at_observation_points() {
        // add (dead), cmp (live), jcc: the uop side skips the add's
        // flags entirely, yet the only observation point (the jcc)
        // still agrees with the eager side.
        let insts = with_len(&[
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 4,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Addr(0x400000),
                width: Default::default(),
            },
        ]);
        let mut uops = Vec::new();
        crate::uop::lower_into(&mut uops, &insts);
        assert!(!uops[0].fl && uops[1].fl);
        let a = sym_block_insts(&insts, 0x400100);
        let b = sym_block_uops(&uops, 0x400100);
        assert_eq!(a.flag_checks, b.flag_checks);
        assert_eq!(a, b);
    }
}
