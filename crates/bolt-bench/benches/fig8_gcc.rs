//! Figure 8: GCC-like workload speedups over `-O2` for BOLT, PGO (no LTO
//! due to the paper's build errors), and PGO+BOLT.
//!
//! Paper shape: BOLT 14–24%, PGO 12–17%, PGO+BOLT 18–28%; combination
//! best everywhere.

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_elf::Elf;
use bolt_sim::SimConfig;
use bolt_workloads::{Scale, Workload};

fn inputs(full: i64) -> [(&'static str, i64); 4] {
    [
        ("input1", full / 8),
        ("input2", full / 4),
        ("input3", full / 2),
        ("clang-build", full),
    ]
}

fn measure_inputs(elf: &Elf, cfg: &SimConfig, full: i64) -> Vec<RunResult> {
    inputs(full)
        .iter()
        .map(|&(_, n)| {
            let mut e = elf.clone();
            set_input_size(&mut e, n);
            measure(&e, cfg)
        })
        .collect()
}

fn main() {
    banner("Figure 8", "GCC-like: BOLT vs PGO vs PGO+BOLT (no LTO)");
    let cfg = SimConfig::server();
    let program = Workload::GccLike.build(Scale::Bench);
    let full = 250_000i64;

    let base_elf = build(&program, &CompileOptions::default());
    let (base_profile, _) = profile_lbr(&base_elf, &cfg);
    let base_runs = measure_inputs(&base_elf, &cfg, full);

    let bolt_elf = bolt_with_profile(&base_elf, &base_profile).elf;
    let bolt_runs = measure_inputs(&bolt_elf, &cfg, full);

    // PGO without LTO (paper section 6.2.2).
    let sp = to_source_profile(&base_profile, &base_elf);
    let pgo_elf = build(&program, &CompileOptions::pgo(sp));
    let (pgo_profile, _) = profile_lbr(&pgo_elf, &cfg);
    let pgo_runs = measure_inputs(&pgo_elf, &cfg, full);

    let both_elf = bolt_with_profile(&pgo_elf, &pgo_profile).elf;
    let both_runs = measure_inputs(&both_elf, &cfg, full);

    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "input", "BOLT", "PGO", "PGO+BOLT"
    );
    for (i, (name, _)) in inputs(full).iter().enumerate() {
        assert_same_behavior(&base_runs[i], &bolt_runs[i], name);
        assert_same_behavior(&base_runs[i], &pgo_runs[i], name);
        assert_same_behavior(&base_runs[i], &both_runs[i], name);
        println!(
            "{:<12} {:>9.2}% {:>9.2}% {:>9.2}%",
            name,
            speedup(&base_runs[i], &bolt_runs[i]),
            speedup(&base_runs[i], &pgo_runs[i]),
            speedup(&base_runs[i], &both_runs[i]),
        );
    }
    println!("(paper: BOLT 14-24%, PGO 12-17%, PGO+BOLT 18-28%)");
}
