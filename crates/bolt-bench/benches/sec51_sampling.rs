//! Section 5.1: robustness of LBR profiling across sampling events and
//! precision levels, and the cost of non-LBR profiling.
//!
//! Paper findings: with LBRs, different sampling events land within 1% of
//! each other; naive non-LBR inference can cost ~5%; tuned non-LBR
//! inference stays under ~1% worse than LBR.

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_emu::Tee;
use bolt_opt::{optimize, BoltOptions};
use bolt_profile::{LbrSampler, SampleTrigger};
use bolt_sim::{CpuModel, SimConfig};
use bolt_workloads::{Scale, Workload};

fn lbr_with(
    elf: &bolt_elf::Elf,
    trigger: SampleTrigger,
    skid: u64,
    period: u64,
) -> bolt_profile::Profile {
    let mut sampler = LbrSampler::new(period, trigger);
    sampler.skid = skid;
    let _ = try_run_with(elf, &mut sampler).unwrap_or_else(|e| {
        eprintln!("sec51_sampling: {e}");
        std::process::exit(1)
    });
    sampler.profile
}

fn main() {
    banner(
        "Section 5.1",
        "sampling events, PEBS precision, and non-LBR inference",
    );
    let cfg = SimConfig::server();
    let program = Workload::Proxygen.build(Scale::Bench);
    let baseline = build(&program, &CompileOptions::default());

    let (_, base) = {
        let mut model = CpuModel::new(cfg.clone());
        let mut sampler = LbrSampler::new(SAMPLE_PERIOD, SampleTrigger::Instructions);
        let mut tee = Tee(&mut sampler, &mut model);
        let (code, output, steps) = try_run_with(&baseline, &mut tee).unwrap_or_else(|e| {
            eprintln!("sec51_sampling: {e}");
            std::process::exit(1)
        });
        (
            sampler.profile,
            RunResult {
                exit_code: code,
                output,
                steps,
                counters: model.counters(),
            },
        )
    };

    let variants: Vec<(&str, bolt_profile::Profile)> = vec![
        (
            "LBR/instructions",
            lbr_with(&baseline, SampleTrigger::Instructions, 0, SAMPLE_PERIOD),
        ),
        (
            "LBR/taken-branches",
            lbr_with(&baseline, SampleTrigger::TakenBranches, 0, 251),
        ),
        (
            "LBR/pseudo-cycles",
            lbr_with(&baseline, SampleTrigger::PseudoCycles, 0, SAMPLE_PERIOD),
        ),
        (
            "LBR/skid-8",
            lbr_with(&baseline, SampleTrigger::Instructions, 8, SAMPLE_PERIOD),
        ),
    ];

    println!("{:<22} {:>10}", "profile variant", "speedup");
    let mut lbr_speedups = Vec::new();
    for (name, profile) in &variants {
        let bolted = bolt_with_profile(&baseline, profile);
        let run = measure(&bolted.elf, &cfg);
        assert_same_behavior(&base, &run, name);
        let s = speedup(&base, &run);
        lbr_speedups.push(s);
        println!("{name:<22} {s:>9.2}%");
    }
    let spread = lbr_speedups.iter().fold(f64::MIN, |a, &b| a.max(b))
        - lbr_speedups.iter().fold(f64::MAX, |a, &b| a.min(b));
    println!("LBR event spread: {spread:.2} points (paper: within 1%)");

    // Non-LBR: naive vs tuned inference.
    let ip_profile = profile_ip(&baseline, SAMPLE_PERIOD / 16);
    for (name, tuned) in [("non-LBR naive", false), ("non-LBR tuned", true)] {
        let mut opts = BoltOptions::paper_default();
        opts.non_lbr_tuned = tuned;
        let bolted = optimize(&baseline, &ip_profile, &opts).expect("bolt");
        let run = measure(&bolted.elf, &cfg);
        assert_same_behavior(&base, &run, name);
        println!("{:<22} {:>9.2}%", name, speedup(&base, &run));
    }
    println!("(paper: naive non-LBR up to ~5% worse than LBR; tuned <1% worse)");
}
