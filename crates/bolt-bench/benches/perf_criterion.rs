//! Criterion micro-benchmarks for the reproduction's own algorithms:
//! encoder/decoder throughput, block-layout algorithms, HFSort
//! clustering, flow repair, the cache simulator, and the emulation
//! engine tiers (step / block / superblock / uop).

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_emu::{BlockEvent, Engine, Machine, MemRecord, NullSink, TraceSink};
use bolt_hfsort::{hfsort, hfsort_plus, pettis_hansen, CallGraph};
use bolt_passes::layout::{reorder_function, BlockLayout};
use bolt_profile::repair_flow;
use bolt_sim::{Cache, CpuModel, SimConfig};
use bolt_workloads::{Scale, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// An ALU-dense loop for the lazy-vs-eager flags comparison: a
/// 24-instruction body where *every* instruction writes flags and none
/// reads them — only the loop-back `jne` consumes the final `sub`'s
/// result. Eager engines pay the flags math 24 times per iteration;
/// the uop tier's liveness pass pays it once.
fn alu_dense_elf(iters: i64) -> bolt_elf::Elf {
    use bolt_isa::{encode_at, AluOp, Cond, Inst, JumpWidth, Reg, Target};
    let mut insts = vec![
        Inst::MovRI {
            dst: Reg::Rdx,
            imm: 7,
        },
        Inst::MovRI {
            dst: Reg::Rbx,
            imm: 3,
        },
        Inst::MovRI {
            dst: Reg::Rcx,
            imm: iters.max(1),
        },
    ];
    let loop_head = insts.len();
    for k in 0..8i32 {
        insts.push(Inst::AluI {
            op: AluOp::Add,
            dst: Reg::Rdx,
            imm: k + 1,
        });
        insts.push(Inst::AluI {
            op: AluOp::Xor,
            dst: Reg::Rbx,
            imm: 0x55,
        });
        insts.push(Inst::AluI {
            op: AluOp::And,
            dst: Reg::Rdx,
            imm: 0xFFFF,
        });
    }
    insts.push(Inst::AluI {
        op: AluOp::Sub,
        dst: Reg::Rcx,
        imm: 1,
    });
    let jcc_at = insts.len();
    insts.push(Inst::Jcc {
        cond: Cond::Ne,
        target: Target::Addr(0), // patched below
        width: JumpWidth::Near,
    });
    insts.push(Inst::MovRI {
        dst: Reg::Rax,
        imm: 60,
    });
    insts.push(Inst::MovRI {
        dst: Reg::Rdi,
        imm: 0,
    });
    insts.push(Inst::Syscall);

    let base = 0x400000u64;
    let mut addrs = Vec::with_capacity(insts.len());
    let mut at = base;
    for i in &insts {
        addrs.push(at);
        at += bolt_isa::encoded_len(i) as u64;
    }
    if let Inst::Jcc { target, .. } = &mut insts[jcc_at] {
        *target = Target::Addr(addrs[loop_head]);
    }
    let mut code = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        code.extend(encode_at(inst, addrs[i]).expect("encodes").bytes);
    }
    let mut elf = bolt_elf::Elf::new(base);
    elf.sections
        .push(bolt_elf::Section::code(".text", base, code));
    elf
}

/// A mid-sized disassembled context to exercise pass algorithms.
fn sample_ctx() -> bolt_ir::BinaryContext {
    let program = Workload::Proxygen.build(Scale::Test);
    let elf = build(&program, &CompileOptions::default());
    let (profile, _) = profile_lbr(&elf, &SimConfig::small());
    let (mut ctx, raw) = bolt_opt::discover(&elf);
    bolt_opt::disassemble_all(&mut ctx, &raw, &elf);
    bolt_profile::attach_profile(&mut ctx, &profile);
    ctx
}

fn bench_codec(c: &mut Criterion) {
    let program = Workload::Tao.build(Scale::Test);
    let elf = build(&program, &CompileOptions::default());
    let text = elf.section(".text").unwrap();
    c.bench_function("decode_text_section", |b| {
        b.iter(|| {
            let decoded = bolt_isa::decode_all(black_box(&text.data), text.addr).unwrap();
            black_box(decoded.len())
        })
    });
    let decoded = bolt_isa::decode_all(&text.data, text.addr).unwrap();
    c.bench_function("encode_text_section", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for (off, d) in &decoded {
                let enc = bolt_isa::encode_at(&d.inst, text.addr + off).unwrap();
                bytes += enc.bytes.len();
            }
            black_box(bytes)
        })
    });
}

fn bench_layout(c: &mut Criterion) {
    let ctx = sample_ctx();
    let hot = ctx
        .functions
        .iter()
        .filter(|f| f.is_simple && f.num_live_blocks() > 4)
        .max_by_key(|f| f.exec_count)
        .expect("a hot function")
        .clone();
    for (name, algo) in [
        ("layout_pettis_hansen", BlockLayout::Branch),
        ("layout_ext_tsp", BlockLayout::CachePlus),
    ] {
        let f = hot.clone();
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut g = f.clone();
                reorder_function(&mut g, algo);
                black_box(g.layout.len())
            })
        });
    }
    c.bench_function("flow_repair", |b| {
        b.iter(|| {
            let mut g = hot.clone();
            repair_flow(&mut g);
            black_box(g.total_edge_count())
        })
    });
}

fn bench_hfsort(c: &mut Criterion) {
    // A synthetic 2000-node call graph.
    let mut cg = CallGraph::new();
    for i in 0..2000usize {
        cg.add_node(
            format!("f{i}"),
            64 + (i as u64 % 512),
            (i as u64 * 7919) % 10_000,
        );
    }
    for i in 0..2000usize {
        cg.add_edge(i, (i * 13 + 7) % 2000, (i as u64 * 31) % 5000 + 1);
        cg.add_edge(i, (i * 5 + 3) % 2000, (i as u64 * 17) % 800 + 1);
    }
    c.bench_function("hfsort_c3_2000", |b| {
        b.iter(|| black_box(hfsort(&cg)).len())
    });
    c.bench_function("hfsort_plus_2000", |b| {
        b.iter(|| black_box(hfsort_plus(&cg)).len())
    });
    c.bench_function("pettis_hansen_2000", |b| {
        b.iter(|| black_box(pettis_hansen(&cg)).len())
    });
}

fn bench_cache_sim(c: &mut Criterion) {
    c.bench_function("cache_sim_1m_accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(32 << 10, 8, 64);
            let mut h = 0u64;
            for i in 0..1_000_000u64 {
                h ^= u64::from(cache.access((i * 2654435761) & 0xF_FFFF));
            }
            black_box(h)
        })
    });
    // The memoized last-line fast path: consecutive same-line accesses
    // (a hot loop's data, a basic block's fetches) skip the set scan.
    c.bench_function("cache_sim_1m_memo_hits", |b| {
        b.iter(|| {
            let mut cache = Cache::new(32 << 10, 8, 64);
            let mut h = 0u64;
            for i in 0..1_000_000u64 {
                // 64 consecutive accesses per line before moving on.
                h ^= u64::from(cache.access((i / 64 * 64) & 0xF_FFFF));
            }
            black_box(h)
        })
    });
}

/// The engine comparison (step vs block vs superblock vs uop) on the
/// hot emulation paths: whole-workload execution (translation-cache hit
/// path), the straight-line-heavy workload the superblock tier targets,
/// the dispatch-dominated workload the uop tier targets, batched
/// `on_block` charging vs per-instruction `on_inst`, and the engines
/// driving the full CPU model.
fn bench_block_engine(c: &mut Criterion) {
    let program = Workload::Tao.build(Scale::Test);
    let elf = build(&program, &CompileOptions::default());
    for (name, engine) in [
        ("engine_step_tao_null_sink", Engine::Step),
        ("engine_block_tao_null_sink", Engine::Block),
        ("engine_superblock_tao_null_sink", Engine::Superblock),
        ("engine_uop_tao_null_sink", Engine::Uop),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::new();
                m.load_elf(&elf);
                let r = m.run_engine(&mut NullSink, u64::MAX, engine).unwrap();
                black_box(r.steps)
            })
        });
    }
    for (name, engine) in [
        ("engine_step_tao_cpu_model", Engine::Step),
        ("engine_block_tao_cpu_model", Engine::Block),
        ("engine_superblock_tao_cpu_model", Engine::Superblock),
        ("engine_uop_tao_cpu_model", Engine::Uop),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::new();
                m.load_elf(&elf);
                let mut model = CpuModel::new(SimConfig::small());
                m.run_engine(&mut model, u64::MAX, engine).unwrap();
                black_box(model.counters().instructions)
            })
        });
    }

    // Superblock-vs-block on the workload shape the superblock tier
    // targets: long straight-line runs interleaving ALU work with
    // loads/stores, where the block engine's blocks degenerate to ~2
    // instructions (the ≥1.5x acceptance workload; `bench-snapshot`
    // records the measured ratio in BENCH_emu.json).
    let straight = straightline_elf(2_000);
    for (name, engine) in [
        ("engine_step_straightline", Engine::Step),
        ("engine_block_straightline", Engine::Block),
        ("engine_superblock_straightline", Engine::Superblock),
        ("engine_uop_straightline", Engine::Uop),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::new();
                m.load_elf(&straight);
                let r = m.run_engine(&mut NullSink, u64::MAX, engine).unwrap();
                black_box(r.steps)
            })
        });
    }

    // The dispatch-dominated interp VM — two dispatch sites per
    // iteration whose targets change nearly every execution, the uop
    // tier's stress case (a null sink makes this a dispatch-only loop:
    // pure engine cost, no model work).
    let interp = build(
        &Workload::Interp.build(Scale::Test),
        &CompileOptions::default(),
    );
    for (name, engine) in [
        ("engine_superblock_interp_null_sink", Engine::Superblock),
        ("engine_uop_interp_null_sink", Engine::Uop),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::new();
                m.load_elf(&interp);
                let r = m.run_engine(&mut NullSink, u64::MAX, engine).unwrap();
                black_box(r.steps)
            })
        });
    }

    // Lowering cost per block: a one-iteration binary on a fresh
    // machine each iter, so every block is decoded (superblock) or
    // decoded *and* lowered to micro-ops (uop) exactly once and
    // executed once. The uop-minus-superblock delta is the translation
    // surcharge the tier pays up front.
    let tiny = straightline_elf(1);
    for (name, engine) in [
        ("engine_superblock_translate_only", Engine::Superblock),
        ("engine_uop_translate_and_lower", Engine::Uop),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::new();
                m.load_elf(&tiny);
                let r = m.run_engine(&mut NullSink, u64::MAX, engine).unwrap();
                black_box(r.steps)
            })
        });
    }

    // Lazy vs eager flags: every body instruction writes flags but only
    // the loop-back `jne` reads them. The superblock engine materializes
    // each ALU result's flags eagerly; the uop engine's liveness pass
    // marks all but the last writer dead and skips the flags math.
    let alu = alu_dense_elf(2_000);
    for (name, engine) in [
        ("engine_superblock_alu_eager_flags", Engine::Superblock),
        ("engine_uop_alu_lazy_flags", Engine::Uop),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::new();
                m.load_elf(&alu);
                let r = m.run_engine(&mut NullSink, u64::MAX, engine).unwrap();
                black_box(r.steps)
            })
        });
    }

    // on_block vs N x on_inst on the model alone: one 16-instruction
    // straight-line block charged both ways.
    let entry = 0x400000u64;
    let fetches: Vec<(u64, u8)> = (0..16).map(|i| (entry + i * 4, 4u8)).collect();
    let lines: Vec<u64> = (0..2).map(|i| entry + i * 64).collect();
    let ev = BlockEvent {
        entry,
        inst_count: 16,
        byte_len: 64,
        fetches: &fetches,
        lines64: &lines,
        crossings64: 0,
        mems: &[],
    };
    c.bench_function("cpu_model_16x_on_inst", |b| {
        let mut model = CpuModel::new(SimConfig::small());
        b.iter(|| {
            for &(addr, len) in &fetches {
                model.on_inst(addr, len);
            }
            black_box(model.counters().l1i_accesses)
        })
    });
    c.bench_function("cpu_model_on_block_16", |b| {
        let mut model = CpuModel::new(SimConfig::small());
        b.iter(|| {
            model.on_block(ev);
            black_box(model.counters().l1i_accesses)
        })
    });
    // The superblock event shape: the same block with interleaved
    // memory records, charged batched vs as the equivalent
    // on_inst/on_mem sequence.
    let mems: Vec<MemRecord> = (0..8)
        .map(|i| MemRecord {
            inst: i * 2 + 1,
            addr: 0x7FFF_0000 + (i as u64 % 4) * 8,
            len: 8,
            write: i % 2 == 0,
        })
        .collect();
    let sev = BlockEvent { mems: &mems, ..ev };
    c.bench_function("cpu_model_16x_interleaved_on_inst_mem", |b| {
        let mut model = CpuModel::new(SimConfig::small());
        b.iter(|| {
            let mut mi = 0usize;
            for (i, &(addr, len)) in fetches.iter().enumerate() {
                model.on_inst(addr, len);
                while mi < mems.len() && mems[mi].inst as usize == i {
                    let m = mems[mi];
                    model.on_mem(m.addr, m.len, m.write);
                    mi += 1;
                }
            }
            black_box(model.counters().l1d_accesses)
        })
    });
    c.bench_function("cpu_model_on_superblock_16", |b| {
        let mut model = CpuModel::new(SimConfig::small());
        b.iter(|| {
            model.on_block(sev);
            black_box(model.counters().l1d_accesses)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codec, bench_layout, bench_hfsort, bench_cache_sim, bench_block_engine
);
criterion_main!(benches);
