//! Section 4 (ICF): code-size reduction from BOLT's identical code
//! folding on the HHVM-like binary. The paper measures about 3% on top of
//! the linker's ICF.

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_opt::{optimize, BoltOptions};
use bolt_passes::PassOptions;
use bolt_sim::SimConfig;
use bolt_workloads::{Scale, Workload};

fn hot_text_size(out: &bolt_opt::BoltOutput) -> u64 {
    out.rewrite_stats.hot_text_size + out.rewrite_stats.cold_text_size
}

fn main() {
    banner("ICF", "identical-code-folding size reduction, HHVM-like");
    let cfg = SimConfig::server();
    let program = Workload::Hhvm.build(Scale::Bench);
    let baseline = build(&program, &CompileOptions::default());
    let (profile, base) = profile_lbr(&baseline, &cfg);

    let mut no_icf = BoltOptions::paper_default();
    no_icf.passes = PassOptions {
        icf: false,
        ..PassOptions::default()
    };
    let without = optimize(&baseline, &profile, &no_icf).expect("bolt");
    let with = bolt_with_profile(&baseline, &profile);

    // Behavior identical either way.
    let r1 = measure(&without.elf, &cfg);
    let r2 = measure(&with.elf, &cfg);
    assert_same_behavior(&base, &r1, "no-icf");
    assert_same_behavior(&base, &r2, "icf");

    let s_without = hot_text_size(&without);
    let s_with = hot_text_size(&with);
    let folded: u64 = with
        .pipeline
        .reports
        .iter()
        .filter(|r| r.name == "icf")
        .map(|r| r.changes)
        .sum();
    println!("rewritten text without ICF: {s_without} bytes");
    println!("rewritten text with ICF:    {s_with} bytes ({folded} functions folded)");
    println!(
        "reduction: {:.2}% (paper: ~3% on HHVM beyond linker ICF)",
        100.0 * (s_without.saturating_sub(s_with)) as f64 / s_without.max(1) as f64
    );
}
