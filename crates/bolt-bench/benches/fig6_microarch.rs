//! Figure 6: improvements on microarchitecture metrics for the HHVM-like
//! workload (branch misses ~11%, L1 I-cache misses ~18%, I-TLB, small
//! D-cache and LLC wins in the paper).

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_sim::{Counters, SimConfig};
use bolt_workloads::{Scale, Workload};

fn main() {
    banner(
        "Figure 6",
        "microarchitecture miss reductions, HHVM-like workload",
    );
    let cfg = SimConfig::server();
    let program = Workload::Hhvm.build(Scale::Bench);

    let plain = build(
        &program,
        &CompileOptions {
            lto: true,
            ..CompileOptions::default()
        },
    );
    let (train, _) = profile_lbr(&plain, &cfg);
    let order = hfsort_link_order(&plain, &train);
    let baseline = build(
        &program,
        &CompileOptions {
            lto: true,
            function_order: Some(order),
            ..CompileOptions::default()
        },
    );

    let (profile, base) = profile_lbr(&baseline, &cfg);
    let bolted = bolt_with_profile(&baseline, &profile);
    let new = measure(&bolted.elf, &cfg);
    assert_same_behavior(&base, &new, "hhvm");

    let b = &base.counters;
    let n = &new.counters;
    let rows: [(&str, u64, u64); 6] = [
        ("Branch miss", b.branch_mispredicts, n.branch_mispredicts),
        ("D-Cache miss", b.l1d_misses, n.l1d_misses),
        ("I-Cache miss", b.l1i_misses, n.l1i_misses),
        ("I-TLB miss", b.itlb_misses, n.itlb_misses),
        ("D-TLB miss", b.dtlb_misses, n.dtlb_misses),
        ("LLC miss", b.llc_misses, n.llc_misses),
    ];
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "metric", "baseline", "bolted", "reduction"
    );
    for (name, base_v, new_v) in rows {
        println!(
            "{:<14} {:>12} {:>12} {:>11.1}%",
            name,
            base_v,
            new_v,
            Counters::reduction(base_v, new_v)
        );
    }
    println!("(paper: branch ~11%, I-cache ~18%, I-TLB/LLC positive, D-cache ~1%)");
}
