//! Figure 10 (and section 6.3): the `-report-bad-layout` analysis — hot
//! functions with cold blocks interleaved between hot blocks, traced back
//! to inlining via source files.

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_opt::{optimize, BoltOptions};
use bolt_sim::SimConfig;
use bolt_workloads::{Scale, Workload};

fn main() {
    banner(
        "Figure 10",
        "-report-bad-layout on the PGO+LTO Clang-like binary",
    );
    let cfg = SimConfig::server();
    let program = Workload::ClangLike.build(Scale::Bench);

    // Build with PGO+LTO like the paper's analysis (section 6.3).
    let base = build(&program, &CompileOptions::default());
    let (base_profile, _) = profile_lbr(&base, &cfg);
    let sp = to_source_profile(&base_profile, &base);
    let pgo_elf = build(&program, &CompileOptions::pgo_lto(sp));
    let (profile, _) = profile_lbr(&pgo_elf, &cfg);

    let mut opts = BoltOptions::paper_default();
    opts.report_bad_layout = true;
    opts.print_debug_info = true;
    let out = optimize(&pgo_elf, &profile, &opts).expect("bolt");

    println!("{}", out.bad_layout.as_deref().unwrap_or("(no report)"));
    println!(
        "(paper: even with PGO+LTO, inlining leaves cold blocks between hot ones;\n\
         the report traces them to multiple source files via debug info)"
    );
}
