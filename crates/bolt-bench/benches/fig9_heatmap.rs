//! Figure 9: heat maps of instruction-address accesses for the HHVM-like
//! binary, without and with BOLT. The paper's observation: BOLT packs the
//! hot code from a 148.2 MB span into about 4 MB.

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_sim::{HeatMap, SimConfig};
use bolt_workloads::{Scale, Workload};

fn main() {
    banner(
        "Figure 9",
        "instruction heat maps, HHVM-like, before/after BOLT",
    );
    let cfg = SimConfig::server();
    let program = Workload::Hhvm.build(Scale::Bench);
    let baseline = build(
        &program,
        &CompileOptions {
            lto: true,
            ..CompileOptions::default()
        },
    );
    let (profile, base_run) = profile_lbr(&baseline, &cfg);
    let bolted = bolt_with_profile(&baseline, &profile);

    // Address span covering all executable sections of each binary.
    let span = |elf: &bolt_elf::Elf| {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for s in &elf.sections {
            if s.is_exec() && !s.data.is_empty() {
                lo = lo.min(s.addr);
                hi = hi.max(s.addr + s.data.len() as u64);
            }
        }
        (lo, hi - lo)
    };

    let die = |e: HarnessError| -> ! {
        eprintln!("fig9_heatmap: {e}");
        std::process::exit(1)
    };
    let (b_lo, b_len) = span(&baseline);
    let mut before = HeatMap::new(b_lo, b_len);
    let _ = try_run_with(&baseline, &mut before).unwrap_or_else(|e| die(e));

    let (a_lo, a_len) = span(&bolted.elf);
    let mut after = HeatMap::new(a_lo, a_len);
    let (code, output, _) = try_run_with(&bolted.elf, &mut after).unwrap_or_else(|e| die(e));
    assert_eq!(code, base_run.exit_code);
    assert_eq!(output, base_run.output);

    println!(
        "\n(a) without BOLT  — span {:.2} MB, cell {} B",
        b_len as f64 / 1e6,
        before.block_bytes()
    );
    println!("{}", before.to_ascii());
    println!(
        "(b) with BOLT     — span {:.2} MB, cell {} B",
        a_len as f64 / 1e6,
        after.block_bytes()
    );
    println!("{}", after.to_ascii());

    let b_hot = before.hot_footprint(0.99);
    let a_hot = after.hot_footprint(0.99);
    println!("hot footprint (99% of fetches):");
    println!(
        "  without BOLT: {:>10} bytes over {:.2} MB of text",
        b_hot,
        b_len as f64 / 1e6
    );
    println!("  with BOLT:    {:>10} bytes", a_hot);
    println!(
        "  densification: {:.1}x tighter (paper: ~148 MB -> ~4 MB of hot area)",
        b_hot as f64 / a_hot.max(1) as f64
    );
    println!(
        "occupancy: {:.1}% -> {:.1}% of cells active",
        before.occupancy() * 100.0,
        after.occupancy() * 100.0
    );

    // CSV artifacts for plotting.
    std::fs::create_dir_all("target/bolt-results").ok();
    std::fs::write("target/bolt-results/fig9_before.csv", before.to_csv()).ok();
    std::fs::write("target/bolt-results/fig9_after.csv", after.to_csv()).ok();
    println!("(CSV matrices written to target/bolt-results/fig9_*.csv)");
}
