//! Figure 5: performance improvements from BOLT for the data-center
//! workloads, applied on top of HFSort link-time function reordering
//! (HHVM additionally built with LTO).
//!
//! Paper numbers: speedups from ~2% to 8.0% (HHVM), average 5.4%.

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_sim::SimConfig;
use bolt_workloads::{Scale, Workload};

fn main() {
    banner(
        "Figure 5",
        "BOLT speedup over HFSort baseline, data-center workloads",
    );
    let cfg = SimConfig::server();
    let mut speedups = Vec::new();

    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "workload", "speedup", "base Mcycle", "bolt Mcycle"
    );
    for wl in Workload::DATACENTER {
        let program = wl.build(Scale::Bench);
        // Training build to derive the HFSort link order.
        let plain = build(
            &program,
            &CompileOptions {
                lto: wl == Workload::Hhvm,
                ..CompileOptions::default()
            },
        );
        let (train_profile, _) = profile_lbr(&plain, &cfg);
        let order = hfsort_link_order(&plain, &train_profile);

        // The baseline: HFSort-ordered (+LTO for HHVM).
        let baseline = build(
            &program,
            &CompileOptions {
                lto: wl == Workload::Hhvm,
                function_order: Some(order),
                ..CompileOptions::default()
            },
        );
        let (profile, base_run) = profile_lbr(&baseline, &cfg);

        // BOLT on top.
        let bolted = bolt_with_profile(&baseline, &profile);
        let bolt_run = measure(&bolted.elf, &cfg);
        assert_same_behavior(&base_run, &bolt_run, wl.name());

        let s = speedup(&base_run, &bolt_run);
        speedups.push(s);
        println!(
            "{:<14} {:>9.2}% {:>12.1} {:>12.1}",
            wl.name(),
            s,
            base_run.counters.cycles / 1e6,
            bolt_run.counters.cycles / 1e6
        );
    }
    println!("{:<14} {:>9.2}%", "GeoMean", geomean_speedup(&speedups));
    println!("(paper: 2%..8.0% per workload, average 5.4%; HHVM largest)");
}
