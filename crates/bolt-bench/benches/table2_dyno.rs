//! Table 2: dyno stats reported by BOLT when applied to the Clang-like
//! baseline and PGO+LTO binaries.
//!
//! Paper's headline numbers: taken branches −69.8% over the baseline and
//! −44.3% over PGO+LTO; executed instructions barely move (−1.2%/−0.7%),
//! non-taken conditional branches rise.

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_sim::SimConfig;
use bolt_workloads::{Scale, Workload};

fn main() {
    banner(
        "Table 2",
        "BOLT dyno stats over baseline and PGO+LTO, Clang-like",
    );
    let cfg = SimConfig::server();
    let program = Workload::ClangLike.build(Scale::Bench);

    // Over the plain baseline.
    let base = build(&program, &CompileOptions::default());
    let (profile, _) = profile_lbr(&base, &cfg);
    let over_base = bolt_with_profile(&base, &profile);

    // Over PGO+LTO.
    let sp = to_source_profile(&profile, &base);
    let pgo = build(&program, &CompileOptions::pgo_lto(sp));
    let (pgo_profile, _) = profile_lbr(&pgo, &cfg);
    let over_pgo = bolt_with_profile(&pgo, &pgo_profile);

    println!("\n-- Metric deltas, BOLT over baseline --");
    print!(
        "{}",
        over_base.dyno_after.delta_report(&over_base.dyno_before)
    );
    println!("\n-- Metric deltas, BOLT over PGO+LTO --");
    print!(
        "{}",
        over_pgo.dyno_after.delta_report(&over_pgo.dyno_before)
    );
    println!(
        "\nheadline: taken branches {:+.1}% over baseline (paper -69.8%), {:+.1}% over PGO+LTO (paper -44.3%)",
        over_base.dyno_after.taken_branch_delta(&over_base.dyno_before),
        over_pgo.dyno_after.taken_branch_delta(&over_pgo.dyno_before),
    );
}
