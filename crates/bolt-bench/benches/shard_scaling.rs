//! Sharded batch profiling: serial vs. sharded wall clock on a
//! seed-partitioned data-center workload.
//!
//! The emulator is the reproduction's scaling bottleneck (the paper
//! profiles production-size binaries; we pay instruction-by-instruction
//! emulation for every measurement). This bench partitions one workload
//! into N independent shards by seed, profiles the batch once serially
//! (1 worker) and once sharded across workers, and reports both wall
//! clocks — asserting the merged profile and summed counters are
//! byte-identical, the property `tests/shard_invariance.rs` enforces in
//! CI at test scale.

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_emu::{resolve_shards, Engine};
use bolt_passes::resolve_threads;
use bolt_sim::SimConfig;
use bolt_workloads::{Scale, Workload};
use std::time::Instant;

/// Reads the workload's baked-in `config` input-size word (the value
/// [`set_input_size`] patches).
fn read_config_word(elf: &bolt_elf::Elf) -> i64 {
    let sym = elf.symbol("config").expect("workload has a config global");
    let sec = elf
        .sections
        .iter()
        .find(|s| s.addr_range().contains(&sym.value))
        .expect("config lives in a data section");
    let off = (sym.value - sec.addr) as usize;
    i64::from_le_bytes(sec.data[off..off + 8].try_into().unwrap())
}

fn main() {
    banner("Sharding", "serial vs. sharded batch profiling wall clock");
    let cfg = SimConfig::server();
    let program = Workload::ClangLike.build(Scale::Bench);
    let elf = build(&program, &CompileOptions::default());

    // Partition the full Scale::Bench input across the shards: shard i
    // runs input size full/shards + i (the +i seed offset keeps shards
    // distinguishable), so the batch does roughly the work of one full
    // serial run, split N ways.
    let shards = resolve_shards(0).max(8);
    let full = read_config_word(&elf);
    let base = (full / shards as i64).max(1);
    println!(
        "workload Clang-like (Scale::Bench, full input {}), {} shards (config = {}..{})",
        full,
        shards,
        base,
        base + shards as i64 - 1
    );

    // On single-core runners the sharded leg still runs at least two
    // workers so the determinism assertion always means something.
    let auto = resolve_threads(0);
    let workers = auto.max(2);
    let mut results = Vec::new();
    for threads in [1usize, workers] {
        let plan = shard_plan(shards, threads);
        let started = Instant::now();
        let (profile, batch) =
            profile_lbr_batch_with(&elf, &cfg, &plan, seed_partition(&elf, base));
        let wall = started.elapsed();
        println!(
            "  workers={threads:<3} wall {wall:>9.3?}  ({} samples, {} branch records, {} insts)",
            profile.num_samples,
            profile.branches.len(),
            batch.counters.instructions
        );
        results.push((profile, batch, wall));
    }
    let (serial, sharded) = (&results[0], &results[1]);
    assert_eq!(
        serial.0.to_fdata(),
        sharded.0.to_fdata(),
        "merged profiles must be byte-identical at any worker count"
    );
    assert_eq!(
        serial.1.counters, sharded.1.counters,
        "summed counters must not depend on worker count"
    );
    assert_eq!(serial.1.runs, sharded.1.runs, "per-shard results identical");
    if auto > 1 {
        println!(
            "  speedup at {workers} workers: {:.2}x (identical merged profile and counters)",
            serial.2.as_secs_f64() / sharded.2.as_secs_f64().max(f64::MIN_POSITIVE)
        );
    } else {
        println!(
            "  single hardware thread available: {workers}-worker leg kept for \
             the determinism check only"
        );
    }

    // Execution engines on the identical sharded batch
    // (--engine=step|block|superblock / BOLT_ENGINE): the block engines
    // execute through the translation cache with batched trace events —
    // superblocks additionally span memory-touching instructions and
    // chain block transitions — byte-identical merged profile and
    // counters, less wall clock per shard.
    println!("\nemulation engine (--engine), same batch at {workers} workers:");
    let mut engine_runs = Vec::new();
    for engine in [Engine::Step, Engine::Block, Engine::Superblock] {
        let plan = shard_plan(shards, workers).with_engine(engine);
        let started = Instant::now();
        let (profile, batch) =
            profile_lbr_batch_with(&elf, &cfg, &plan, seed_partition(&elf, base));
        let wall = started.elapsed();
        println!("  --engine={engine:<10} wall {wall:>9.3?}");
        engine_runs.push((profile, batch, wall));
    }
    let step_leg = &engine_runs[0];
    for (engine, leg) in [
        (Engine::Block, &engine_runs[1]),
        (Engine::Superblock, &engine_runs[2]),
    ] {
        assert_eq!(
            step_leg.0.to_fdata(),
            leg.0.to_fdata(),
            "{engine}: merged profiles must be byte-identical across engines"
        );
        assert_eq!(
            step_leg.1.counters, leg.1.counters,
            "{engine}: summed counters must not depend on the engine"
        );
        assert_eq!(
            step_leg.1.runs, leg.1.runs,
            "{engine}: per-shard results identical"
        );
        println!(
            "  {engine}-engine speedup: {:.2}x (identical merged profile and counters)",
            step_leg.2.as_secs_f64() / leg.2.as_secs_f64().max(f64::MIN_POSITIVE)
        );
    }

    // The merged profile drives BOLT exactly like a single-run profile.
    // The measurement plan is derived from BoltOptions — the same path
    // the `-shards=N` / `-threads=N` CLI flags populate.
    let bolted = bolt_with_profile(&elf, &sharded.0);
    let opts = bolt_opt::BoltOptions {
        shards,
        threads: workers,
        ..bolt_opt::BoltOptions::paper_default()
    };
    let plan = shard_plan_from(&opts);
    let before = measure_batch_with(&elf, &cfg, &plan, seed_partition(&elf, base));
    let after = measure_batch_with(&bolted.elf, &cfg, &plan, seed_partition(&bolted.elf, base));
    for (b, a) in before.runs.iter().zip(&after.runs) {
        assert_same_behavior(b, a, "sharded clang");
    }
    println!(
        "  BOLT on the merged profile: {:+.1}% cycles over all {} shards",
        before.counters.speedup_over(&after.counters),
        shards
    );
}
