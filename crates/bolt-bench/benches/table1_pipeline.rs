//! Table 1: the sequence of transformations in BOLT's optimization
//! pipeline, with per-pass activity measured on the HHVM-like workload —
//! plus a serial-vs-parallel comparison of the per-function pass
//! execution (`-threads=N`).

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_emu::Engine;
use bolt_passes::{resolve_threads, PassManager, PassOptions, TABLE1};
use bolt_sim::SimConfig;
use bolt_workloads::{Scale, Workload};
use std::time::Instant;

fn main() {
    banner(
        "Table 1",
        "the optimization pipeline (with measured activity)",
    );
    let cfg = SimConfig::server();
    let program = Workload::Hhvm.build(Scale::Bench);
    let baseline = build(&program, &CompileOptions::default());

    // Emulation dominates the bench's wall clock; compare the engines on
    // the profiling run before timing the pipeline itself. Profiles are
    // byte-identical under every engine — only the wall clock differs.
    println!("emulation engine (--engine=step|block|superblock), profiling run:");
    let mut profiled = Vec::new();
    for engine in [Engine::Step, Engine::Block, Engine::Superblock] {
        let plan = shard_plan(1, 1).with_engine(engine);
        let started = Instant::now();
        let leg = profile_lbr_batch(&baseline, &cfg, &plan);
        let wall = started.elapsed();
        println!("  --engine={engine:<10} wall {wall:>9.3?}");
        profiled.push((leg, wall));
    }
    for (engine, leg) in [
        (Engine::Block, &profiled[1]),
        (Engine::Superblock, &profiled[2]),
    ] {
        assert_eq!(
            profiled[0].0 .0.to_fdata(),
            leg.0 .0.to_fdata(),
            "{engine}: profiles byte-identical across engines"
        );
        assert_eq!(profiled[0].0 .1.runs, leg.0 .1.runs, "{engine}");
        println!(
            "  {engine}-engine speedup: {:.2}x (identical profile and counters)",
            profiled[0].1.as_secs_f64() / leg.1.as_secs_f64().max(f64::MIN_POSITIVE)
        );
    }
    println!();
    let (profile, step_batch) = profiled.swap_remove(0).0;
    let base = step_batch.runs.into_iter().next().expect("one run");
    let bolted = bolt_with_profile(&baseline, &profile);
    let new = measure(&bolted.elf, &cfg);
    assert_same_behavior(&base, &new, "hhvm");

    // Reports in execution order: the sixteen Table-1 rows plus the
    // post-sctc `fixup-branches` re-run (its own report since the sctc
    // timing-attribution fix, shown as row "+"). Repeated passes (icf,
    // peepholes, fixup-branches) are matched to TABLE1 by occurrence,
    // so each gets its own row number and description.
    println!(
        "{:<4} {:<20} {:>8} {:>12}  description",
        "#", "pass", "changes", "time"
    );
    let mut seen: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for r in &bolted.pipeline.reports {
        let occurrence = seen.entry(r.name).and_modify(|n| *n += 1).or_insert(0);
        let table_row = TABLE1
            .iter()
            .enumerate()
            .filter(|(_, (name, _))| *name == r.name)
            .nth(*occurrence);
        let (row, desc) = match table_row {
            Some((i, (_, d))) => ((i + 1).to_string(), *d),
            None => ("+".to_string(), "(re-run, not a Table-1 row)"),
        };
        println!(
            "{:<4} {:<20} {:>8} {:>12}  {}",
            row,
            r.name,
            r.changes,
            format!("{:.3?}", r.duration),
            desc
        );
    }
    println!(
        "{:<4} {:<20} {:>8} {:>12}",
        "",
        "pipeline total",
        "",
        format!("{:.3?}", bolted.pipeline.total_duration())
    );
    println!(
        "\nsimple functions: {}/{} ({} folded or non-simple, kept at original addresses)",
        bolted.simple_functions,
        bolted.ctx.functions.len(),
        bolted.rewrite_stats.skipped_functions
    );

    // Serial vs parallel per-function pass execution on the identical
    // pre-pipeline context. Results must be byte-identical; only the
    // wall clock may differ. On single-core runners the sharded path is
    // still exercised (with at least two workers) so the determinism
    // assertion always means something; the speedup is only meaningful
    // when real parallelism is available.
    let auto = resolve_threads(0);
    let parallel_threads = auto.max(2);
    println!("\nparallel per-function passes (-threads=N), same input context:");
    let ctx0 = prepare_ctx(&baseline, &profile);
    let opts = PassOptions::default();
    let mut runs = Vec::new();
    for threads in [1, parallel_threads] {
        let mut manager = PassManager::standard(&opts);
        manager.config.threads = threads;
        let mut ctx = ctx0.clone();
        let started = Instant::now();
        let result = manager.run(&mut ctx, &opts);
        let wall = started.elapsed();
        println!("  -threads={threads:<3} pipeline wall clock {wall:.3?}");
        runs.push((result, wall));
    }
    let (serial, parallel) = (&runs[0], &runs[1]);
    assert_eq!(
        serial.0.reports, parallel.0.reports,
        "thread count must not change pass reports"
    );
    assert_eq!(
        serial.0.function_order, parallel.0.function_order,
        "thread count must not change the function order"
    );
    if auto > 1 {
        println!(
            "  speedup at {} threads: {:.2}x (identical reports and order)",
            parallel_threads,
            serial.1.as_secs_f64() / parallel.1.as_secs_f64().max(f64::MIN_POSITIVE)
        );
    } else {
        println!(
            "  single hardware thread available: {parallel_threads}-worker run \
             kept for the determinism check only"
        );
    }
}
