//! Table 1: the sequence of transformations in BOLT's optimization
//! pipeline, with per-pass activity measured on the HHVM-like workload.

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_passes::TABLE1;
use bolt_sim::SimConfig;
use bolt_workloads::{Scale, Workload};

fn main() {
    banner(
        "Table 1",
        "the optimization pipeline (with measured activity)",
    );
    let cfg = SimConfig::server();
    let program = Workload::Hhvm.build(Scale::Bench);
    let baseline = build(&program, &CompileOptions::default());
    let (profile, base) = profile_lbr(&baseline, &cfg);
    let bolted = bolt_with_profile(&baseline, &profile);
    let new = measure(&bolted.elf, &cfg);
    assert_same_behavior(&base, &new, "hhvm");

    println!(
        "{:<4} {:<20} {:>8} {:>12}  description",
        "#", "pass", "changes", "time"
    );
    let mut ri = 0;
    for (i, (name, desc)) in TABLE1.iter().enumerate() {
        // Reports appear in pipeline order; match them up by name.
        let (changes, time) = bolted
            .pipeline
            .reports
            .get(ri)
            .filter(|r| r.name == *name)
            .map(|r| {
                ri += 1;
                (r.changes.to_string(), format!("{:.3?}", r.duration))
            })
            .unwrap_or_else(|| ("-".to_string(), "-".to_string()));
        println!(
            "{:<4} {:<20} {:>8} {:>12}  {}",
            i + 1,
            name,
            changes,
            time,
            desc
        );
    }
    println!(
        "{:<4} {:<20} {:>8} {:>12}",
        "",
        "pipeline total",
        "",
        format!("{:.3?}", bolted.pipeline.total_duration())
    );
    println!(
        "\nsimple functions: {}/{} ({} folded or non-simple, kept at original addresses)",
        bolted.simple_functions,
        bolted.ctx.functions.len(),
        bolted.rewrite_stats.skipped_functions
    );
}
