//! Figure 11 (section 6.5): the importance of LBRs — improvements on
//! several metrics for the HHVM-like workload when BOLT uses LBR profiles
//! versus plain IP samples, for three scenarios: function reordering only,
//! basic-block passes only, and everything.
//!
//! Paper shape: LBR helps everywhere; the gap is larger for basic-block
//! layout than for function reordering (block layout needs fine-grained
//! edge counts, section 6.5).

use bolt_bench::*;
use bolt_compiler::CompileOptions;
use bolt_opt::{optimize, BoltOptions};
use bolt_passes::PassOptions;
use bolt_sim::{Counters, SimConfig};
use bolt_workloads::{Scale, Workload};

fn main() {
    banner("Figure 11", "LBR vs non-LBR profile quality, HHVM-like");
    let cfg = SimConfig::server();
    let program = Workload::Hhvm.build(Scale::Bench);
    let baseline = build(
        &program,
        &CompileOptions {
            lto: true,
            ..CompileOptions::default()
        },
    );

    let (lbr_profile, base) = profile_lbr(&baseline, &cfg);
    let ip_profile = profile_ip(&baseline, SAMPLE_PERIOD / 16);

    let scenarios: [(&str, PassOptions); 3] = [
        ("Functions", PassOptions::functions_only()),
        ("BBs", PassOptions::bbs_only()),
        ("Both", PassOptions::default()),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "scenario",
        "Instructions",
        "Branch-miss",
        "I-cache-miss",
        "LLC-miss",
        "iTLB-miss",
        "CPU time"
    );
    for (name, passes) in scenarios {
        let mut opts = BoltOptions::paper_default();
        opts.passes = passes;

        let with_lbr = optimize(&baseline, &lbr_profile, &opts).expect("bolt lbr");
        let lbr_run = measure(&with_lbr.elf, &cfg);
        assert_same_behavior(&base, &lbr_run, name);

        let with_ip = optimize(&baseline, &ip_profile, &opts).expect("bolt ip");
        let ip_run = measure(&with_ip.elf, &cfg);
        assert_same_behavior(&base, &ip_run, name);

        // "Improvement from having LBRs": reduction of each metric in the
        // LBR build relative to the non-LBR build (higher is better).
        let l = &lbr_run.counters;
        let i = &ip_run.counters;
        println!(
            "{:<10} {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}% {:>9.2}%",
            name,
            Counters::reduction(i.instructions, l.instructions),
            Counters::reduction(i.branch_mispredicts, l.branch_mispredicts),
            Counters::reduction(i.l1i_misses, l.l1i_misses),
            Counters::reduction(i.llc_misses, l.llc_misses),
            Counters::reduction(i.itlb_misses, l.itlb_misses),
            100.0 * (i.cycles - l.cycles) / i.cycles.max(1.0),
        );
    }
    println!("(paper: LBR worth ~2% CPU time overall; BB layout depends on it more than function layout)");
}
