//! # bolt-bench — the experiment harness
//!
//! Shared machinery for regenerating every table and figure of the paper's
//! evaluation (section 6): building workload binaries under different
//! compiler configurations, collecting LBR/IP profiles under the emulator,
//! converting binary profiles to source profiles (the AutoFDO-style path
//! PGO consumes), applying BOLT, and measuring with the
//! microarchitectural model.
//!
//! Each bench target under `benches/` regenerates one table or figure; see
//! `EXPERIMENTS.md` at the workspace root for the index.

use bolt_compiler::{compile_and_link, CompileOptions, MirProgram, SourceProfile};
use bolt_elf::Elf;
use bolt_emu::{run_batch, EmuError, Exit, Machine, ShardPlan, Tee, TraceSink};
use bolt_ir::LineTable;
use bolt_opt::{optimize, BoltOptions, BoltOutput};
use bolt_passes::resolve_threads;
use bolt_profile::{IpSampler, LbrSampler, Profile, ProfileMode, SampleTrigger};
use bolt_sim::{Counters, CpuModel, SimConfig};

/// Default emulation budget per run (overridable at runtime: the
/// `BOLT_MAX_STEPS` environment knob, resolved through
/// [`bolt_emu::resolve_max_steps`] by [`budget`]).
pub const MAX_STEPS: u64 = 2_000_000_000;

/// The effective step budget: `BOLT_MAX_STEPS` when set, else
/// [`MAX_STEPS`].
pub fn budget() -> u64 {
    bolt_emu::resolve_max_steps(None, MAX_STEPS)
}
/// Default LBR sampling period (instructions per sample).
pub const SAMPLE_PERIOD: u64 = 997;

/// The observable result of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    pub exit_code: i64,
    pub output: Vec<i64>,
    pub steps: u64,
    pub counters: Counters,
}

/// A harness run that could not produce a measurement: a shard hit an
/// emulation fault or exhausted its step budget without exiting.
///
/// The harness used to panic here; every runner now gets a structured
/// error instead — `bolt-run` prints one line per failed shard and exits
/// 1, while bench binaries (where a non-exiting workload is a bug in the
/// experiment itself) go through the panicking wrappers whose message is
/// this error's `Display`.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// Shard `shard` (of `shards`; 0/1 for unsharded runs) stopped
    /// without reaching `Exit::Exited`.
    DidNotExit {
        shard: usize,
        shards: usize,
        exit: Exit,
        steps: u64,
        budget: u64,
        entry: u64,
    },
    /// The emulator itself faulted (undecodable bytes, trap, unknown
    /// syscall).
    Emu(EmuError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::DidNotExit {
                shard,
                shards,
                exit,
                steps,
                budget,
                entry,
            } => write!(
                f,
                "shard {shard}/{shards} did not exit: {exit:?} after {steps} steps \
                 (budget {budget}, entry {entry:#x}); raise the step budget \
                 (BOLT_MAX_STEPS env or --max-steps) or use more, smaller shards"
            ),
            HarnessError::Emu(e) => write!(f, "emulation failed: {e:?}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<EmuError> for HarnessError {
    fn from(e: EmuError) -> Self {
        HarnessError::Emu(e)
    }
}

/// Builds a binary; panics on compile errors (experiment code).
pub fn build(program: &MirProgram, opts: &CompileOptions) -> Elf {
    compile_and_link(program, opts)
        .expect("workload compiles")
        .elf
}

/// Runs a binary under the microarchitectural model.
pub fn measure(elf: &Elf, cfg: &SimConfig) -> RunResult {
    try_measure(elf, cfg).unwrap_or_else(|e| panic!("measure: {e}"))
}

/// [`measure`], reporting a non-exiting workload as a [`HarnessError`].
pub fn try_measure(elf: &Elf, cfg: &SimConfig) -> Result<RunResult, HarnessError> {
    let mut model = CpuModel::new(cfg.clone());
    let (code, output, steps) = try_run_with(elf, &mut model)?;
    Ok(RunResult {
        exit_code: code,
        output,
        steps,
        counters: model.counters(),
    })
}

/// Runs a binary with an arbitrary sink attached.
pub fn run_with<S: TraceSink + ?Sized>(elf: &Elf, sink: &mut S) -> (i64, Vec<i64>, u64) {
    try_run_with(elf, sink).unwrap_or_else(|e| panic!("run_with: {e}"))
}

/// [`run_with`], reporting a non-exiting workload as a [`HarnessError`]
/// instead of panicking.
pub fn try_run_with<S: TraceSink + ?Sized>(
    elf: &Elf,
    sink: &mut S,
) -> Result<(i64, Vec<i64>, u64), HarnessError> {
    let mut m = Machine::new();
    m.load_elf(elf);
    let budget = budget();
    let r = m.run(sink, budget)?;
    let Exit::Exited(code) = r.exit else {
        return Err(HarnessError::DidNotExit {
            shard: 0,
            shards: 1,
            exit: r.exit,
            steps: r.steps,
            budget,
            entry: elf.entry,
        });
    };
    Ok((code, m.output, r.steps))
}

/// Builds a [`ShardPlan`] for the measurement wrappers, resolving both
/// knobs: `shards == 0` follows the `BOLT_SHARDS` environment override
/// (default 1), `threads == 0` follows `BOLT_THREADS` / available
/// parallelism exactly like the optimizer passes.
pub fn shard_plan(shards: usize, threads: usize) -> ShardPlan {
    ShardPlan::new(bolt_emu::resolve_shards(shards))
        .with_threads(resolve_threads(threads))
        .with_max_steps(budget())
}

/// The measurement [`ShardPlan`] a [`BoltOptions`] describes — the
/// `-shards=N` / `-threads=N` / `-engine=` CLI knobs resolved exactly
/// like [`shard_plan`]. Harness code that already carries a
/// `BoltOptions` (benches, drivers) derives its batch shape from here so
/// the CLI flags, the environment overrides, and the library path can't
/// drift.
pub fn shard_plan_from(opts: &BoltOptions) -> ShardPlan {
    let mut plan = shard_plan(opts.shards, opts.threads);
    plan.engine = opts.engine;
    plan
}

/// The observable result of one sharded batch measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Per-shard results in shard-index order (each with its own
    /// counters snapshot).
    pub runs: Vec<RunResult>,
    /// All shards' counters summed (shard-index order — the sum is
    /// order-insensitive anyway).
    pub counters: Counters,
}

impl BatchResult {
    fn collect(runs: Vec<RunResult>) -> BatchResult {
        let counters = runs.iter().map(|r| &r.counters).sum();
        BatchResult { runs, counters }
    }
}

fn exit_code_of(
    shard: usize,
    r: &bolt_emu::RunResult,
    elf: &Elf,
    plan: &ShardPlan,
) -> Result<i64, HarnessError> {
    match r.exit {
        Exit::Exited(code) => Ok(code),
        exit => Err(HarnessError::DidNotExit {
            shard,
            shards: plan.shards,
            exit,
            steps: r.steps,
            budget: plan.max_steps,
            entry: elf.entry,
        }),
    }
}

/// Runs `plan.shards` independent invocations of `elf` under the
/// microarchitectural model, sharded across `plan.workers()` threads.
/// `prepare(shard, &mut machine)` runs after each shard's load (patch a
/// seed word, select an input partition, …). Per-shard results come back
/// in shard-index order with their counters summed; the batch is
/// byte-identical at any worker count.
pub fn measure_batch_with(
    elf: &Elf,
    cfg: &SimConfig,
    plan: &ShardPlan,
    prepare: impl Fn(usize, &mut Machine) + Sync,
) -> BatchResult {
    try_measure_batch_with(elf, cfg, plan, prepare).unwrap_or_else(|e| panic!("measure_batch: {e}"))
}

/// [`measure_batch_with`], reporting the first failed shard (by shard
/// index) as a [`HarnessError`] instead of panicking.
pub fn try_measure_batch_with(
    elf: &Elf,
    cfg: &SimConfig,
    plan: &ShardPlan,
    prepare: impl Fn(usize, &mut Machine) + Sync,
) -> Result<BatchResult, HarnessError> {
    let shards = run_batch(elf, plan, |_| CpuModel::new(cfg.clone()), prepare)?;
    let runs = shards
        .into_iter()
        .map(|s| {
            Ok(RunResult {
                exit_code: exit_code_of(s.shard, &s.result, elf, plan)?,
                output: s.output,
                steps: s.result.steps,
                counters: s.sink.counters(),
            })
        })
        .collect::<Result<_, HarnessError>>()?;
    Ok(BatchResult::collect(runs))
}

/// [`measure_batch_with`] with no per-shard preparation (every shard
/// runs the binary as loaded).
pub fn measure_batch(elf: &Elf, cfg: &SimConfig, plan: &ShardPlan) -> BatchResult {
    measure_batch_with(elf, cfg, plan, |_, _| ())
}

/// [`measure_batch`], reporting failed shards as a [`HarnessError`].
pub fn try_measure_batch(
    elf: &Elf,
    cfg: &SimConfig,
    plan: &ShardPlan,
) -> Result<BatchResult, HarnessError> {
    try_measure_batch_with(elf, cfg, plan, |_, _| ())
}

/// Per-shard sink for sharded profiling: an LBR sampler and a CPU model
/// fed by the same trace (what `profile_lbr` composes with [`Tee`], but
/// owned so it can cross the batch's thread boundary).
struct ProfilingSink {
    sampler: LbrSampler,
    model: CpuModel,
}

impl TraceSink for ProfilingSink {
    #[inline]
    fn on_inst(&mut self, addr: u64, len: u8) {
        self.sampler.on_inst(addr, len);
        self.model.on_inst(addr, len);
    }

    #[inline]
    fn on_block(&mut self, ev: bolt_emu::BlockEvent<'_>) {
        self.sampler.on_block(ev);
        self.model.on_block(ev);
    }

    #[inline]
    fn on_branch(&mut self, ev: bolt_emu::BranchEvent) {
        self.sampler.on_branch(ev);
        self.model.on_branch(ev);
    }

    #[inline]
    fn on_mem(&mut self, addr: u64, len: u8, write: bool) {
        self.sampler.on_mem(addr, len, write);
        self.model.on_mem(addr, len, write);
    }
}

/// Sharded [`profile_lbr`]: collects an LBR profile and microarch
/// counters from `plan.shards` independent invocations, merging the
/// per-shard profiles in shard-index order ([`Profile::merge`]) and
/// summing the counters. Every shard gets a fresh sampler and model, so
/// the merged profile is byte-identical at any worker count — and a
/// one-shard batch equals a plain [`profile_lbr`] run exactly.
pub fn profile_lbr_batch_with(
    elf: &Elf,
    cfg: &SimConfig,
    plan: &ShardPlan,
    prepare: impl Fn(usize, &mut Machine) + Sync,
) -> (Profile, BatchResult) {
    try_profile_lbr_batch_with(elf, cfg, plan, prepare)
        .unwrap_or_else(|e| panic!("profile_lbr_batch: {e}"))
}

/// [`profile_lbr_batch_with`], reporting the first failed shard (by
/// shard index) as a [`HarnessError`] instead of panicking.
pub fn try_profile_lbr_batch_with(
    elf: &Elf,
    cfg: &SimConfig,
    plan: &ShardPlan,
    prepare: impl Fn(usize, &mut Machine) + Sync,
) -> Result<(Profile, BatchResult), HarnessError> {
    let shards = run_batch(
        elf,
        plan,
        |_| ProfilingSink {
            sampler: LbrSampler::new(SAMPLE_PERIOD, SampleTrigger::Instructions),
            model: CpuModel::new(cfg.clone()),
        },
        prepare,
    )?;
    let mut profile = Profile::new(ProfileMode::Lbr);
    let runs = shards
        .into_iter()
        .map(|s| {
            profile.merge(&s.sink.sampler.profile);
            Ok(RunResult {
                exit_code: exit_code_of(s.shard, &s.result, elf, plan)?,
                output: s.output,
                steps: s.result.steps,
                counters: s.sink.model.counters(),
            })
        })
        .collect::<Result<_, HarnessError>>()?;
    Ok((profile, BatchResult::collect(runs)))
}

/// [`profile_lbr_batch_with`] with no per-shard preparation.
pub fn profile_lbr_batch(elf: &Elf, cfg: &SimConfig, plan: &ShardPlan) -> (Profile, BatchResult) {
    profile_lbr_batch_with(elf, cfg, plan, |_, _| ())
}

/// [`profile_lbr_batch`], reporting failed shards as a [`HarnessError`].
pub fn try_profile_lbr_batch(
    elf: &Elf,
    cfg: &SimConfig,
    plan: &ShardPlan,
) -> Result<(Profile, BatchResult), HarnessError> {
    try_profile_lbr_batch_with(elf, cfg, plan, |_, _| ())
}

/// Returns a seed-partitioning prepare closure for the batch wrappers:
/// shard `i` gets `base + i` written into the workload's `config` global
/// (the word [`set_input_size`] patches statically), so the batch
/// partitions the workload's input space by seed instead of running N
/// identical invocations. Panics if the binary has no `config` symbol.
pub fn seed_partition(elf: &Elf, base: i64) -> impl Fn(usize, &mut Machine) + Sync {
    let addr = elf
        .symbol("config")
        .expect("seed-partitioned workload has a config global")
        .value;
    move |shard, m| m.mem.write_u64(addr, (base + shard as i64) as u64)
}

/// Builds a synthetic straight-line-heavy binary: a loop whose
/// ~50-instruction body is dominated by memory traffic (loads, stores,
/// balanced pushes/pops — a memcpy/spill-heavy shape), then exits 0.
/// This is exactly the pathology the superblock engine targets: under
/// the plain block engine every memory-touching instruction ends a
/// block, so blocks here degenerate to one or two instructions and
/// every transition pays a cache lookup; under the superblock engine
/// the whole body is a single chained block. Used by the
/// `perf_criterion` engine benches, the `bench-snapshot` trajectory
/// script, and the engine-invariance tests.
pub fn straightline_elf(iters: i64) -> Elf {
    use bolt_isa::{encode_at, AluOp, Cond, Inst, JumpWidth, Mem, Reg, Target};
    let mut insts = vec![
        Inst::MovRI {
            dst: Reg::R10,
            imm: 0x500000,
        },
        Inst::MovRI {
            dst: Reg::Rcx,
            imm: iters.max(1),
        },
    ];
    let loop_head = insts.len();
    for k in 0..12i32 {
        insts.push(Inst::Load {
            dst: Reg::Rdx,
            mem: Mem::BaseDisp {
                base: Reg::R10,
                disp: (k % 4) * 8,
            },
        });
        insts.push(Inst::AluI {
            op: AluOp::Add,
            dst: Reg::Rdx,
            imm: k,
        });
        insts.push(Inst::Store {
            mem: Mem::BaseDisp {
                base: Reg::R10,
                disp: 32 + (k % 4) * 8,
            },
            src: Reg::Rdx,
        });
        insts.push(Inst::Push(Reg::Rdx));
        insts.push(Inst::Pop(Reg::Rax));
    }
    insts.push(Inst::AluI {
        op: AluOp::Sub,
        dst: Reg::Rcx,
        imm: 1,
    });
    let jcc_at = insts.len();
    insts.push(Inst::Jcc {
        cond: Cond::Ne,
        target: Target::Addr(0), // patched below
        width: JumpWidth::Near,
    });
    insts.push(Inst::MovRI {
        dst: Reg::Rax,
        imm: 60,
    });
    insts.push(Inst::MovRI {
        dst: Reg::Rdi,
        imm: 0,
    });
    insts.push(Inst::Syscall);

    let base = 0x400000u64;
    let mut addrs = Vec::with_capacity(insts.len());
    let mut at = base;
    for i in &insts {
        addrs.push(at);
        at += bolt_isa::encoded_len(i) as u64;
    }
    if let Inst::Jcc { target, .. } = &mut insts[jcc_at] {
        *target = Target::Addr(addrs[loop_head]);
    }
    let mut code = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        code.extend(encode_at(inst, addrs[i]).expect("encodes").bytes);
    }
    let mut elf = Elf::new(base);
    elf.sections
        .push(bolt_elf::Section::code(".text", base, code));
    elf.sections
        .push(bolt_elf::Section::data(".data", 0x500000, vec![0; 128]));
    elf
}

/// Collects an LBR profile (and microarch counters) in one run.
pub fn profile_lbr(elf: &Elf, cfg: &SimConfig) -> (Profile, RunResult) {
    let mut sampler = LbrSampler::new(SAMPLE_PERIOD, SampleTrigger::Instructions);
    let mut model = CpuModel::new(cfg.clone());
    let (code, output, steps) = {
        let mut tee = Tee(&mut sampler, &mut model);
        run_with(elf, &mut tee)
    };
    (
        sampler.profile,
        RunResult {
            exit_code: code,
            output,
            steps,
            counters: model.counters(),
        },
    )
}

/// Collects a plain IP-sample profile (non-LBR mode, paper section 5.1).
pub fn profile_ip(elf: &Elf, period: u64) -> Profile {
    let mut sampler = IpSampler::new(period);
    let _ = run_with(elf, &mut sampler);
    sampler.profile
}

/// Converts a binary profile to the aggregated source profile compiler
/// PGO consumes (the AutoFDO path, paper section 2.2): samples are mapped
/// through the line table and merged per line — losing per-inline-copy
/// precision exactly as in paper Figure 2.
pub fn to_source_profile(profile: &Profile, elf: &Elf) -> SourceProfile {
    let lines = elf
        .section(".bolt.lines")
        .and_then(|s| LineTable::from_bytes(&s.data).ok())
        .unwrap_or_default();
    let mut sp = SourceProfile::new();

    // IP histogram -> line counts.
    for (&ip, &count) in &profile.ip_samples {
        if let Some((_file, line)) = lines.lookup(ip) {
            sp.add_line(line, count);
        }
    }
    // LBR fall-through ranges cover every line within them.
    for ft in profile.sorted_fallthroughs() {
        let lo = lines.entries.partition_point(|e| e.0 < ft.from);
        let hi = lines.entries.partition_point(|e| e.0 <= ft.to);
        for e in &lines.entries[lo..hi] {
            sp.add_line(e.2, ft.count);
        }
    }
    // Branch records into function entries become call counts.
    let mut func_entries: Vec<(u64, &str)> = elf
        .symbols
        .iter()
        .filter(|s| s.kind == bolt_elf::SymKind::Func)
        .map(|s| (s.value, s.name.as_str()))
        .collect();
    func_entries.sort_unstable();
    for b in profile.sorted_branches() {
        if let Ok(i) = func_entries.binary_search_by_key(&b.to, |e| e.0) {
            if let Some((_f, line)) = lines.lookup(b.from) {
                sp.add_call(line, func_entries[i].1, b.count);
            }
        }
    }
    sp
}

/// Profiles `elf` and applies BOLT with the paper's default options.
pub fn bolt_with_profile(elf: &Elf, profile: &Profile) -> BoltOutput {
    optimize(elf, profile, &BoltOptions::paper_default()).expect("BOLT succeeds")
}

/// The driver's state right before the optimization pipeline runs,
/// under `BoltOptions::paper_default()` — a thin shim over
/// [`bolt_opt::prepare`], so benches and tests that drive `PassManager`
/// directly (e.g. to compare thread counts on the exact same input
/// context) cannot drift from the real driver.
pub fn prepare_ctx(elf: &Elf, profile: &Profile) -> bolt_ir::BinaryContext {
    bolt_opt::prepare(elf, profile, &BoltOptions::paper_default()).ctx
}

/// Asserts two runs are observationally identical (semantics check every
/// experiment performs before reporting numbers).
pub fn assert_same_behavior(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.exit_code, b.exit_code, "{what}: exit codes differ");
    assert_eq!(a.output, b.output, "{what}: outputs differ");
}

/// Percent speedup of `new` over `base` by modeled cycles.
pub fn speedup(base: &RunResult, new: &RunResult) -> f64 {
    base.counters.speedup_over(&new.counters)
}

/// Geometric mean of `1 + p/100` speedups, reported back as a percentage.
pub fn geomean_speedup(speedups: &[f64]) -> f64 {
    if speedups.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = speedups.iter().map(|s| (1.0 + s / 100.0).ln()).sum();
    ((log_sum / speedups.len() as f64).exp() - 1.0) * 100.0
}

/// Renders one experiment table row.
pub fn row(label: &str, cols: &[String]) -> String {
    format!("{label:<14} {}", cols.join("  "))
}

/// Standard experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Computes an HFSort function order for the *linker* from a profile —
/// the paper's baseline configuration for the data-center workloads
/// (section 6.1: "binaries built using GCC and function reordering via
/// HFSort").
pub fn hfsort_link_order(elf: &Elf, profile: &Profile) -> Vec<String> {
    let (mut ctx, raw) = bolt_opt::discover(elf);
    bolt_opt::disassemble_all(&mut ctx, &raw, elf);
    bolt_profile::attach_profile(&mut ctx, profile);
    let order =
        bolt_passes::reorder_functions::run_reorder_functions(&ctx, bolt_hfsort::Algorithm::Hfsort);
    order
        .into_iter()
        .map(|i| ctx.functions[i].name.clone())
        .collect()
}

/// Patches the `config` data word of a compiler-like workload binary to
/// select the input size (the paper's input1/2/3 for Figures 7–8).
pub fn set_input_size(elf: &mut Elf, iterations: i64) {
    let sym = elf
        .symbol("config")
        .expect("workload has a config global")
        .clone();
    let sec = elf
        .sections
        .iter_mut()
        .find(|s| s.addr_range().contains(&sym.value))
        .expect("config lives in a data section");
    let off = (sym.value - sec.addr) as usize;
    sec.data[off..off + 8].copy_from_slice(&iterations.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_workloads::{Scale, Workload};

    #[test]
    fn harness_end_to_end_on_smallest_workload() {
        let program = Workload::Tao.build(Scale::Test);
        let elf = build(&program, &CompileOptions::default());
        let cfg = SimConfig::small();
        let (profile, base) = profile_lbr(&elf, &cfg);
        assert!(profile.total_branch_count() > 0);
        let bolted = bolt_with_profile(&elf, &profile);
        let new = measure(&bolted.elf, &cfg);
        assert_same_behavior(&base, &new, "tao");
    }

    #[test]
    fn source_profile_conversion_produces_counts() {
        let program = Workload::Proxygen.build(Scale::Test);
        let elf = build(&program, &CompileOptions::default());
        let (profile, _) = profile_lbr(&elf, &SimConfig::small());
        let sp = to_source_profile(&profile, &elf);
        assert!(sp.total() > 0, "line counts populated");
        assert!(!sp.call_counts.is_empty(), "call counts populated");
    }

    #[test]
    fn one_shard_batch_equals_plain_profiling_run() {
        let program = Workload::Tao.build(Scale::Test);
        let elf = build(&program, &CompileOptions::default());
        let cfg = SimConfig::small();
        let (serial_profile, serial_run) = profile_lbr(&elf, &cfg);
        let (batch_profile, batch) = profile_lbr_batch(&elf, &cfg, &shard_plan(1, 1));
        assert_eq!(batch.runs.len(), 1);
        assert_eq!(batch_profile, serial_profile);
        assert_eq!(batch.runs[0], serial_run);
        assert_eq!(batch.counters, serial_run.counters);

        let measured = measure_batch(&elf, &cfg, &shard_plan(1, 1));
        assert_eq!(measured.runs[0], measure(&elf, &cfg));
    }

    #[test]
    fn straightline_workload_runs_and_is_engine_invariant() {
        use bolt_emu::{CountingSink, Engine, Exit, Machine};
        let elf = straightline_elf(50);
        let run = |engine: Engine| {
            let mut m = Machine::new();
            m.load_elf(&elf);
            let mut sink = CountingSink::default();
            let r = m.run_engine(&mut sink, u64::MAX, engine).expect("runs");
            assert_eq!(r.exit, Exit::Exited(0), "{engine}");
            (r.steps, format!("{sink:?}"))
        };
        let step = run(Engine::Step);
        assert!(step.0 > 50 * 40, "the loop body actually spins");
        assert_eq!(step, run(Engine::Block), "block engine identical");
        assert_eq!(step, run(Engine::Superblock), "superblock identical");
        assert_eq!(step, run(Engine::Uop), "uop engine identical");
    }

    #[test]
    fn exhausted_step_budget_is_a_structured_error_not_a_panic() {
        let elf = straightline_elf(1_000_000);
        let plan = ShardPlan::new(2).with_threads(1).with_max_steps(50);
        let err = try_measure_batch(&elf, &SimConfig::small(), &plan).unwrap_err();
        let HarnessError::DidNotExit {
            shard,
            shards,
            exit,
            steps,
            budget,
            ..
        } = err
        else {
            panic!("unexpected error: {err}");
        };
        assert_eq!((shard, shards), (0, 2), "first failing shard reported");
        assert_eq!(exit, Exit::MaxSteps);
        assert_eq!(budget, 50);
        assert!(steps >= 50, "ran up to the budget: {steps}");
        assert!(err.to_string().contains("did not exit"));
    }

    #[test]
    fn geomean_math() {
        assert!((geomean_speedup(&[10.0, 10.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean_speedup(&[]), 0.0);
        let g = geomean_speedup(&[0.0, 21.0]);
        assert!(g > 9.0 && g < 11.0, "sqrt(1.21)-1 = 10%: {g}");
    }
}
