//! `bench-snapshot`: records the emulation-engine performance trajectory
//! as a committed artifact instead of a commit-message anecdote.
//!
//! Runs every execution engine (`step`, `block`, `superblock`, `uop`)
//! over a small workload matrix — the TAO and clang-like paper
//! workloads, the dispatch-dominated `interp` VM the uop tier targets,
//! and the synthetic straight-line-heavy loop the superblock tier
//! targets — and writes the wall clocks and derived speedups to `BENCH_emu.json`
//! (engine × workload). Counters are asserted byte-identical across
//! engines while at it, so the snapshot can't silently measure two
//! different computations.
//!
//! ```sh
//! cargo run --release -p bolt-bench --bin bench-snapshot
//! cargo run -p bolt-bench --bin bench-snapshot -- --smoke --out /tmp/b.json
//! ```
//!
//! `--smoke` shrinks the workloads and repetitions so CI can prove the
//! script still runs without burning minutes; its timings are noise and
//! are labeled as such in the output.

use bolt_bench::{build, profile_lbr, straightline_elf};
use bolt_compiler::CompileOptions;
use bolt_elf::{read_elf, write_elf, Elf};
use bolt_emu::{
    run_batch, run_supervised, Engine, Exit, Machine, NullSink, ShardPlan, SupervisePlan,
};
use bolt_opt::{optimize, prepare, rewrite_binary, BoltOptions};
use bolt_passes::PassManager;
use bolt_sim::{Counters, CpuModel, SimConfig};
use bolt_workloads::{Scale, Workload};
use std::fmt::Write as _;
use std::time::Instant;

const ENGINES: [Engine; 4] = [Engine::Step, Engine::Block, Engine::Superblock, Engine::Uop];

struct Leg {
    /// Best-of-reps wall clock with no sink attached (pure engine cost).
    null_ms: f64,
    /// Best-of-reps wall clock driving the full CPU model.
    model_ms: f64,
    steps: u64,
    /// Debug-formatted counters, for the cross-engine identity check.
    fingerprint: String,
}

fn run_leg(elf: &Elf, engine: Engine, reps: usize) -> Leg {
    let mut m = Machine::new();
    let mut null_ms = f64::INFINITY;
    let mut steps = 0u64;
    for _ in 0..reps {
        m.load_elf(elf);
        let t = Instant::now();
        let r = m.run_engine(&mut NullSink, u64::MAX, engine).expect("runs");
        null_ms = null_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert!(matches!(r.exit, Exit::Exited(_)), "workload exits");
        steps = r.steps;
    }
    let mut model_ms = f64::INFINITY;
    let mut fingerprint = String::new();
    for _ in 0..reps {
        m.load_elf(elf);
        let mut model = CpuModel::new(SimConfig::small());
        let t = Instant::now();
        m.run_engine(&mut model, u64::MAX, engine).expect("runs");
        model_ms = model_ms.min(t.elapsed().as_secs_f64() * 1e3);
        fingerprint = format!("{:?}", model.counters());
    }
    Leg {
        null_ms,
        model_ms,
        steps,
        fingerprint,
    }
}

/// Hidden worker mode for the `supervise` section's process arm: run
/// the ELF at `elf_path` once under the CPU model and write the
/// counters as a durable artifact. This is the whole per-shard job, so
/// the A/B below prices exactly the supervision machinery (spawn, ELF
/// reload, artifact write + validate, poll loop).
fn supervise_worker(elf_path: &str, artifact_out: &str) -> ! {
    let bytes = std::fs::read(elf_path).expect("worker reads the elf");
    let elf = read_elf(&bytes).expect("worker parses the elf");
    let mut m = Machine::new();
    m.load_elf(&elf);
    let mut model = CpuModel::new(SimConfig::small());
    let r = m.run(&mut model, u64::MAX).expect("worker runs");
    assert!(matches!(r.exit, Exit::Exited(_)), "workload exits");
    bolt_emu::artifact::write_atomic(
        std::path::Path::new(artifact_out),
        &model.counters().to_artifact(),
    )
    .expect("worker writes its artifact");
    std::process::exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_emu.json");
    let mut worker_elf = None;
    let mut worker_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out takes a path").clone(),
            "--supervise-worker" => worker_elf = it.next().cloned(),
            "--artifact-out" => worker_out = it.next().cloned(),
            other => {
                eprintln!("bench-snapshot: unknown argument {other:?}");
                eprintln!("usage: bench-snapshot [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    if let (Some(elf), Some(art)) = (&worker_elf, &worker_out) {
        supervise_worker(elf, art);
    }
    let (reps, straight_iters) = if smoke { (1, 200) } else { (5, 100_000) };

    let workloads: Vec<(&str, Elf)> = vec![
        (
            "tao",
            build(
                &Workload::Tao.build(Scale::Test),
                &CompileOptions::default(),
            ),
        ),
        (
            "clang_like",
            build(
                &Workload::ClangLike.build(Scale::Test),
                &CompileOptions::default(),
            ),
        ),
        (
            "interp",
            build(
                &Workload::Interp.build(Scale::Test),
                &CompileOptions::default(),
            ),
        ),
        ("straightline", straightline_elf(straight_iters)),
    ];

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"generated_by\": \"bench-snapshot\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"workloads\": {{");

    println!(
        "bench-snapshot ({}): engine x workload wall clocks, best of {reps}",
        if smoke {
            "smoke — timings are noise"
        } else {
            "full"
        }
    );
    let mut uop_wins = 0usize;
    for (wi, (name, elf)) in workloads.iter().enumerate() {
        let legs: Vec<Leg> = ENGINES.iter().map(|&e| run_leg(elf, e, reps)).collect();
        for (e, leg) in ENGINES.iter().zip(&legs) {
            assert_eq!(
                legs[0].fingerprint, leg.fingerprint,
                "{name}/{e}: counters must be byte-identical across engines"
            );
            assert_eq!(legs[0].steps, leg.steps, "{name}/{e}: retired counts");
            println!(
                "  {name:<12} --engine={e:<10} null {:>9.3} ms   cpu-model {:>9.3} ms",
                leg.null_ms, leg.model_ms
            );
        }
        // The cpu-model leg is the product path (every real profiling
        // or measurement run attaches a sink); null-sink isolates the
        // engines themselves.
        let sb_vs_block = legs[1].model_ms / legs[2].model_ms.max(f64::MIN_POSITIVE);
        let sb_vs_block_null = legs[1].null_ms / legs[2].null_ms.max(f64::MIN_POSITIVE);
        let block_vs_step = legs[0].model_ms / legs[1].model_ms.max(f64::MIN_POSITIVE);
        let sb_vs_step = legs[0].model_ms / legs[2].model_ms.max(f64::MIN_POSITIVE);
        let uop_vs_sb = legs[2].model_ms / legs[3].model_ms.max(f64::MIN_POSITIVE);
        let uop_vs_sb_null = legs[2].null_ms / legs[3].null_ms.max(f64::MIN_POSITIVE);
        println!(
            "  {name:<12} cpu-model superblock/block {sb_vs_block:.2}x (null {sb_vs_block_null:.2}x), \
             block/step {block_vs_step:.2}x, superblock/step {sb_vs_step:.2}x, \
             uop/superblock {uop_vs_sb:.2}x (null {uop_vs_sb_null:.2}x)"
        );
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(json, "      \"retired_instructions\": {},", legs[0].steps);
        let _ = writeln!(json, "      \"engines\": {{");
        for (ei, (e, leg)) in ENGINES.iter().zip(&legs).enumerate() {
            let _ = writeln!(
                json,
                "        \"{e}\": {{ \"null_sink_ms\": {:.3}, \"cpu_model_ms\": {:.3} }}{}",
                leg.null_ms,
                leg.model_ms,
                if ei + 1 < ENGINES.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      }},");
        let _ = writeln!(
            json,
            "      \"speedup_superblock_vs_block\": {sb_vs_block:.3},"
        );
        let _ = writeln!(
            json,
            "      \"speedup_superblock_vs_block_null_sink\": {sb_vs_block_null:.3},"
        );
        let _ = writeln!(json, "      \"speedup_block_vs_step\": {block_vs_step:.3},");
        let _ = writeln!(
            json,
            "      \"speedup_superblock_vs_step\": {sb_vs_step:.3},"
        );
        let _ = writeln!(json, "      \"speedup_uop_vs_superblock\": {uop_vs_sb:.3},");
        let _ = writeln!(
            json,
            "      \"speedup_uop_vs_superblock_null_sink\": {uop_vs_sb_null:.3}"
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
        if !smoke && *name == "straightline" && sb_vs_block < 1.5 {
            eprintln!(
                "bench-snapshot: WARNING: superblock/block on the straight-line \
                 workload measured {sb_vs_block:.2}x, below the 1.5x target"
            );
        }
        if uop_vs_sb_null >= 1.3 {
            uop_wins += 1;
        }
    }
    if !smoke && uop_wins < 2 {
        eprintln!(
            "bench-snapshot: WARNING: uop/superblock null-sink hit 1.3x on only \
             {uop_wins} workload(s), below the 2-workload target"
        );
    }
    let _ = writeln!(json, "  }},");

    // Static-verifier wall clock: run the full `-verify` path (pipeline
    // IR lint plus the independent re-disassembly) on the two paper
    // workloads and record what share of the optimize wall clock the
    // verifier costs. A clean pipeline must verify with zero findings —
    // the snapshot refuses to time a broken verifier.
    let _ = writeln!(json, "  \"verifier\": {{");
    let verify_targets = ["tao", "clang_like"];
    for (vi, name) in verify_targets.iter().enumerate() {
        let elf = &workloads
            .iter()
            .find(|(n, _)| n == name)
            .expect("workload built above")
            .1;
        let (profile, _) = profile_lbr(elf, &SimConfig::small());
        let mut opts = BoltOptions::paper_default();
        opts.verify = true;
        let mut verify_ms = f64::INFINITY;
        let mut optimize_ms = f64::INFINITY;
        for _ in 0..reps.min(3) {
            let t = Instant::now();
            let bolted = optimize(elf, &profile, &opts).expect("BOLT succeeds");
            let total = t.elapsed().as_secs_f64() * 1e3;
            assert!(
                bolted.all_findings().is_empty(),
                "{name}: clean pipeline produced verifier findings"
            );
            let lint_ms: f64 = bolted
                .pipeline
                .reports
                .iter()
                .filter(|r| r.name == "verify")
                .map(|r| r.duration.as_secs_f64() * 1e3)
                .sum();
            let rewrite_ms = bolted
                .verify
                .as_ref()
                .expect("-verify ran")
                .duration
                .as_secs_f64()
                * 1e3;
            if total < optimize_ms {
                optimize_ms = total;
                verify_ms = lint_ms + rewrite_ms;
            }
        }
        let pct = 100.0 * verify_ms / optimize_ms.max(f64::MIN_POSITIVE);
        println!(
            "  {name:<12} -verify {verify_ms:>9.3} ms of {optimize_ms:>9.3} ms optimize ({pct:.1}%)"
        );
        let _ =
            writeln!(
            json,
            "    \"{name}\": {{ \"verify_ms\": {verify_ms:.3}, \"optimize_ms\": {optimize_ms:.3}, \
             \"overhead_pct\": {pct:.2} }}{}",
            if vi + 1 < verify_targets.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");

    // Quarantine plumbing overhead: what the fault-tolerance machinery
    // costs on a *clean* run. Arm A is the shipped `optimize()` (retry
    // ladder + per-kernel `catch_unwind` firewall); arm B drives the
    // identical round directly — `prepare` + a firewall-off
    // `PassManager::standard` + `rewrite_binary` — with no ladder
    // bookkeeping and no unwind guards. Both arms must produce a
    // byte-identical binary, so the delta is pure plumbing, not a
    // different computation. Dyno sweeps are off in both arms: they are
    // a reporting feature of the driver, not part of the fault
    // tolerance being priced.
    let _ = writeln!(json, "  \"quarantine\": {{");
    let quarantine_targets = ["tao", "clang_like"];
    for (qi, name) in quarantine_targets.iter().enumerate() {
        let elf = &workloads
            .iter()
            .find(|(n, _)| n == name)
            .expect("workload built above")
            .1;
        let (profile, _) = profile_lbr(elf, &SimConfig::small());
        let mut opts = BoltOptions::paper_default();
        opts.dyno_stats = false;
        let mut guarded_ms = f64::INFINITY;
        let mut guarded_elf = None;
        for _ in 0..reps.min(3) {
            let t = Instant::now();
            let bolted = optimize(elf, &profile, &opts).expect("BOLT succeeds");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(
                bolted.quarantine.is_clean(),
                "{name}: clean run must quarantine nothing:\n{}",
                bolted.quarantine.render()
            );
            if ms < guarded_ms {
                guarded_ms = ms;
                guarded_elf = Some(bolted.elf);
            }
        }
        let mut direct_ms = f64::INFINITY;
        let mut direct_elf = None;
        for _ in 0..reps.min(3) {
            let t = Instant::now();
            let mut prepared = prepare(elf, &profile, &opts);
            let mut manager = PassManager::standard(&opts.passes);
            manager.config.threads = opts.threads;
            manager.config.firewall = false;
            let pipeline = manager.run(&mut prepared.ctx, &opts.passes);
            let (rewritten, _) = rewrite_binary(elf, &prepared.ctx, &pipeline.function_order)
                .expect("direct rewrite succeeds");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if ms < direct_ms {
                direct_ms = ms;
                direct_elf = Some(rewritten);
            }
        }
        assert_eq!(
            write_elf(&guarded_elf.expect("measured")).expect("serializes"),
            write_elf(&direct_elf.expect("measured")).expect("serializes"),
            "{name}: guarded and direct arms must emit byte-identical binaries"
        );
        let pct = 100.0 * (guarded_ms - direct_ms) / direct_ms.max(f64::MIN_POSITIVE);
        println!(
            "  {name:<12} quarantine plumbing {guarded_ms:>9.3} ms guarded \
             vs {direct_ms:>9.3} ms direct ({pct:+.1}%)"
        );
        let _ =
            writeln!(
            json,
            "    \"{name}\": {{ \"optimize_ms\": {guarded_ms:.3}, \"direct_ms\": {direct_ms:.3}, \
             \"overhead_pct\": {pct:.2} }}{}",
            if qi + 1 < quarantine_targets.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");

    // Supervision overhead: the same sharded measurement run as a
    // thread batch in this process (arm A) and as supervised worker
    // *processes* writing durable artifacts (arm B, via the hidden
    // `--supervise-worker` mode of this binary). The summed counters
    // must be identical — the A/B prices process isolation (spawn, ELF
    // reload, artifact write/validate/read, poll loop), not a different
    // computation.
    let _ = writeln!(json, "  \"supervise\": {{");
    {
        let tao = &workloads
            .iter()
            .find(|(n, _)| *n == "tao")
            .expect("workload built above")
            .1;
        let (sv_shards, sv_workers) = if smoke { (2usize, 2usize) } else { (8, 4) };
        let sv_reps = reps.min(3);
        let tmp = std::env::temp_dir().join(format!("bench-snapshot-sv-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).expect("scratch dir");
        let elf_path = tmp.join("tao.elf");
        std::fs::write(&elf_path, write_elf(tao).expect("serializes")).expect("elf on disk");

        let plan = ShardPlan::new(sv_shards).with_threads(sv_workers);
        let mut in_ms = f64::INFINITY;
        let mut in_counters = Counters::default();
        for _ in 0..sv_reps {
            let t = Instant::now();
            let runs = run_batch(tao, &plan, |_| CpuModel::new(SimConfig::small()), |_, _| {})
                .expect("thread batch runs");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            let total: Counters = runs.iter().map(|r| r.sink.counters()).sum();
            if ms < in_ms {
                in_ms = ms;
                in_counters = total;
            }
        }

        let exe = std::env::current_exe().expect("own path");
        let mut sup_ms = f64::INFINITY;
        let mut sup_counters = Counters::default();
        for _ in 0..sv_reps {
            // A fresh state dir per rep: resume would make later reps
            // free and the overhead measurement vacuous.
            let state = tmp.join("state");
            let _ = std::fs::remove_dir_all(&state);
            let mut plan = SupervisePlan::new(sv_shards, state, "bench-snapshot supervise".into());
            plan.procs = sv_workers;
            let t = Instant::now();
            let outcome = run_supervised(&plan, |_, _, path| {
                let mut c = std::process::Command::new(&exe);
                c.arg("--supervise-worker")
                    .arg(&elf_path)
                    .arg("--artifact-out")
                    .arg(path);
                c
            })
            .expect("supervised batch runs");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(
                outcome.report.is_clean() && outcome.report.completed == sv_shards,
                "clean supervised run:\n{}",
                outcome.report.render()
            );
            let total = outcome
                .artifacts
                .iter()
                .map(|p| {
                    let bytes = std::fs::read(p.as_ref().expect("completed")).expect("artifact");
                    Counters::from_artifact(&bytes).expect("validated artifact decodes")
                })
                .sum();
            if ms < sup_ms {
                sup_ms = ms;
                sup_counters = total;
            }
        }
        assert_eq!(
            in_counters, sup_counters,
            "thread and process arms must sum identical counters"
        );
        let pct = 100.0 * (sup_ms - in_ms) / in_ms.max(f64::MIN_POSITIVE);
        let per_shard_ms = (sup_ms - in_ms) / sv_shards as f64;
        println!(
            "  {:<12} supervise {sup_ms:>9.3} ms ({sv_shards} procs x {sv_workers}) \
             vs {in_ms:>9.3} ms in-process ({pct:+.1}%, {per_shard_ms:+.3} ms/shard)",
            "tao"
        );
        let _ = writeln!(
            json,
            "    \"tao\": {{ \"shards\": {sv_shards}, \"workers\": {sv_workers}, \
             \"in_process_ms\": {in_ms:.3}, \"supervised_ms\": {sup_ms:.3}, \
             \"overhead_pct\": {pct:.2}, \"per_shard_overhead_ms\": {per_shard_ms:.3} }}"
        );
        let _ = std::fs::remove_dir_all(&tmp);
    }
    let _ = writeln!(json, "  }},");

    // Symbolic translation-validation overhead: re-run the three
    // translation engines on TAO with semantic validation enabled and
    // record the wall-clock cost against a just-measured baseline (the
    // validator runs once per packed block, at translate time). This
    // section is measured LAST by necessity: the knob is process-global
    // and sticky-on, so everything timed above runs validation-free.
    let _ = writeln!(json, "  \"sem_validate\": {{");
    let tao = &workloads
        .iter()
        .find(|(n, _)| *n == "tao")
        .expect("workload built above")
        .1;
    let sem_engines = [Engine::Block, Engine::Superblock, Engine::Uop];
    let sem_reps = reps.min(3);
    let baseline: Vec<f64> = sem_engines
        .iter()
        .map(|&e| run_leg(tao, e, sem_reps).null_ms)
        .collect();
    bolt_emu::enable_sem_validation();
    for (si, (&e, base_ms)) in sem_engines.iter().zip(&baseline).enumerate() {
        let validated_ms = run_leg(tao, e, sem_reps).null_ms;
        let pct = 100.0 * (validated_ms - base_ms) / base_ms.max(f64::MIN_POSITIVE);
        println!(
            "  {:<12} --engine={e:<10} sem-validate {validated_ms:>9.3} ms \
             vs {base_ms:>9.3} ms baseline ({pct:+.1}%)",
            "tao"
        );
        let _ = writeln!(
            json,
            "    \"{e}\": {{ \"baseline_ms\": {base_ms:.3}, \"validated_ms\": {validated_ms:.3}, \
             \"overhead_pct\": {pct:.2} }}{}",
            if si + 1 < sem_engines.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json).expect("writes the snapshot");
    println!("bench-snapshot: wrote {out}");
}
