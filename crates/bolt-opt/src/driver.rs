//! The BOLT driver: the full rewriting pipeline of paper Figure 3.

use crate::disasm::disassemble_all_with_threads;
use crate::discover::discover;
use crate::emit::{rewrite_binary, RewriteStats};
use crate::options::BoltOptions;
use crate::report::bad_layout_report;
use bolt_elf::Elf;
use bolt_ir::{BinaryContext, EmitError};
use bolt_passes::{dyno, DynoStats, LintMode, PassManager, PipelineResult};
use bolt_profile::{
    attach_profile_opts, infer_callgraph_from_samples, AttachStats, Profile, ProfileMode,
};
use bolt_verify::{verify_rewrite, verify_semantics, VerifyReport};
use std::fmt;

/// Everything a BOLT run produces.
#[derive(Debug)]
pub struct BoltOutput {
    /// The rewritten binary.
    pub elf: Elf,
    /// Dyno stats before the pipeline (paper Table 2's baselines).
    pub dyno_before: DynoStats,
    /// Dyno stats after the pipeline.
    pub dyno_after: DynoStats,
    /// Per-pass reports and the chosen function order.
    pub pipeline: PipelineResult,
    /// The optimized context, for inspection (CFG dumps, heat analysis).
    pub ctx: BinaryContext,
    /// Profile-attachment statistics.
    pub attach_stats: AttachStats,
    /// Rewrite statistics.
    pub rewrite_stats: RewriteStats,
    /// Number of functions BOLT fully understood.
    pub simple_functions: usize,
    /// `-report-bad-layout` output, when requested.
    pub bad_layout: Option<String>,
    /// Static verification of the rewritten binary (`-verify` /
    /// `-verify-each`): the re-disassembly check's report. IR-lint
    /// findings from between passes are in
    /// [`PipelineResult::findings`](bolt_passes::PipelineResult).
    pub verify: Option<VerifyReport>,
    /// Symbolic translation validation of the rewritten binary
    /// (`-verify-sem`): every emitted function's bytes translated under
    /// each emulation tier and proven semantically equivalent to a
    /// fresh decode.
    pub verify_sem: Option<VerifyReport>,
}

impl BoltOutput {
    /// Every verifier finding — IR-lint findings from between passes,
    /// the re-disassembly findings on the rewritten binary, and the
    /// semantic translation-validation findings.
    pub fn all_findings(&self) -> Vec<&bolt_verify::Finding> {
        self.pipeline
            .findings
            .iter()
            .chain(self.verify.iter().flat_map(|v| v.findings.iter()))
            .chain(self.verify_sem.iter().flat_map(|v| v.findings.iter()))
            .collect()
    }
}

/// Driver errors.
#[derive(Debug)]
pub enum BoltError {
    Emit(EmitError),
}

impl fmt::Display for BoltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoltError::Emit(e) => write!(f, "emission failed: {e}"),
        }
    }
}

impl std::error::Error for BoltError {}

impl From<EmitError> for BoltError {
    fn from(e: EmitError) -> BoltError {
        BoltError::Emit(e)
    }
}

/// The driver's state right before the optimization pipeline runs:
/// stages 1–5 of paper Figure 3 (discovery through profile attachment).
#[derive(Debug)]
pub struct PreparedContext {
    /// The disassembled, profile-annotated context the pipeline consumes.
    pub ctx: BinaryContext,
    /// Profile-attachment statistics.
    pub attach_stats: AttachStats,
    /// Number of functions BOLT fully understood.
    pub simple_functions: usize,
}

/// Runs the pre-pipeline stages of [`optimize`] — function discovery,
/// disassembly + CFG construction, and profile attachment — and returns
/// the exact context the optimization pipeline would consume. Benches
/// and tests that drive `PassManager` directly use this so they cannot
/// drift from the real driver.
pub fn prepare(elf: &Elf, profile: &Profile, opts: &BoltOptions) -> PreparedContext {
    // Figure 3: function discovery, read debug info, read profile data.
    let (mut ctx, raw_funcs) = discover(elf);
    // Disassembly + CFG construction (sharded across opts.threads
    // workers, like the per-function passes).
    let simple_functions = disassemble_all_with_threads(&mut ctx, &raw_funcs, elf, opts.threads);
    // Profile attachment (+ non-LBR call-graph inference, section 5.3).
    let attach_stats = attach_profile_opts(&mut ctx, profile, opts.non_lbr_tuned);
    if profile.mode == ProfileMode::IpSamples {
        infer_callgraph_from_samples(&mut ctx);
    }
    PreparedContext {
        ctx,
        attach_stats,
        simple_functions,
    }
}

/// Runs BOLT over `elf` with `profile`.
///
/// # Errors
///
/// Fails only if the optimized IR cannot be re-emitted (a pipeline bug).
pub fn optimize(elf: &Elf, profile: &Profile, opts: &BoltOptions) -> Result<BoltOutput, BoltError> {
    let PreparedContext {
        mut ctx,
        attach_stats,
        simple_functions,
    } = prepare(elf, profile, opts);

    let bad_layout = if opts.report_bad_layout {
        Some(bad_layout_report(&ctx, opts.print_debug_info))
    } else {
        None
    };

    let dyno_before = if opts.dyno_stats {
        dyno::context_dyno_stats(&ctx)
    } else {
        DynoStats::default()
    };

    // Optimization pipeline: the standard Table-1 registry, with
    // per-pass dyno attribution when both -time-passes and -dyno-stats
    // are requested.
    let mut manager = PassManager::standard(&opts.passes);
    manager.config.collect_dyno = opts.time_passes && opts.dyno_stats;
    manager.config.threads = opts.threads;
    manager.config.skip_unchanged = opts.skip_unchanged;
    manager.config.lint = if opts.verify_each {
        LintMode::Each
    } else if opts.verify {
        LintMode::Final
    } else {
        LintMode::Off
    };
    let pipeline = manager.run(&mut ctx, &opts.passes);

    let dyno_after = if opts.dyno_stats {
        dyno::context_dyno_stats(&ctx)
    } else {
        DynoStats::default()
    };

    // Emit and rewrite.
    let (out, rewrite_stats) = rewrite_binary(elf, &ctx, &pipeline.function_order)?;

    // Static verification of the rewritten binary: re-disassemble it
    // with nothing but the decoder and check it against the optimized
    // IR.
    let verify = (opts.verify || opts.verify_each).then(|| verify_rewrite(&out, &ctx));

    // Symbolic translation validation: prove the emulator's translation
    // tiers semantically faithful on exactly the code this binary runs.
    let verify_sem = opts.verify_sem.then(|| verify_semantics(&out, &ctx));

    Ok(BoltOutput {
        elf: out,
        dyno_before,
        dyno_after,
        pipeline,
        ctx,
        attach_stats,
        rewrite_stats,
        simple_functions,
        bad_layout,
        verify,
        verify_sem,
    })
}
