//! The BOLT driver: the full rewriting pipeline of paper Figure 3.

use crate::disasm::disassemble_all_with_threads;
use crate::discover::discover;
use crate::emit::{rewrite_binary, RewriteStats};
use crate::options::BoltOptions;
use crate::report::bad_layout_report;
use bolt_elf::Elf;
use bolt_ir::{BinaryContext, EmitError, NonSimpleReason, OptTier};
use bolt_passes::{dyno, DynoStats, LintMode, PassManager, PipelineResult, PoisonPass};
use bolt_profile::{
    attach_profile_opts, infer_callgraph_from_samples, AttachStats, Profile, ProfileMode,
};
use bolt_verify::{verify_rewrite, verify_semantics, VerifyReport};
use std::collections::BTreeMap;
use std::fmt;

/// Everything a BOLT run produces.
#[derive(Debug)]
pub struct BoltOutput {
    /// The rewritten binary.
    pub elf: Elf,
    /// Dyno stats before the pipeline (paper Table 2's baselines).
    pub dyno_before: DynoStats,
    /// Dyno stats after the pipeline.
    pub dyno_after: DynoStats,
    /// Per-pass reports and the chosen function order.
    pub pipeline: PipelineResult,
    /// The optimized context, for inspection (CFG dumps, heat analysis).
    pub ctx: BinaryContext,
    /// Profile-attachment statistics.
    pub attach_stats: AttachStats,
    /// Rewrite statistics.
    pub rewrite_stats: RewriteStats,
    /// Number of functions BOLT fully understood.
    pub simple_functions: usize,
    /// `-report-bad-layout` output, when requested.
    pub bad_layout: Option<String>,
    /// Static verification of the rewritten binary (`-verify` /
    /// `-verify-each`): the re-disassembly check's report. IR-lint
    /// findings from between passes are in
    /// [`PipelineResult::findings`](bolt_passes::PipelineResult).
    pub verify: Option<VerifyReport>,
    /// Symbolic translation validation of the rewritten binary
    /// (`-verify-sem`): every emitted function's bytes translated under
    /// each emulation tier and proven semantically equivalent to a
    /// fresh decode.
    pub verify_sem: Option<VerifyReport>,
    /// What the fault-tolerance ladder did: every per-function
    /// demotion (layout-only, quarantine) and disabled pass, with the
    /// failing stage and detail. Empty on a healthy run.
    pub quarantine: QuarantineReport,
}

impl BoltOutput {
    /// Every verifier finding — IR-lint findings from between passes,
    /// the re-disassembly findings on the rewritten binary, and the
    /// semantic translation-validation findings.
    pub fn all_findings(&self) -> Vec<&bolt_verify::Finding> {
        self.pipeline
            .findings
            .iter()
            .chain(self.verify.iter().flat_map(|v| v.findings.iter()))
            .chain(self.verify_sem.iter().flat_map(|v| v.findings.iter()))
            .collect()
    }
}

/// Driver errors: the structured taxonomy of everything that can stop a
/// BOLT run. Per-function problems (decode failures, pass panics,
/// verifier findings) normally degrade through the quarantine ladder
/// instead of erroring; these variants surface only when a failure
/// cannot be contained to a function.
#[derive(Debug)]
pub enum BoltError {
    /// The input binary could not be parsed as an ELF image.
    ElfParse { detail: String },
    /// The profile data could not be parsed.
    ProfileParse { detail: String },
    /// A function's bytes failed to decode.
    Decode {
        function: String,
        addr: u64,
        detail: String,
    },
    /// A function's control flow could not be reconstructed.
    CfgDiscovery {
        function: String,
        addr: u64,
        detail: String,
    },
    /// A pass failed beyond what the quarantine ladder could absorb.
    Pass {
        pass: String,
        function: Option<String>,
        detail: String,
    },
    /// Re-emission failed even after quarantine retries.
    Emit(EmitError),
}

impl fmt::Display for BoltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoltError::ElfParse { detail } => write!(f, "malformed ELF: {detail}"),
            BoltError::ProfileParse { detail } => write!(f, "malformed profile: {detail}"),
            BoltError::Decode {
                function,
                addr,
                detail,
            } => write!(f, "decode failed in {function} @ {addr:#x}: {detail}"),
            BoltError::CfgDiscovery {
                function,
                addr,
                detail,
            } => write!(
                f,
                "CFG discovery failed in {function} @ {addr:#x}: {detail}"
            ),
            BoltError::Pass {
                pass,
                function,
                detail,
            } => match function {
                Some(func) => write!(f, "pass {pass} failed on {func}: {detail}"),
                None => write!(f, "pass {pass} failed: {detail}"),
            },
            BoltError::Emit(e) => write!(f, "emission failed: {e}"),
        }
    }
}

impl std::error::Error for BoltError {}

impl From<EmitError> for BoltError {
    fn from(e: EmitError) -> BoltError {
        BoltError::Emit(e)
    }
}

impl From<bolt_elf::ElfError> for BoltError {
    fn from(e: bolt_elf::ElfError) -> BoltError {
        BoltError::ElfParse {
            detail: e.to_string(),
        }
    }
}

impl From<bolt_profile::FdataError> for BoltError {
    fn from(e: bolt_profile::FdataError) -> BoltError {
        BoltError::ProfileParse {
            detail: e.to_string(),
        }
    }
}

/// What the fault-tolerance ladder did to contain one failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QuarantineAction {
    /// The function was demoted to [`OptTier::LayoutOnly`]:
    /// instruction-mutating passes skip it, layout passes still run.
    DemoteLayoutOnly,
    /// The function was excluded from optimization entirely; the
    /// rewritten binary keeps its original bytes verbatim.
    Quarantine,
    /// A whole-context pass poisoned the shared context; it was
    /// disabled and the pipeline rebuilt from scratch.
    DisablePass,
}

impl QuarantineAction {
    /// Stable report name.
    pub fn as_str(self) -> &'static str {
        match self {
            QuarantineAction::DemoteLayoutOnly => "layout-only",
            QuarantineAction::Quarantine => "quarantine",
            QuarantineAction::DisablePass => "disable-pass",
        }
    }
}

impl fmt::Display for QuarantineAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One degradation taken by the ladder: which function (or pass), at
/// which stage of the pipeline, demoted how far, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// The affected function (empty for [`QuarantineAction::DisablePass`]).
    pub function: String,
    /// The failing stage: `pass:<name>`, `emit`, `lint`, `verify`, or
    /// `verify-sem`.
    pub stage: String,
    pub action: QuarantineAction,
    pub detail: String,
}

impl fmt::Display for QuarantineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.action)?;
        if !self.function.is_empty() {
            write!(f, " {}", self.function)?;
        }
        write!(f, " at {}: {}", self.stage, self.detail)
    }
}

/// Everything the quarantine ladder did during a run. A healthy run has
/// `rounds == 1` and no events.
#[derive(Debug, Clone, Default)]
pub struct QuarantineReport {
    /// Every degradation, in the order it was taken.
    pub events: Vec<QuarantineEvent>,
    /// How many times the pipeline ran (1 = no retries).
    pub rounds: usize,
    /// Functions running at [`OptTier::LayoutOnly`] in the final round.
    pub layout_only: usize,
    /// Functions fully excluded in the final round.
    pub quarantined: usize,
    /// Whole-context passes disabled for the final round.
    pub disabled_passes: Vec<String>,
}

impl QuarantineReport {
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }

    /// `-time-passes`-style text block, one line per degradation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "quarantine: {} round(s), {} layout-only, {} quarantined, {} pass(es) disabled\n",
            self.rounds,
            self.layout_only,
            self.quarantined,
            self.disabled_passes.len()
        ));
        for e in &self.events {
            out.push_str(&format!("  {e}\n"));
        }
        out
    }
}

/// The driver's state right before the optimization pipeline runs:
/// stages 1–5 of paper Figure 3 (discovery through profile attachment).
#[derive(Debug)]
pub struct PreparedContext {
    /// The disassembled, profile-annotated context the pipeline consumes.
    pub ctx: BinaryContext,
    /// Profile-attachment statistics.
    pub attach_stats: AttachStats,
    /// Number of functions BOLT fully understood.
    pub simple_functions: usize,
}

/// Runs the pre-pipeline stages of [`optimize`] — function discovery,
/// disassembly + CFG construction, and profile attachment — and returns
/// the exact context the optimization pipeline would consume. Benches
/// and tests that drive `PassManager` directly use this so they cannot
/// drift from the real driver.
pub fn prepare(elf: &Elf, profile: &Profile, opts: &BoltOptions) -> PreparedContext {
    // Figure 3: function discovery, read debug info, read profile data.
    let (mut ctx, raw_funcs) = discover(elf);
    // Disassembly + CFG construction (sharded across opts.threads
    // workers, like the per-function passes).
    let simple_functions = disassemble_all_with_threads(&mut ctx, &raw_funcs, elf, opts.threads);
    // Profile attachment (+ non-LBR call-graph inference, section 5.3).
    let attach_stats = attach_profile_opts(&mut ctx, profile, opts.non_lbr_tuned);
    if profile.mode == ProfileMode::IpSamples {
        infer_callgraph_from_samples(&mut ctx);
    }
    PreparedContext {
        ctx,
        attach_stats,
        simple_functions,
    }
}

/// Retry-round backstop. Each retry records at least one new demotion
/// or disabled pass, so the ladder terminates on its own; the cap only
/// bounds pathological inputs.
const MAX_ROUNDS: usize = 16;

/// Runs BOLT over `elf` with `profile`.
///
/// Per-function failures — a panicking pass kernel, an emit error
/// attributable to one function, a `-verify`/`-verify-sem` finding —
/// degrade through a retry ladder instead of failing the run: the
/// function is demoted `default -> layout-only -> quarantined` and the
/// pipeline re-runs from a fresh [`prepare`]. A quarantined function
/// keeps its original bytes verbatim in the output. A panicking
/// whole-context pass poisons the shared IR, so it is disabled outright
/// and the pipeline rebuilt. Everything the ladder did is reported in
/// [`BoltOutput::quarantine`]; a healthy run takes one round and
/// reports nothing.
///
/// # Errors
///
/// Fails only when a failure cannot be contained to a function even
/// with every rung of the ladder exhausted (see [`BoltError`]).
pub fn optimize(elf: &Elf, profile: &Profile, opts: &BoltOptions) -> Result<BoltOutput, BoltError> {
    // Demotions accumulated across rounds, keyed by function name:
    // prepare() is deterministic, so names are stable round to round.
    let mut demotions: BTreeMap<String, QuarantineAction> = BTreeMap::new();
    let mut disabled_passes: Vec<String> = Vec::new();
    let mut events: Vec<QuarantineEvent> = Vec::new();
    let mut rounds = 0usize;
    // Fault-injection target, resolved once from the pristine round-1
    // context — resolving per round would shift the Nth-simple-function
    // index onto an innocent neighbor once the target is quarantined.
    let mut poison_target: Option<String> = None;

    'ladder: loop {
        rounds += 1;
        let PreparedContext {
            mut ctx,
            attach_stats,
            simple_functions: _,
        } = prepare(elf, profile, opts);

        for (name, action) in &demotions {
            let Some(&fi) = ctx.by_name.get(name.as_str()) else {
                continue;
            };
            match action {
                QuarantineAction::DemoteLayoutOnly => {
                    ctx.functions[fi].opt_tier = OptTier::LayoutOnly;
                }
                QuarantineAction::Quarantine => {
                    ctx.functions[fi].is_simple = false;
                    ctx.functions[fi].non_simple_reason = Some(NonSimpleReason::Quarantined);
                }
                QuarantineAction::DisablePass => unreachable!("demotions hold function actions"),
            }
        }
        // Recount after demotions: quarantined functions are no longer
        // simple (a clean run matches prepare()'s count exactly).
        let simple_functions = ctx.functions.iter().filter(|f| f.is_simple).count();

        let bad_layout = if opts.report_bad_layout {
            Some(bad_layout_report(&ctx, opts.print_debug_info))
        } else {
            None
        };

        let dyno_before = if opts.dyno_stats {
            dyno::context_dyno_stats(&ctx)
        } else {
            DynoStats::default()
        };

        // Optimization pipeline: the standard Table-1 registry, with
        // per-pass dyno attribution when both -time-passes and
        // -dyno-stats are requested.
        let mut manager = PassManager::standard(&opts.passes);
        manager.config.collect_dyno = opts.time_passes && opts.dyno_stats;
        manager.config.threads = opts.threads;
        manager.config.skip_unchanged = opts.skip_unchanged;
        manager.config.lint = if opts.verify_each {
            LintMode::Each
        } else if opts.verify {
            LintMode::Final
        } else {
            LintMode::Off
        };
        manager.config.disabled = disabled_passes.clone();
        if let Some(nth) = opts.poison_nth {
            // Fault injection: resolve the Nth simple function by index
            // (deterministic under any thread count) and register a
            // pass that panics on it.
            if rounds == 1 {
                poison_target = ctx
                    .functions
                    .iter()
                    .filter(|f| f.is_simple)
                    .nth(nth)
                    .map(|f| f.name.clone());
            }
            if let Some(target) = &poison_target {
                manager.register(Box::new(PoisonPass {
                    target: target.clone(),
                }));
            }
        }
        let pipeline = manager.run(&mut ctx, &opts.passes);

        // Contain pipeline failures before trusting the IR any further.
        let mut retry = false;
        if let Some(abort) = pipeline.aborted_by() {
            // A whole-context pass panicked: the shared IR is
            // untrusted. Disable the pass and rebuild from scratch.
            if rounds >= MAX_ROUNDS {
                return Err(BoltError::Pass {
                    pass: abort.pass.clone(),
                    function: None,
                    detail: abort.detail.clone(),
                });
            }
            disabled_passes.push(abort.pass.clone());
            events.push(QuarantineEvent {
                function: String::new(),
                stage: format!("pass:{}", abort.pass),
                action: QuarantineAction::DisablePass,
                detail: abort.detail.clone(),
            });
            retry = true;
        }
        for failure in &pipeline.failures {
            let Some(func) = &failure.function else {
                continue; // the whole-context abort, handled above
            };
            let action = match demotions.get(func) {
                None => QuarantineAction::DemoteLayoutOnly,
                Some(QuarantineAction::DemoteLayoutOnly) => QuarantineAction::Quarantine,
                Some(_) => continue, // already fully excluded
            };
            if rounds >= MAX_ROUNDS {
                return Err(BoltError::Pass {
                    pass: failure.pass.clone(),
                    function: Some(func.clone()),
                    detail: failure.detail.clone(),
                });
            }
            demotions.insert(func.clone(), action);
            events.push(QuarantineEvent {
                function: func.clone(),
                stage: format!("pass:{}", failure.pass),
                action,
                detail: failure.detail.clone(),
            });
            retry = true;
        }
        if retry {
            continue 'ladder;
        }

        let dyno_after = if opts.dyno_stats {
            dyno::context_dyno_stats(&ctx)
        } else {
            DynoStats::default()
        };

        // Emit and rewrite. An emit error attributable to one function
        // quarantines it; anything else quarantines every still-emitted
        // function (last-resort graceful degradation: the output then
        // preserves the input bytes wholesale).
        let (out, rewrite_stats) = match rewrite_binary(elf, &ctx, &pipeline.function_order) {
            Ok(v) => v,
            Err(e) => {
                if rounds >= MAX_ROUNDS {
                    return Err(BoltError::Emit(e));
                }
                let mut progressed = false;
                let culprits: Vec<String> = match &e {
                    EmitError::TrailingFallthrough { function } => vec![function.clone()],
                    _ => ctx
                        .functions
                        .iter()
                        .filter(|f| f.is_simple)
                        .map(|f| f.name.clone())
                        .collect(),
                };
                for func in culprits {
                    if demotions.get(&func) == Some(&QuarantineAction::Quarantine) {
                        continue;
                    }
                    demotions.insert(func.clone(), QuarantineAction::Quarantine);
                    events.push(QuarantineEvent {
                        function: func,
                        stage: "emit".to_string(),
                        action: QuarantineAction::Quarantine,
                        detail: e.to_string(),
                    });
                    progressed = true;
                }
                if !progressed {
                    return Err(BoltError::Emit(e));
                }
                continue 'ladder;
            }
        };

        // Static verification of the rewritten binary: re-disassemble
        // it with nothing but the decoder and check it against the
        // optimized IR.
        let verify = (opts.verify || opts.verify_each).then(|| verify_rewrite(&out, &ctx));

        // Symbolic translation validation: prove the emulator's
        // translation tiers semantically faithful on exactly the code
        // this binary runs.
        let verify_sem = opts.verify_sem.then(|| verify_semantics(&out, &ctx));

        // A function the verifiers flag is excluded and the pipeline
        // re-run; whole-binary findings (no function attribution) are
        // reported but cannot be retried away.
        if rounds < MAX_ROUNDS {
            let lint_findings = pipeline.findings.iter().map(|f| ("lint", f));
            let verify_findings = verify
                .iter()
                .flat_map(|v| v.findings.iter())
                .map(|f| ("verify", f));
            let sem_findings = verify_sem
                .iter()
                .flat_map(|v| v.findings.iter())
                .map(|f| ("verify-sem", f));
            for (stage, finding) in lint_findings.chain(verify_findings).chain(sem_findings) {
                if finding.function.is_empty()
                    || demotions.get(&finding.function) == Some(&QuarantineAction::Quarantine)
                {
                    continue;
                }
                demotions.insert(finding.function.clone(), QuarantineAction::Quarantine);
                events.push(QuarantineEvent {
                    function: finding.function.clone(),
                    stage: stage.to_string(),
                    action: QuarantineAction::Quarantine,
                    detail: finding.to_string(),
                });
                retry = true;
            }
            if retry {
                continue 'ladder;
            }
        }

        let quarantine = QuarantineReport {
            rounds,
            layout_only: demotions
                .values()
                .filter(|&&a| a == QuarantineAction::DemoteLayoutOnly)
                .count(),
            quarantined: demotions
                .values()
                .filter(|&&a| a == QuarantineAction::Quarantine)
                .count(),
            disabled_passes: disabled_passes.clone(),
            events,
        };

        return Ok(BoltOutput {
            elf: out,
            dyno_before,
            dyno_after,
            pipeline,
            ctx,
            attach_stats,
            rewrite_stats,
            simple_functions,
            bad_layout,
            verify,
            verify_sem,
            quarantine,
        });
    }
}
