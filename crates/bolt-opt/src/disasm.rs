//! Stages 2–3 of the rewriting pipeline (paper Figure 3): disassembly and
//! CFG construction.
//!
//! Functions whose control flow cannot be reconstructed with full
//! confidence are left non-simple and untouched (paper section 3.1) —
//! e.g. indirect jumps that do not match a jump-table pattern, or jump
//! tables living in writable memory.

use crate::discover::RawFunction;
use bolt_elf::Elf;
use bolt_ir::{
    BasicBlock, BinaryContext, BinaryInst, BlockId, JumpTable, LineInfo, NonSimpleReason, SuccEdge,
};
use bolt_isa::{decode, AluOp, Inst, Label, Mem, Reg, Rm, Target};
use std::collections::{BTreeMap, BTreeSet};

/// One decoded instruction with placement info.
#[derive(Debug, Clone)]
struct Slot {
    addr: u64,
    inst: Inst,
    len: u8,
}

/// A recognized jump-table dispatch.
#[derive(Debug, Clone)]
struct JtInfo {
    /// Address of the indirect jump instruction.
    jmp_addr: u64,
    /// Address of the table in data.
    table_addr: u64,
    /// Entry target addresses.
    targets: Vec<u64>,
}

/// Disassembles every discovered function into `ctx`, constructing CFGs.
/// Functions are processed in parallel (BOLT processes functions
/// concurrently; disassembly and CFG construction are per-function pure),
/// with the worker count resolved automatically. Returns the number of
/// simple functions.
pub fn disassemble_all(ctx: &mut BinaryContext, funcs: &[RawFunction], elf: &Elf) -> usize {
    disassemble_all_with_threads(ctx, funcs, elf, 0)
}

/// [`disassemble_all`] with an explicit worker-count knob (the driver's
/// `-threads=N`): `0` = auto (`BOLT_THREADS` env override or
/// `available_parallelism`), `1` forces the serial path. The resulting
/// context is identical at any value.
pub fn disassemble_all_with_threads(
    ctx: &mut BinaryContext,
    funcs: &[RawFunction],
    elf: &Elf,
    threads: usize,
) -> usize {
    let n_threads = bolt_passes::resolve_threads(threads);
    let results: Vec<Result<bolt_ir::BinaryFunction, NonSimpleReason>> =
        if n_threads <= 1 || funcs.len() < 32 {
            funcs
                .iter()
                .map(|raw| disassemble_function(ctx, raw, elf))
                .collect()
        } else {
            let chunk = funcs.len().div_ceil(n_threads);
            let ctx_ref = &*ctx;
            std::thread::scope(|scope| {
                let handles: Vec<_> = funcs
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || {
                            slice
                                .iter()
                                .map(|raw| disassemble_function(ctx_ref, raw, elf))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("disassembly worker"))
                    .collect()
            })
        };

    let mut simple = 0;
    for (fi, result) in results.into_iter().enumerate() {
        match result {
            Ok(mut func) => {
                func.is_simple = true;
                ctx.functions[fi] = func;
                simple += 1;
            }
            Err(reason) => {
                ctx.functions[fi].is_simple = false;
                ctx.functions[fi].non_simple_reason = Some(reason);
            }
        }
    }
    ctx.reindex();
    simple
}

fn disassemble_function(
    ctx: &BinaryContext,
    raw: &RawFunction,
    elf: &Elf,
) -> Result<bolt_ir::BinaryFunction, NonSimpleReason> {
    let start = raw.address;
    let end = raw.address + raw.size;
    let Some(bytes) = elf.read_vaddr(start, raw.size as usize) else {
        return Err(NonSimpleReason::UndecodableBytes);
    };

    // Linear decode.
    let mut slots: Vec<Slot> = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let addr = start + off as u64;
        let Ok(d) = decode(&bytes[off..], addr) else {
            return Err(NonSimpleReason::UndecodableBytes);
        };
        slots.push(Slot {
            addr,
            inst: d.inst,
            len: d.len,
        });
        off += d.len as usize;
    }

    // Jump-table recognition.
    let mut jump_tables: Vec<JtInfo> = Vec::new();
    for (i, s) in slots.iter().enumerate() {
        let Inst::JmpInd { rm } = s.inst else {
            continue;
        };
        match rm {
            Rm::Mem(Mem::RipRel { .. }) => {
                // Tail jump through memory (PLT-style): allowed, no
                // successors.
                continue;
            }
            Rm::Mem(_) => return Err(NonSimpleReason::UnresolvedIndirectJump),
            Rm::Reg(jreg) => {
                let Some(jt) = match_jump_table(ctx, &slots[..i], jreg, s.addr) else {
                    // An indirect jump we cannot prove is a local dispatch:
                    // possibly an indirect tail call (paper section 6.4).
                    return Err(NonSimpleReason::UnresolvedIndirectJump);
                };
                // All entries must land inside the function.
                if !jt.targets.iter().all(|t| *t >= start && *t < end) {
                    return Err(NonSimpleReason::OutOfRangeControlFlow);
                }
                jump_tables.push(jt);
            }
        }
    }

    // Leaders.
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    leaders.insert(start);
    for (i, s) in slots.iter().enumerate() {
        match s.inst {
            Inst::Jcc { target, .. } | Inst::Jmp { target, .. } => {
                if let Target::Addr(t) = target {
                    if t >= start && t < end {
                        leaders.insert(t);
                    }
                }
                if let Some(next) = slots.get(i + 1) {
                    leaders.insert(next.addr);
                }
            }
            Inst::Ret | Inst::RepzRet | Inst::Ud2 | Inst::JmpInd { .. } => {
                if let Some(next) = slots.get(i + 1) {
                    leaders.insert(next.addr);
                }
            }
            _ => {}
        }
    }
    for jt in &jump_tables {
        for t in &jt.targets {
            leaders.insert(*t);
        }
    }
    // Landing pads referenced by the exception table.
    for (&cs, &lp) in &ctx.exceptions.entries {
        if cs >= start && cs < end {
            if lp < start || lp >= end {
                return Err(NonSimpleReason::OutOfRangeControlFlow);
            }
            leaders.insert(lp);
        }
    }
    // Leaders must fall on instruction boundaries.
    let inst_at: BTreeMap<u64, usize> =
        slots.iter().enumerate().map(|(i, s)| (s.addr, i)).collect();
    for l in &leaders {
        if !inst_at.contains_key(l) {
            return Err(NonSimpleReason::OutOfRangeControlFlow);
        }
    }

    // Build blocks.
    let mut func = bolt_ir::BinaryFunction::new(&raw.name, raw.address);
    func.size = raw.size;
    func.section = raw.section.clone();
    let leader_list: Vec<u64> = leaders.iter().copied().collect();
    let mut block_of_addr: BTreeMap<u64, BlockId> = BTreeMap::new();
    for &l in &leader_list {
        let mut b = BasicBlock::new();
        b.orig_addr = l;
        let id = func.add_block(b);
        block_of_addr.insert(l, id);
    }
    // Assign instructions (discarding NOPs and alignment padding: paper
    // section 4, "BOLT's policy of discarding all NOPs after reading the
    // input binary").
    for s in &slots {
        if matches!(s.inst, Inst::Nop { .. }) {
            continue;
        }
        let (&leader, &bid) = block_of_addr
            .range(..=s.addr)
            .next_back()
            .expect("start is a leader");
        let _ = leader;
        let mut bi = BinaryInst::new(s.inst).at(s.addr);
        if let Some((file, line)) = ctx.lines.lookup(s.addr) {
            bi.line = Some(LineInfo { file, line });
        }
        if s.inst.is_call() {
            if let Some(lp) = ctx.exceptions.landing_pad_for(s.addr) {
                bi.landing_pad = block_of_addr.get(&lp).copied();
            }
        }
        func.block_mut(bid).insts.push(bi);
        let _ = s.len;
    }

    // Edges + intra-function target relabeling.
    let blocks_in_order: Vec<(u64, BlockId)> =
        block_of_addr.iter().map(|(&a, &b)| (a, b)).collect();
    let next_block: BTreeMap<BlockId, BlockId> = blocks_in_order
        .windows(2)
        .map(|w| (w[0].1, w[1].1))
        .collect();

    for &(_, bid) in &blocks_in_order {
        let term = func.block(bid).terminator().map(|t| t.inst);
        let falls = func.block(bid).can_fall_through();
        let mut succs: Vec<SuccEdge> = Vec::new();
        match term {
            Some(Inst::Jcc { target, .. }) => {
                let taken = match target {
                    Target::Addr(t) if t >= start && t < end => {
                        let tb = block_of_addr[&t];
                        // Relabel to a block reference.
                        func.block_mut(bid)
                            .terminator_mut()
                            .expect("jcc")
                            .inst
                            .set_target(Target::Label(Label(tb.0)));
                        Some(tb)
                    }
                    // Conditional tail call: taken edge leaves the
                    // function.
                    Target::Addr(_) => None,
                    Target::Label(_) => unreachable!("decoded targets are addresses"),
                };
                if let Some(tb) = taken {
                    succs.push(SuccEdge::cold(tb));
                }
                let Some(&fb) = next_block.get(&bid) else {
                    return Err(NonSimpleReason::OutOfRangeControlFlow);
                };
                succs.push(SuccEdge::cold(fb));
            }
            Some(Inst::Jmp { target, .. }) => {
                if let Target::Addr(t) = target {
                    if t >= start && t < end {
                        let tb = block_of_addr[&t];
                        func.block_mut(bid)
                            .terminator_mut()
                            .expect("jmp")
                            .inst
                            .set_target(Target::Label(Label(tb.0)));
                        succs.push(SuccEdge::cold(tb));
                    }
                    // else: tail call, no successors.
                }
            }
            Some(Inst::JmpInd { .. }) => {
                // Jump table dispatch: edges to each distinct target.
                let jmp_addr = func.block(bid).terminator().expect("jmpind").addr;
                if let Some(jt) = jump_tables.iter().find(|j| j.jmp_addr == jmp_addr) {
                    let mut seen = BTreeSet::new();
                    for t in &jt.targets {
                        let tb = block_of_addr[t];
                        if seen.insert(tb) {
                            succs.push(SuccEdge::cold(tb));
                        }
                    }
                }
            }
            Some(Inst::Ret) | Some(Inst::RepzRet) | Some(Inst::Ud2) => {}
            Some(_) | None => {
                if falls {
                    let Some(&fb) = next_block.get(&bid) else {
                        return Err(NonSimpleReason::OutOfRangeControlFlow);
                    };
                    succs.push(SuccEdge::cold(fb));
                }
            }
        }
        func.block_mut(bid).succs = succs;
    }

    // Register recognized jump tables with block targets.
    for jt in &jump_tables {
        func.jump_tables.push(JumpTable {
            addr: jt.table_addr,
            name: format!("jt_{:x}", jt.table_addr),
            targets: jt.targets.iter().map(|t| block_of_addr[t]).collect(),
            entry_size: 8,
        });
    }

    func.rebuild_preds();
    func.validate()
        .map_err(|_| NonSimpleReason::OutOfRangeControlFlow)?;
    Ok(func)
}

/// Matches the jump-table dispatch idiom ending in `jmp *%jreg`:
///
/// ```text
///   cmpq $N, %idx
///   jae  default
///   leaq table(%rip), %base
///   movq (%base,%idx,8), %jreg
///   jmpq *%jreg
/// ```
///
/// The table must live in read-only memory (a writable table defeats
/// static analysis — the function stays non-simple).
fn match_jump_table(
    ctx: &BinaryContext,
    before: &[Slot],
    jreg: Reg,
    jmp_addr: u64,
) -> Option<JtInfo> {
    // Scan a small window backwards for the load, lea, and bound check.
    let window = &before[before.len().saturating_sub(6)..];
    let mut table_addr = None;
    let mut load_base = None;
    let mut bound = None;
    for s in window.iter().rev() {
        match s.inst {
            Inst::Load {
                dst,
                mem:
                    Mem::BaseIndexScale {
                        base,
                        scale: 8,
                        disp: 0,
                        ..
                    },
            } if dst == jreg && load_base.is_none() => {
                load_base = Some(base);
            }
            Inst::Lea {
                dst,
                mem: Mem::RipRel {
                    target: Target::Addr(a),
                },
            } if Some(dst) == load_base && table_addr.is_none() => {
                table_addr = Some(a);
            }
            Inst::AluI {
                op: AluOp::Cmp,
                imm,
                ..
            } if bound.is_none() => {
                bound = Some(imm as u64);
            }
            _ => {}
        }
    }
    let (table_addr, n) = (table_addr?, bound?);
    if n == 0 || n > 1 << 14 {
        return None;
    }
    // The table must be fully inside read-only data.
    let mut targets = Vec::with_capacity(n as usize);
    for k in 0..n {
        let entry = ctx.read_rodata_u64(table_addr + 8 * k)?;
        targets.push(entry);
    }
    Some(JtInfo {
        jmp_addr,
        table_addr,
        targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover;
    use bolt_compiler::{
        compile_and_link, CompileOptions, FunctionBuilder, MirProgram, Operand, Rvalue,
    };

    /// Compiles a program with branches, a switch, and calls, then
    /// disassembles it.
    fn build_and_disassemble(opts: &CompileOptions) -> (BinaryContext, Elf) {
        let mut p = MirProgram::with_entry("main");
        let mut f = FunctionBuilder::new("dispatch", 0, "d.c", 1);
        let arms = f.switch(Operand::Local(0), 3);
        for (i, arm) in arms.targets.clone().iter().enumerate() {
            f.switch_to(*arm);
            f.ret(Operand::Const(i as i64));
        }
        f.switch_to(arms.default);
        f.ret(Operand::Const(-1));
        p.add_function(f.finish());

        let mut m = FunctionBuilder::new("main", 1, "m.c", 0);
        let r = m.call("dispatch", vec![Operand::Const(1)]);
        let c = m.assign(Rvalue::Cmp(
            bolt_compiler::CmpOp::Gt,
            Operand::Local(r),
            Operand::Const(0),
        ));
        let (t, e) = m.branch(Operand::Local(c));
        m.switch_to(t);
        m.ret(Operand::Const(1));
        m.switch_to(e);
        m.ret(Operand::Const(0));
        p.add_function(m.finish());
        p.validate().unwrap();

        let bin = compile_and_link(&p, opts).unwrap();
        let (mut ctx, funcs) = discover(&bin.elf);
        disassemble_all(&mut ctx, &funcs, &bin.elf);
        (ctx, bin.elf)
    }

    #[test]
    fn compiled_binary_fully_disassembles() {
        let (ctx, _) = build_and_disassemble(&CompileOptions::default());
        for f in &ctx.functions {
            assert!(
                f.is_simple,
                "{} should be simple (reason: {:?})",
                f.name, f.non_simple_reason
            );
        }
        let dispatch = ctx.function_by_name("dispatch").unwrap();
        assert_eq!(dispatch.jump_tables.len(), 1, "switch produced a table");
        assert_eq!(dispatch.jump_tables[0].targets.len(), 3);
        let main = ctx.function_by_name("main").unwrap();
        assert!(main.num_live_blocks() >= 3, "branchy main has blocks");
        // NOPs were discarded.
        for f in &ctx.functions {
            for b in &f.blocks {
                assert!(!b.insts.iter().any(|i| matches!(i.inst, Inst::Nop { .. })));
            }
        }
    }

    #[test]
    fn line_info_attached() {
        let (ctx, _) = build_and_disassemble(&CompileOptions::default());
        let main = ctx.function_by_name("main").unwrap();
        let has_lines = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| i.line.is_some());
        assert!(has_lines, "debug info flows into the IR");
    }

    #[test]
    fn plt_stubs_simple_and_resolved() {
        let (ctx, _) = build_and_disassemble(&CompileOptions::default());
        let stub = ctx.function_by_name("__plt___bolt_exit").unwrap();
        assert!(stub.is_simple, "GOT tail jump is analyzable");
        assert!(!ctx.plt_stubs.is_empty());
    }

    #[test]
    fn legacy_amd_binary_disassembles() {
        let opts = CompileOptions {
            legacy_amd: true,
            ..CompileOptions::default()
        };
        let (ctx, _) = build_and_disassemble(&opts);
        let main = ctx.function_by_name("main").unwrap();
        let has_repz = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| i.inst == Inst::RepzRet);
        assert!(has_repz);
    }
}
