//! # bolt-opt — the BOLT binary optimizer
//!
//! The driver crate tying the reproduction together: the rewriting
//! pipeline of paper Figure 3 —
//!
//! ```text
//! function discovery -> read debug info -> read profile data ->
//! disassembly -> CFG construction -> optimization pipeline ->
//! emit and link functions -> rewrite binary file
//! ```
//!
//! The public entry point is [`optimize`]: give it an ELF image, a
//! [`bolt_profile::Profile`], and [`BoltOptions`]; get back the rewritten
//! binary plus the paper's observability artifacts (dyno stats, per-pass
//! reports, bad-layout report).
//!
//! ## Example
//!
//! ```no_run
//! use bolt_opt::{optimize, BoltOptions};
//! use bolt_profile::{Profile, ProfileMode};
//!
//! # fn get_elf() -> bolt_elf::Elf { unimplemented!() }
//! let elf = get_elf();
//! let profile = Profile::new(ProfileMode::Lbr); // from the LBR sampler
//! let out = optimize(&elf, &profile, &BoltOptions::paper_default())?;
//! println!("taken branches: {:+.1}%",
//!          out.dyno_after.taken_branch_delta(&out.dyno_before));
//! # Ok::<(), bolt_opt::BoltError>(())
//! ```

pub mod disasm;
pub mod discover;
pub mod driver;
pub mod emit;
pub mod options;
pub mod report;

pub use disasm::{disassemble_all, disassemble_all_with_threads};
pub use discover::discover;
pub use driver::{
    optimize, prepare, BoltError, BoltOutput, PreparedContext, QuarantineAction, QuarantineEvent,
    QuarantineReport,
};
pub use emit::{rewrite_binary, RewriteStats, BOLT_COLD_BASE, BOLT_TEXT_BASE};
pub use options::BoltOptions;
pub use report::{bad_layout_report, find_bad_layout, timing_report, BadLayoutCase};
