//! `-report-bad-layout`: finds frequently executed functions with cold
//! blocks interleaved between hot ones (paper section 6.3 / Figure 10) and
//! renders them with source attribution.

use bolt_ir::{dump_function, BinaryContext, DumpOptions};

/// One bad-layout occurrence.
#[derive(Debug, Clone)]
pub struct BadLayoutCase {
    pub function: String,
    pub exec_count: u64,
    /// Index (in layout) of the cold block.
    pub cold_block: usize,
    /// Distinct source files contributing blocks to the function — more
    /// than one implicates inlining (paper Figure 10).
    pub files: Vec<String>,
}

/// Scans for hot functions containing a zero-count block physically
/// between two executed blocks.
pub fn find_bad_layout(ctx: &BinaryContext) -> Vec<BadLayoutCase> {
    let mut cases = Vec::new();
    for func in &ctx.functions {
        if !func.is_simple || func.exec_count == 0 || func.layout.len() < 3 {
            continue;
        }
        for w in 0..func.layout.len().saturating_sub(2) {
            let a = func.block(func.layout[w]);
            let b = func.block(func.layout[w + 1]);
            let c = func.block(func.layout[w + 2]);
            if a.exec_count > 0 && b.exec_count == 0 && c.exec_count > 0 {
                // Collect source files represented in this function.
                let mut files: Vec<String> = Vec::new();
                for blk in func.layout.iter().map(|&i| func.block(i)) {
                    for inst in &blk.insts {
                        if let Some(li) = inst.line {
                            if let Some(name) = ctx.lines.files.get(li.file as usize) {
                                if !files.contains(name) {
                                    files.push(name.clone());
                                }
                            }
                        }
                    }
                }
                cases.push(BadLayoutCase {
                    function: func.name.clone(),
                    exec_count: func.exec_count,
                    cold_block: w + 1,
                    files,
                });
                break; // one case per function is enough for the report
            }
        }
    }
    cases.sort_by_key(|c| std::cmp::Reverse(c.exec_count));
    cases
}

/// Renders the report; with `print_debug_info`, includes a Figure 10-style
/// CFG dump of the worst offender.
pub fn bad_layout_report(ctx: &BinaryContext, print_debug_info: bool) -> String {
    let cases = find_bad_layout(ctx);
    let mut out = String::new();
    out.push_str(&format!(
        "bad-layout report: {} function(s) with cold blocks between hot blocks\n",
        cases.len()
    ));
    for c in cases.iter().take(20) {
        out.push_str(&format!(
            "  {} (exec {}): cold block at layout position {}; source files: {}\n",
            c.function,
            c.exec_count,
            c.cold_block,
            c.files.join(", ")
        ));
    }
    if print_debug_info {
        if let Some(worst) = cases.first() {
            if let Some(&fi) = ctx.by_name.get(&worst.function) {
                out.push('\n');
                out.push_str(&dump_function(
                    &ctx.functions[fi],
                    Some(&ctx.lines),
                    DumpOptions {
                        print_debug_info: true,
                    },
                ));
            }
        }
    }
    out
}

/// Renders the `-time-passes` table: per-pass wall-clock time, share of
/// the pipeline total, change count, and (when the manager collected
/// per-pass dyno stats) the pass's taken-branch delta.
pub fn timing_report(pipeline: &bolt_passes::PipelineResult) -> String {
    let total = pipeline.total_duration();
    let total_secs = total.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut out = String::new();
    out.push_str("BOLT pass timing (wall clock):\n");
    out.push_str(&format!(
        "  {:<20} {:>12} {:>7} {:>10}  {}\n",
        "pass", "time", "%", "changes", "taken-branch delta"
    ));
    for r in &pipeline.reports {
        let delta = match r.taken_branch_delta() {
            Some(d) => format!("{d:+.2}%"),
            None => "-".to_string(),
        };
        // A skipped instance (`-skip-unchanged`) is reported honestly
        // rather than shown as a 0-cost execution.
        let time = if r.skipped {
            "skipped".to_string()
        } else {
            format!("{:.3?}", r.duration)
        };
        out.push_str(&format!(
            "  {:<20} {:>12} {:>6.1}% {:>10}  {}\n",
            r.name,
            time,
            100.0 * r.duration.as_secs_f64() / total_secs,
            r.changes,
            delta,
        ));
    }
    out.push_str(&format!(
        "  {:<20} {:>12}\n",
        "total",
        format!("{total:.3?}")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{edges, BasicBlock, BinaryFunction, BlockId};
    use bolt_isa::{Cond, Inst, JumpWidth, Label, Target};

    #[test]
    fn detects_cold_between_hot() {
        let mut ctx = BinaryContext::new();
        let mut f = BinaryFunction::new("getNext", 0x1000);
        f.exec_count = 1_723_213;
        for _ in 0..3 {
            f.add_block(BasicBlock::new());
        }
        f.block_mut(BlockId(0)).exec_count = 1_635_334;
        f.block_mut(BlockId(0)).push(Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(BlockId(0)).succs = edges(&[(2, 1_635_334), (1, 0)]);
        f.block_mut(BlockId(1)).exec_count = 0; // the interleaved cold block
        f.block_mut(BlockId(1)).push(Inst::Nop { len: 1 });
        f.block_mut(BlockId(1)).succs = edges(&[(2, 0)]);
        f.block_mut(BlockId(2)).exec_count = 1_769_771;
        f.block_mut(BlockId(2)).push(Inst::Ret);
        f.rebuild_preds();
        ctx.add_function(f);
        let cases = find_bad_layout(&ctx);
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].function, "getNext");
        assert_eq!(cases[0].cold_block, 1);
        let report = bad_layout_report(&ctx, true);
        assert!(report.contains("getNext"));
        assert!(report.contains("Binary Function"));
    }

    #[test]
    fn clean_layout_not_reported() {
        let mut ctx = BinaryContext::new();
        let mut f = BinaryFunction::new("fine", 0x1000);
        f.exec_count = 100;
        let b0 = f.add_block(BasicBlock::new());
        f.block_mut(b0).exec_count = 100;
        f.block_mut(b0).push(Inst::Ret);
        ctx.add_function(f);
        assert!(find_bad_layout(&ctx).is_empty());
    }
}
