//! Stage 1 of the rewriting pipeline (paper Figure 3): function discovery
//! plus debug-info and metadata loading.
//!
//! Discovery is driven by the ELF symbol table (paper section 3.3: "BOLT
//! relies on correct ELF symbol table information for code discovery").

use bolt_elf::{sections, Elf, SymKind};
use bolt_ir::{BinaryContext, BinaryFunction, ExceptionTable, LineTable};
use std::collections::HashMap;

/// A discovered-but-not-yet-disassembled function.
#[derive(Debug, Clone)]
pub struct RawFunction {
    pub name: String,
    pub address: u64,
    pub size: u64,
    pub section: String,
}

/// Builds the initial [`BinaryContext`] from an ELF image: function
/// symbols, read-only data, PLT stubs, line and exception tables.
///
/// Returns the context plus the list of functions to disassemble.
pub fn discover(elf: &Elf) -> (BinaryContext, Vec<RawFunction>) {
    let mut ctx = BinaryContext::new();
    ctx.entry = elf.entry;

    // Read-only data (jump tables, constants).
    for sec in &elf.sections {
        if sec.is_alloc() && !sec.is_exec() && !sec.is_writable() {
            ctx.rodata.push((sec.addr, sec.data.clone()));
        }
    }

    // Metadata tables.
    if let Some(sec) = elf.section(sections::LINES) {
        if let Ok(t) = LineTable::from_bytes(&sec.data) {
            ctx.lines = t;
        }
    }
    if let Some(sec) = elf.section(sections::EH) {
        if let Ok(t) = ExceptionTable::from_bytes(&sec.data) {
            ctx.exceptions = t;
        }
    }

    // Function symbols, address-ordered; sizes repaired from the next
    // symbol when missing (assembly functions often lack sizes — paper
    // section 3.3's hybrid discovery).
    let mut funcs: Vec<RawFunction> = elf
        .symbols
        .iter()
        .filter(|s| s.kind == SymKind::Func)
        .map(|s| {
            let section = elf
                .section_at(s.value)
                .map(|(_, sec)| sec.name.clone())
                .unwrap_or_else(|| ".text".to_string());
            RawFunction {
                name: s.name.clone(),
                address: s.value,
                size: s.size,
                section,
            }
        })
        .collect();
    funcs.sort_by_key(|f| f.address);
    for i in 0..funcs.len() {
        if funcs[i].size == 0 {
            let end = funcs
                .get(i + 1)
                .map(|n| n.address)
                .or_else(|| {
                    elf.section_at(funcs[i].address)
                        .map(|(_, s)| s.addr + s.data.len() as u64)
                })
                .unwrap_or(funcs[i].address);
            funcs[i].size = end.saturating_sub(funcs[i].address);
        }
    }

    // PLT stub resolution: `__plt_<target>` symbols by naming convention,
    // verified against both ends of the indirection — the GOT content
    // (`__got_<target>`) must point at the target function, and the
    // stub's own bytes must actually be a rip-relative `jmp` through
    // that exact GOT slot. The second check matters: devirtualizing by
    // name alone would silently "repair" a stub whose displacement is
    // corrupted (or hand-written to jump elsewhere), changing the
    // program's behavior instead of preserving it.
    let got_by_name: HashMap<&str, (u64, u64)> = elf
        .symbols
        .iter()
        .filter_map(|s| {
            s.name
                .strip_prefix("__got_")
                .map(|n| (n, (s.value, elf.read_u64(s.value).unwrap_or(0))))
        })
        .collect();
    for f in &funcs {
        if let Some(target) = f.name.strip_prefix("__plt_") {
            let Some(&(got_addr, got_content)) = got_by_name.get(target) else {
                continue;
            };
            if elf.symbol(target).map(|s| s.value) != Some(got_content) {
                continue;
            }
            let jumps_through_slot = elf
                .read_vaddr(f.address, f.size.min(16) as usize)
                .and_then(|bytes| bolt_isa::decode(bytes, f.address).ok())
                .is_some_and(|d| {
                    matches!(
                        d.inst,
                        bolt_isa::Inst::JmpInd {
                            rm: bolt_isa::Rm::Mem(bolt_isa::Mem::RipRel {
                                target: bolt_isa::Target::Addr(a),
                            }),
                        } if a == got_addr
                    )
                });
            if jumps_through_slot {
                ctx.plt_stubs.insert(f.address, target.to_string());
            }
        }
    }

    // Pre-register functions so address lookups work during disassembly.
    for f in &funcs {
        let mut bf = BinaryFunction::new(&f.name, f.address);
        bf.size = f.size;
        bf.section = f.section.clone();
        bf.is_simple = false; // flipped by successful disassembly
        ctx.add_function(bf);
    }
    (ctx, funcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_elf::{Section, Symbol};

    fn sample_elf() -> Elf {
        let mut e = Elf::new(0x400000);
        e.sections
            .push(Section::code(".text", 0x400000, vec![0xC3; 64]));
        e.sections
            .push(Section::rodata(".rodata", 0x500000, vec![7; 16]));
        let mut lines = LineTable::new();
        lines.intern_file("a.c");
        lines.push(0x400000, 0, 10);
        lines.normalize();
        e.sections
            .push(Section::metadata(sections::LINES, lines.to_bytes()));
        e.symbols.push(Symbol::func("f1", 0x400000, 16, 0));
        e.symbols.push(Symbol::func("f2", 0x400010, 0, 0)); // size repaired
        e.symbols.push(Symbol::func("f3", 0x400030, 16, 0));
        e
    }

    #[test]
    fn discovery_finds_functions_and_repairs_sizes() {
        let (ctx, funcs) = discover(&sample_elf());
        assert_eq!(funcs.len(), 3);
        assert_eq!(funcs[1].name, "f2");
        assert_eq!(funcs[1].size, 0x20, "size from next symbol");
        assert_eq!(ctx.functions.len(), 3);
        assert!(ctx.is_rodata_addr(0x500000));
        assert_eq!(ctx.lines.describe(0x400000).unwrap(), "a.c:10");
    }

    #[test]
    fn plt_stub_requires_got_agreement() {
        let mut e = sample_elf();
        e.sections.push(Section::data(
            ".got",
            0x600000,
            0x400000u64.to_le_bytes().to_vec(),
        ));
        // Real stub bytes at 0x400030: `jmp *0x600000(%rip)` — FF 25
        // with disp32 = 0x600000 - (0x400030 + 6).
        let text = e.section_mut(".text").unwrap();
        text.data[0x30] = 0xFF;
        text.data[0x31] = 0x25;
        text.data[0x32..0x36].copy_from_slice(&(0x600000u32 - 0x400036).to_le_bytes());
        let got_idx = e.section_index(".got").unwrap();
        e.symbols.push(Symbol::func("__plt_f1", 0x400030, 8, 0));
        e.symbols.push(Symbol {
            name: "__got_f1".into(),
            value: 0x600000,
            size: 8,
            kind: SymKind::Object,
            bind: bolt_elf::SymBind::Global,
            section: bolt_elf::SymSection::Section(got_idx),
        });
        let (ctx, _) = discover(&e);
        assert_eq!(ctx.plt_stubs.get(&0x400030).map(String::as_str), Some("f1"));

        // Corrupt the GOT: the stub is no longer trusted.
        let mut e2 = e.clone();
        e2.section_mut(".got").unwrap().data = 0xDEADu64.to_le_bytes().to_vec();
        let (ctx2, _) = discover(&e2);
        assert!(ctx2.plt_stubs.is_empty());

        // Corrupt the stub's displacement so the jmp no longer reads
        // `__got_f1`: devirtualizing by name would change behavior, so
        // the stub must not be trusted either.
        let mut e3 = e.clone();
        e3.section_mut(".text").unwrap().data[0x33] ^= 0x80;
        let (ctx3, _) = discover(&e3);
        assert!(ctx3.plt_stubs.is_empty());

        // Replace the jmp with something else entirely (here: the ret
        // padding the fixture starts with): same verdict.
        let mut e4 = e.clone();
        e4.section_mut(".text").unwrap().data[0x30] = 0xC3;
        let (ctx4, _) = discover(&e4);
        assert!(ctx4.plt_stubs.is_empty());
    }
}
