//! BOLT driver options, mirroring the command line used in the paper
//! (section 6.2.1):
//!
//! ```text
//! -b profile.fdata -reorder-blocks=cache+ -reorder-functions=hfsort+
//! -split-functions=3 -split-all-cold -split-eh -dyno-stats -icf=1
//! ```

use bolt_passes::PassOptions;

/// Options controlling a BOLT run.
#[derive(Debug, Clone, Default)]
pub struct BoltOptions {
    /// The optimization pipeline configuration.
    pub passes: PassOptions,
    /// Print per-pass statistics.
    pub verbose: bool,
    /// Collect and print per-pass wall-clock timing (`-time-passes`).
    /// Combined with `dyno_stats`, each pass also records before/after
    /// dyno stats so its taken-branch delta can be attributed.
    pub time_passes: bool,
    /// Compute dyno stats before and after (`-dyno-stats`).
    pub dyno_stats: bool,
    /// Collect a bad-layout report before optimizing
    /// (`-report-bad-layout`, paper section 6.3).
    pub report_bad_layout: bool,
    /// Annotate reports with source lines (`-print-debug-info`).
    pub print_debug_info: bool,
    /// Use the layout-trusting non-LBR edge inference (paper section 5.1
    /// compares the naive and tuned inference). No effect in LBR mode.
    pub non_lbr_tuned: bool,
    /// Worker threads for per-function work — disassembly sharding and
    /// the per-function pure passes (`-threads=N`). `0` (default)
    /// resolves to the `BOLT_THREADS` environment override or
    /// `available_parallelism`; `1` forces the serial path. Output is
    /// byte-identical at any value.
    pub threads: usize,
    /// Emulation shards for the *measurement* side (`-shards=N`): how
    /// many independent invocations the profiling/measuring harnesses
    /// (`bolt-run --shards`, `bolt-bench`'s `measure_batch` /
    /// `profile_lbr_batch`) split a workload into. `0` (default)
    /// resolves to the `BOLT_SHARDS` environment override or `1`.
    /// Rewriting itself never consults this; merged batch output is
    /// byte-identical at any worker count.
    pub shards: usize,
    /// Emulation engine for the measurement side
    /// (`-engine=step|block|superblock|uop`). `None` (default) resolves
    /// to the `BOLT_ENGINE` environment override or per-instruction
    /// stepping. Like `shards`, rewriting never consults this; every
    /// engine produces byte-identical profiles, counters, and program
    /// output — `block` is `bolt-emu`'s basic-block translation cache,
    /// `superblock` additionally spans memory-touching instructions and
    /// chains block transitions, `uop` further lowers each block to
    /// pre-resolved micro-ops with lazy flags, each faster than the
    /// last.
    pub engine: Option<bolt_emu::Engine>,
    /// Skip repeated pipeline registrations of a pass whose earlier
    /// instance reported zero changes this run (`-skip-unchanged`), e.g.
    /// the second `icf` on small binaries. Skipped instances are marked
    /// in `-time-passes` output.
    pub skip_unchanged: bool,
    /// Run the static verifier (`-verify`): one IR lint sweep after the
    /// pipeline plus the re-disassembly check of the rewritten binary.
    /// Findings land in [`crate::BoltOutput::verify`] and the pipeline's
    /// `findings`; the sweeps are timed and show up in `-time-passes`
    /// output as `verify` rows.
    pub verify: bool,
    /// Like `verify`, but the IR lint runs after *every* executed pass
    /// (`-verify-each`), pinpointing the pass that broke an invariant.
    /// Implies `verify`.
    pub verify_each: bool,
    /// Run the symbolic translation validator (`-verify-sem`): every
    /// emitted function's bytes are translated under each emulation
    /// tier and each translation proven semantically equivalent to a
    /// fresh decode. Findings land in
    /// [`crate::BoltOutput::verify_sem`].
    pub verify_sem: bool,
    /// Fault injection (`-poison-pass=N`): register a pass whose
    /// per-function kernel panics on the Nth simple function (0-based,
    /// resolved by name for determinism under sharding), exercising the
    /// quarantine ladder end to end. The driver must degrade that
    /// function and keep going; see [`crate::BoltOutput::quarantine`].
    pub poison_nth: Option<usize>,
}

impl BoltOptions {
    /// The paper's evaluation configuration.
    pub fn paper_default() -> BoltOptions {
        BoltOptions {
            passes: PassOptions::default(),
            dyno_stats: true,
            non_lbr_tuned: true,
            ..BoltOptions::default()
        }
    }
}
