//! Stages 7–8 of the rewriting pipeline (paper Figure 3): emit and link
//! functions, then rewrite the binary.
//!
//! Rewritten functions are emitted into new sections (`.text.bolt` hot,
//! `.text.bolt.cold` for split fragments); the original `.text` is kept so
//! non-simple functions keep working at their old addresses. Jump tables
//! are patched in place, and the line/exception tables are rebuilt for
//! moved code (paper section 3.4).

use bolt_elf::{sections, Elf, Section, SymKind};
use bolt_ir::{emit_units, BinaryContext, BlockId, EmitBlock, EmitError, EmitInst, EmitUnit};
use bolt_isa::{Inst, Label, Target};
use std::collections::HashMap;

/// Base address of the rewritten hot text.
pub const BOLT_TEXT_BASE: u64 = 0x100_0000;
/// Base address of the rewritten cold text.
pub const BOLT_COLD_BASE: u64 = 0x200_0000;

/// Summary of the rewrite.
#[derive(Debug, Clone, Default)]
pub struct RewriteStats {
    pub emitted_functions: usize,
    pub skipped_functions: usize,
    pub hot_text_size: u64,
    pub cold_text_size: u64,
    pub patched_jump_table_entries: usize,
}

/// Rewrites `elf` according to the optimized `ctx`, emitting functions in
/// `order`.
///
/// # Errors
///
/// Propagates emission failures (which indicate pipeline bugs: the
/// pipeline must leave the IR emittable).
pub fn rewrite_binary(
    elf: &Elf,
    ctx: &BinaryContext,
    order: &[usize],
) -> Result<(Elf, RewriteStats), EmitError> {
    let mut stats = RewriteStats::default();

    // Which functions get re-emitted.
    let emitted: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| ctx.functions[i].is_simple && ctx.functions[i].folded_into.is_none())
        .collect();
    stats.emitted_functions = emitted.len();
    stats.skipped_functions = ctx.functions.len() - emitted.len();

    // Label allocation.
    let mut next_label = 0u32;
    let mut fresh = || {
        let l = Label(next_label);
        next_label += 1;
        l
    };
    let mut block_labels: HashMap<(usize, BlockId), Label> = HashMap::new();
    for &fi in &emitted {
        for &b in &ctx.functions[fi].layout {
            block_labels.insert((fi, b), fresh());
        }
    }
    // Old entry address -> new entry label (through ICF folds).
    let mut entry_label_of_addr: HashMap<u64, Label> = HashMap::new();
    let mut is_emitted = vec![false; ctx.functions.len()];
    for &fi in &emitted {
        is_emitted[fi] = true;
    }
    for (i, f) in ctx.functions.iter().enumerate() {
        let mut k = i;
        while let Some(next) = ctx.functions[k].folded_into {
            k = next;
        }
        if is_emitted[k] {
            let entry = ctx.functions[k].entry();
            entry_label_of_addr.insert(f.address, block_labels[&(k, entry)]);
        }
    }

    // Convert functions to emission units.
    let map_target = |fi: usize, t: Target| -> Target {
        match t {
            Target::Label(l) => {
                // Intra-function block reference.
                Target::Label(block_labels[&(fi, BlockId(l.0))])
            }
            Target::Addr(a) => match entry_label_of_addr.get(&a) {
                Some(l) => Target::Label(*l),
                None => Target::Addr(a),
            },
        }
    };

    let mut units = Vec::with_capacity(emitted.len());
    for &fi in &emitted {
        let func = &ctx.functions[fi];
        let mut unit = EmitUnit::new(&func.name);
        unit.align = 16;
        unit.cold_start = func.cold_start;
        for &bid in &func.layout {
            let mut eb = EmitBlock::new(block_labels[&(fi, bid)]);
            // BOLT discards alignment; blocks are packed tight.
            eb.align = 1;
            for inst in &func.block(bid).insts {
                let mut m = inst.inst;
                match &mut m {
                    Inst::Jcc { target, .. }
                    | Inst::Jmp { target, .. }
                    | Inst::Call { target }
                    | Inst::MovRSym { target, .. } => {
                        *target = map_target(fi, *target);
                    }
                    // Data references (loads/stores/lea, indirect calls
                    // through the GOT) stay absolute: data does not move,
                    // and RIP-relative fields are re-encoded against the
                    // instruction's new location automatically.
                    _ => {}
                }
                let mut ei = EmitInst::new(m);
                ei.line = inst.line;
                ei.eh_pad = inst.landing_pad.map(|lp| block_labels[&(fi, lp)]);
                eb.insts.push(ei);
            }
            unit.blocks.push(eb);
        }
        units.push(unit);
    }

    let extern_labels = HashMap::new();
    let result = emit_units(&units, BOLT_TEXT_BASE, BOLT_COLD_BASE, &extern_labels)?;
    stats.hot_text_size = result.text.len() as u64;
    stats.cold_text_size = result.cold.len() as u64;

    // ---- assemble the output ELF ----
    let mut out = elf.clone();

    // Patch jump tables in read-only data.
    for &fi in &emitted {
        for jt in &ctx.functions[fi].jump_tables {
            for (k, target) in jt.targets.iter().enumerate() {
                let new_addr = result.label_addrs[&block_labels[&(fi, *target)]];
                let entry_addr = jt.addr + 8 * k as u64;
                for sec in out.sections.iter_mut() {
                    if sec.is_alloc() && !sec.is_exec() && sec.addr_range().contains(&entry_addr) {
                        let off = (entry_addr - sec.addr) as usize;
                        sec.data[off..off + 8].copy_from_slice(&new_addr.to_le_bytes());
                        stats.patched_jump_table_entries += 1;
                    }
                }
            }
        }
    }

    // New code sections.
    out.sections.push(Section::code(
        ".text.bolt",
        BOLT_TEXT_BASE,
        result.text.clone(),
    ));
    let bolt_text_idx = out.sections.len() - 1;
    if !result.cold.is_empty() {
        out.sections.push(Section::code(
            ".text.bolt.cold",
            BOLT_COLD_BASE,
            result.cold.clone(),
        ));
    }

    // Symbol updates: moved functions point at their new home.
    let mut new_sym_addr: HashMap<&str, (u64, u64)> = HashMap::new();
    for s in &result.symbols {
        new_sym_addr.insert(&s.name, (s.addr, s.size));
    }
    for sym in out.symbols.iter_mut() {
        if sym.kind != SymKind::Func {
            continue;
        }
        if let Some(&(addr, size)) = new_sym_addr.get(sym.name.as_str()) {
            sym.value = addr;
            sym.size = size;
            sym.section = bolt_elf::SymSection::Section(bolt_text_idx);
        } else if let Some(&fi) = ctx.by_name.get(&sym.name) {
            // Folded function: symbol resolves to the keeper's new entry.
            let keeper = &ctx.functions[fi];
            if keeper.name != sym.name {
                if let Some(&(addr, _)) = new_sym_addr.get(keeper.name.as_str()) {
                    sym.value = addr;
                    sym.size = 0;
                    sym.section = bolt_elf::SymSection::Section(bolt_text_idx);
                }
            }
        }
    }
    // Cold fragment symbols are new.
    for s in &result.symbols {
        if s.is_cold_fragment {
            out.symbols.push(bolt_elf::Symbol::func(
                &s.name,
                s.addr,
                s.size,
                out.sections.len() - 1,
            ));
        }
    }

    // Rebuild the line table: keep entries outside moved functions, add
    // the new ones.
    let moved_ranges: Vec<(u64, u64)> = emitted
        .iter()
        .map(|&fi| {
            let f = &ctx.functions[fi];
            (f.address, f.address + f.size)
        })
        .collect();
    let inside_moved = |a: u64| -> bool { moved_ranges.iter().any(|&(s, e)| a >= s && a < e) };
    let mut lines = ctx.lines.clone();
    lines.entries.retain(|e| !inside_moved(e.0));
    for (addr, li) in &result.line_entries {
        lines.push(*addr, li.file, li.line);
    }
    lines.normalize();
    if let Some(sec) = out.section_mut(sections::LINES) {
        sec.data = lines.to_bytes();
    }

    // Rebuild the exception table.
    let mut eh = ctx.exceptions.clone();
    eh.entries.retain(|cs, _| !inside_moved(*cs));
    for (call_addr, pad_label) in &result.eh_entries {
        eh.add(*call_addr, result.label_addrs[pad_label]);
    }
    if let Some(sec) = out.section_mut(sections::EH) {
        sec.data = eh.to_bytes();
    }

    // Entry point follows _start if it moved.
    if let Some(&fi) = ctx.by_name.get("_start") {
        let f = &ctx.functions[fi];
        if is_emitted[fi] {
            let entry_label = block_labels[&(fi, f.entry())];
            out.entry = result.label_addrs[&entry_label];
        }
    }

    // Relocations in the output would describe the old text; drop them.
    out.relocations.clear();

    Ok((out, stats))
}
