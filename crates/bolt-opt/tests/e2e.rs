//! End-to-end: compile a program, profile it under the emulator, run BOLT,
//! and verify the rewritten binary (a) behaves identically and (b) has a
//! better layout by the paper's metrics.

use bolt_compiler::{
    compile_and_link, BinOp, CmpOp, CompileOptions, FunctionBuilder, Global, MirProgram, Operand,
    Rvalue,
};
use bolt_emu::{Exit, Machine, NullSink};
use bolt_opt::{optimize, BoltOptions};
use bolt_profile::{LbrSampler, Profile, SampleTrigger};
use bolt_sim::{CpuModel, SimConfig};

/// A layout-adversarial program: hot loops with branches whose hot arm is
/// laid out second (so the baseline takes branches constantly), duplicate
/// functions for ICF, an indirect-call dispatch for ICP, a switch for jump
/// tables, and emits so semantics are observable.
fn adversarial_program() -> MirProgram {
    let mut p = MirProgram::with_entry("main");
    p.globals.push(Global {
        name: "weights".into(),
        words: (0..16).map(|i| (i * 7 + 3) % 11).collect(),
        mutable: false,
    });
    p.globals.push(Global {
        name: "acc".into(),
        words: vec![0; 4],
        mutable: true,
    });

    // Twin functions (ICF fodder): step_a / step_b are identical.
    for name in ["step_a", "step_b"] {
        let mut f = FunctionBuilder::new(name, 0, "steps.c", 1);
        let x = f.assign(Rvalue::BinOp(
            BinOp::Mul,
            Operand::Local(0),
            Operand::Const(1103515245),
        ));
        let y = f.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(x),
            Operand::Const(12345),
        ));
        let z = f.assign(Rvalue::Shift(
            bolt_compiler::ShiftKind::Shr,
            Operand::Local(y),
            16,
        ));
        let w = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(z),
            Operand::Const(0x7FFF),
        ));
        f.ret(Operand::Local(w));
        p.add_function(f.finish());
    }

    // classify: branchy function where the hot path is the *else* arm
    // (source order favors the cold arm -> bad baseline layout).
    let mut f = FunctionBuilder::new("classify", 1, "classify.c", 1);
    let c = f.assign_cmp(CmpOp::Lt, Operand::Local(0), Operand::Const(100));
    let (rare, common) = f.branch(Operand::Local(c));
    f.switch_to(rare);
    let r1 = f.call("step_a", vec![Operand::Local(0)]);
    f.ret(Operand::Local(r1));
    f.switch_to(common);
    let r2 = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(0),
        Operand::Const(7),
    ));
    let v = f.assign(Rvalue::LoadGlobal {
        global: "weights".into(),
        index: Operand::Local(r2),
    });
    f.ret(Operand::Local(v));
    p.add_function(f.finish());

    // dispatch: switch-based (jump table).
    let mut f = FunctionBuilder::new("dispatch", 1, "dispatch.c", 1);
    let m = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(0),
        Operand::Const(3),
    ));
    let arms = f.switch(Operand::Local(m), 4);
    for (i, arm) in arms.targets.clone().iter().enumerate() {
        f.switch_to(*arm);
        f.ret(Operand::Const(1 + i as i64));
    }
    f.switch_to(arms.default);
    f.ret(Operand::Const(0));
    p.add_function(f.finish());

    // apply: indirect call through a function pointer that is almost
    // always step_a (ICP fodder).
    let mut f = FunctionBuilder::new("apply", 2, "apply.c", 2);
    let r = f.call_indirect(Operand::Local(1), vec![Operand::Local(0)]);
    f.ret(Operand::Local(r));
    p.add_function(f.finish());

    // main: the driver loop.
    let mut m = FunctionBuilder::new("main", 3, "main.c", 0);
    let sum = m.new_local();
    let i = m.new_local();
    m.assign_to(sum, Rvalue::Use(Operand::Const(0)));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let fa = m.assign(Rvalue::FuncAddr("step_a".into()));
    let fb = m.assign(Rvalue::FuncAddr("step_b".into()));
    let head = m.goto_new();
    m.switch_to(head);
    let c = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(4000));
    let (body, done) = m.branch(Operand::Local(c));
    m.switch_to(body);
    let cl = m.call("classify", vec![Operand::Local(i)]);
    let dp = m.call("dispatch", vec![Operand::Local(i)]);
    // Pick the pointer: step_b only every 64th iteration.
    let bits = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(i),
        Operand::Const(63),
    ));
    let is_b = m.assign_cmp(CmpOp::Eq, Operand::Local(bits), Operand::Const(0));
    let (use_b, use_a) = m.branch(Operand::Local(is_b));
    let join = m.new_block();
    let ptr = m.new_local();
    m.switch_to(use_b);
    m.assign_to(ptr, Rvalue::Use(Operand::Local(fb)));
    m.goto(join);
    m.switch_to(use_a);
    m.assign_to(ptr, Rvalue::Use(Operand::Local(fa)));
    m.goto(join);
    m.switch_to(join);
    let ap = m.call("apply", vec![Operand::Local(i), Operand::Local(ptr)]);
    let t1 = m.assign(Rvalue::BinOp(
        BinOp::Add,
        Operand::Local(cl),
        Operand::Local(dp),
    ));
    let t2 = m.assign(Rvalue::BinOp(
        BinOp::Add,
        Operand::Local(t1),
        Operand::Local(ap),
    ));
    m.assign_to(
        sum,
        Rvalue::BinOp(BinOp::Add, Operand::Local(sum), Operand::Local(t2)),
    );
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(sum));
    let masked = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(sum),
        Operand::Const(0x7F),
    ));
    m.ret(Operand::Local(masked));
    p.add_function(m.finish());
    p.validate().unwrap();
    p
}

const MAX_STEPS: u64 = 50_000_000;

fn run_with_profile(elf: &bolt_elf::Elf) -> (i64, Vec<i64>, Profile) {
    let mut m = Machine::new();
    m.load_elf(elf);
    let mut sampler = LbrSampler::new(61, SampleTrigger::Instructions);
    let r = m.run(&mut sampler, MAX_STEPS).expect("baseline runs");
    let Exit::Exited(code) = r.exit else {
        panic!("did not exit: {:?}", r.exit);
    };
    (code, m.output.clone(), sampler.profile)
}

fn run_plain(elf: &bolt_elf::Elf) -> (i64, Vec<i64>) {
    let mut m = Machine::new();
    m.load_elf(elf);
    let r = m.run(&mut NullSink, MAX_STEPS).expect("bolted binary runs");
    let Exit::Exited(code) = r.exit else {
        panic!("did not exit: {:?}", r.exit);
    };
    (code, m.output.clone())
}

#[test]
fn bolt_preserves_semantics_and_improves_layout() {
    let program = adversarial_program();
    let opts = CompileOptions {
        legacy_amd: true, // give strip-rep-ret something to do
        ..CompileOptions::default()
    };
    let bin = compile_and_link(&program, &opts).expect("compiles");

    let (code0, out0, profile) = run_with_profile(&bin.elf);
    assert!(profile.total_branch_count() > 0, "profile has content");

    let bolted = optimize(&bin.elf, &profile, &BoltOptions::paper_default()).expect("bolts");

    // Pipeline activity sanity: the interesting passes all fired.
    // Sum per pass name (icf and peepholes run twice).
    let mut changes: std::collections::HashMap<&str, u64> = Default::default();
    for r in &bolted.pipeline.reports {
        *changes.entry(r.name).or_insert(0) += r.changes;
    }
    assert!(changes["strip-rep-ret"] > 0, "repz rets stripped");
    assert!(changes["icf"] > 0, "twins folded");
    assert!(changes["plt"] > 0, "PLT calls devirtualized");
    assert!(changes["reorder-bbs"] > 0, "blocks reordered");

    // Semantics: identical output and exit code.
    let (code1, out1) = run_plain(&bolted.elf);
    assert_eq!(code0, code1, "exit code preserved");
    assert_eq!(out0, out1, "emitted output preserved");

    // Layout quality: taken branches drop (paper Table 2's headline).
    let delta = bolted.dyno_after.taken_branch_delta(&bolted.dyno_before);
    assert!(
        delta < -10.0,
        "taken branches should drop noticeably, got {delta:+.1}%"
    );

    // Microarchitectural quality: fewer I-cache misses and cycles under
    // the simulator.
    let cfg = SimConfig::small();
    let mut base_model = CpuModel::new(cfg.clone());
    {
        let mut m = Machine::new();
        m.load_elf(&bin.elf);
        m.run(&mut base_model, MAX_STEPS).unwrap();
    }
    let mut bolt_model = CpuModel::new(cfg);
    {
        let mut m = Machine::new();
        m.load_elf(&bolted.elf);
        m.run(&mut bolt_model, MAX_STEPS).unwrap();
    }
    let base = base_model.counters();
    let new = bolt_model.counters();
    assert!(
        new.cycles < base.cycles,
        "cycles: {} -> {} (should improve)",
        base.cycles,
        new.cycles
    );
}

#[test]
fn bolt_identity_options_still_preserve_semantics() {
    // Even with every optimization off, the rewrite (decode -> CFG ->
    // re-emit at a new address) must preserve behavior.
    let program = adversarial_program();
    let bin = compile_and_link(&program, &CompileOptions::default()).expect("compiles");
    let (code0, out0, profile) = run_with_profile(&bin.elf);

    let mut opts = BoltOptions::paper_default();
    opts.passes = bolt_passes::PassOptions::none();
    let bolted = optimize(&bin.elf, &profile, &opts).expect("bolts");
    let (code1, out1) = run_plain(&bolted.elf);
    assert_eq!(code0, code1);
    assert_eq!(out0, out1);
}

#[test]
fn bolt_without_profile_is_safe() {
    let program = adversarial_program();
    let bin = compile_and_link(&program, &CompileOptions::default()).expect("compiles");
    let (code0, out0) = run_plain(&bin.elf);

    let empty = Profile::new(bolt_profile::ProfileMode::Lbr);
    let bolted = optimize(&bin.elf, &empty, &BoltOptions::paper_default()).expect("bolts");
    let (code1, out1) = run_plain(&bolted.elf);
    assert_eq!(code0, code1);
    assert_eq!(out0, out1);
}

#[test]
fn exception_tables_stay_correct() {
    // A program with landing pads: after BOLT (with -split-eh moving cold
    // pads), the rewritten exception table must map every moved call site
    // to the moved landing pad.
    let mut p = MirProgram::with_entry("main");
    let mut callee = FunctionBuilder::new("may_throw", 0, "t.c", 1);
    callee.ret(Operand::Local(0));
    p.add_function(callee.finish());

    let mut m = FunctionBuilder::new("main", 0, "m.c", 0);
    // Build the landing pad first so we can reference it.
    let lp = m.new_block();
    let r = m.call_with_landing_pad("may_throw", vec![Operand::Const(5)], lp);
    m.emit(Operand::Local(r));
    m.ret(Operand::Local(r));
    m.switch_to(lp);
    m.emit(Operand::Const(-1));
    m.unreachable();
    p.add_function(m.finish());
    p.validate().unwrap();

    let bin = compile_and_link(&p, &CompileOptions::default()).expect("compiles");
    let eh_before =
        bolt_ir::ExceptionTable::from_bytes(&bin.elf.section(".bolt.eh").unwrap().data).unwrap();
    assert!(!eh_before.entries.is_empty(), "input has EH entries");

    let (code0, out0, profile) = run_with_profile(&bin.elf);
    let bolted = optimize(&bin.elf, &profile, &BoltOptions::paper_default()).expect("bolts");
    let (code1, out1) = run_plain(&bolted.elf);
    assert_eq!((code0, out0), (code1, out1));

    let eh_after =
        bolt_ir::ExceptionTable::from_bytes(&bolted.elf.section(".bolt.eh").unwrap().data).unwrap();
    assert!(
        !eh_after.entries.is_empty(),
        "EH entries survive the rewrite"
    );
    // Every call site in the table must decode to a call instruction, and
    // every landing pad must fall inside a text section.
    for (&cs, &pad) in &eh_after.entries {
        let in_text = |a: u64| {
            bolted
                .elf
                .sections
                .iter()
                .any(|s| s.is_exec() && s.addr_range().contains(&a))
        };
        assert!(in_text(cs), "call site {cs:#x} in text");
        assert!(in_text(pad), "landing pad {pad:#x} in text");
    }
}
