//! The fault-tolerance ladder end to end: a poisoned pass kernel must
//! never fail a run — the target function degrades
//! `default -> layout-only -> quarantined` across retry rounds, its
//! original bytes survive verbatim, and program behavior is preserved.

use bolt_compiler::{
    compile_and_link, BinOp, CmpOp, CompileOptions, FunctionBuilder, MirProgram, Operand, Rvalue,
};
use bolt_emu::{Exit, Machine, NullSink};
use bolt_opt::{optimize, BoltOptions, QuarantineAction};
use bolt_profile::{LbrSampler, Profile, SampleTrigger};

const MAX_STEPS: u64 = 10_000_000;

/// A small multi-function program: a helper, a branchy classifier, and
/// a main loop, so the ladder has distinct functions to demote.
fn program() -> MirProgram {
    let mut p = MirProgram::with_entry("main");

    let mut h = FunctionBuilder::new("mix", 0, "h.c", 1);
    let a = h.assign(Rvalue::BinOp(
        BinOp::Mul,
        Operand::Local(0),
        Operand::Const(2654435761),
    ));
    let b = h.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(a),
        Operand::Const(0xFFFF),
    ));
    h.ret(Operand::Local(b));
    p.add_function(h.finish());

    let mut c = FunctionBuilder::new("classify", 1, "c.c", 1);
    let cc = c.assign_cmp(CmpOp::Lt, Operand::Local(0), Operand::Const(50));
    let (lo, hi) = c.branch(Operand::Local(cc));
    c.switch_to(lo);
    let r1 = c.call("mix", vec![Operand::Local(0)]);
    c.ret(Operand::Local(r1));
    c.switch_to(hi);
    let r2 = c.assign(Rvalue::BinOp(
        BinOp::Add,
        Operand::Local(0),
        Operand::Const(7),
    ));
    c.ret(Operand::Local(r2));
    p.add_function(c.finish());

    let mut m = FunctionBuilder::new("main", 2, "m.c", 0);
    let sum = m.new_local();
    let i = m.new_local();
    m.assign_to(sum, Rvalue::Use(Operand::Const(0)));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let head = m.goto_new();
    m.switch_to(head);
    let c0 = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(200));
    let (body, done) = m.branch(Operand::Local(c0));
    m.switch_to(body);
    let v = m.call("classify", vec![Operand::Local(i)]);
    m.assign_to(
        sum,
        Rvalue::BinOp(BinOp::Add, Operand::Local(sum), Operand::Local(v)),
    );
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(sum));
    let masked = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(sum),
        Operand::Const(0x7F),
    ));
    m.ret(Operand::Local(masked));
    p.add_function(m.finish());
    p.validate().unwrap();
    p
}

fn profile_run(elf: &bolt_elf::Elf) -> (i64, Vec<i64>, Profile) {
    let mut m = Machine::new();
    m.load_elf(elf);
    let mut sampler = LbrSampler::new(61, SampleTrigger::Instructions);
    let r = m.run(&mut sampler, MAX_STEPS).expect("baseline runs");
    let Exit::Exited(code) = r.exit else {
        panic!("did not exit: {:?}", r.exit);
    };
    (code, m.output.clone(), sampler.profile)
}

fn plain_run(elf: &bolt_elf::Elf) -> (i64, Vec<i64>) {
    let mut m = Machine::new();
    m.load_elf(elf);
    let r = m.run(&mut NullSink, MAX_STEPS).expect("bolted binary runs");
    let Exit::Exited(code) = r.exit else {
        panic!("did not exit: {:?}", r.exit);
    };
    (code, m.output.clone())
}

#[test]
fn clean_run_reports_no_quarantine() {
    let bin = compile_and_link(&program(), &CompileOptions::default()).unwrap();
    let (_, _, profile) = profile_run(&bin.elf);
    let bolted = optimize(&bin.elf, &profile, &BoltOptions::paper_default()).expect("bolts");
    assert!(bolted.quarantine.is_clean());
    assert_eq!(bolted.quarantine.rounds, 1, "no retries on a healthy run");
    assert_eq!(bolted.quarantine.layout_only, 0);
    assert_eq!(bolted.quarantine.quarantined, 0);
    assert!(bolted.quarantine.disabled_passes.is_empty());
}

#[test]
fn poison_ladder_runs_all_three_rungs_and_preserves_behavior() {
    let bin = compile_and_link(&program(), &CompileOptions::default()).unwrap();
    let (code0, out0, profile) = profile_run(&bin.elf);

    let mut opts = BoltOptions::paper_default();
    opts.poison_nth = Some(1);
    let bolted = optimize(&bin.elf, &profile, &opts).expect("poisoned run still succeeds");

    // The ladder: round 1 panics -> layout-only, round 2 panics again
    // -> quarantined, round 3 is clean.
    let q = &bolted.quarantine;
    assert_eq!(q.rounds, 3, "two retries:\n{}", q.render());
    assert_eq!(q.events.len(), 2, "{}", q.render());
    let target = q.events[0].function.clone();
    assert!(!target.is_empty());
    assert_eq!(q.events[0].action, QuarantineAction::DemoteLayoutOnly);
    assert_eq!(q.events[0].stage, "pass:poison");
    assert_eq!(q.events[1].function, target);
    assert_eq!(q.events[1].action, QuarantineAction::Quarantine);
    assert_eq!((q.layout_only, q.quarantined), (0, 1));

    // The quarantined function is excluded from the rewrite: its symbol
    // did not move and its original bytes survive verbatim.
    let sym_in = bin.elf.symbol(&target).expect("target in input");
    let sym_out = bolted.elf.symbol(&target).expect("target in output");
    assert_eq!(sym_in.value, sym_out.value, "not relocated");
    let bytes_in = bin.elf.read_vaddr(sym_in.value, sym_in.size as usize);
    let bytes_out = bolted.elf.read_vaddr(sym_in.value, sym_in.size as usize);
    assert_eq!(bytes_in, bytes_out, "original bytes preserved");
    let fi = bolted.ctx.by_name[&target];
    assert_eq!(
        bolted.ctx.functions[fi].non_simple_reason,
        Some(bolt_ir::NonSimpleReason::Quarantined)
    );

    // Behavior is fully preserved.
    let (code1, out1) = plain_run(&bolted.elf);
    assert_eq!((code0, out0), (code1, out1));
}

/// Poisoning *any* simple function must never fail the run or change
/// program behavior — the blast radius is always one function.
#[test]
fn poisoning_each_function_is_contained() {
    let bin = compile_and_link(&program(), &CompileOptions::default()).unwrap();
    let (code0, out0, profile) = profile_run(&bin.elf);
    let n_simple = {
        let prepared = bolt_opt::prepare(&bin.elf, &profile, &BoltOptions::paper_default());
        prepared.simple_functions
    };
    assert!(n_simple >= 3, "program has several simple functions");
    for nth in 0..n_simple {
        let mut opts = BoltOptions::paper_default();
        opts.poison_nth = Some(nth);
        let bolted =
            optimize(&bin.elf, &profile, &opts).unwrap_or_else(|e| panic!("poison_nth={nth}: {e}"));
        assert_eq!(
            bolted.quarantine.quarantined,
            1,
            "poison_nth={nth}: exactly the target is excluded\n{}",
            bolted.quarantine.render()
        );
        let (code1, out1) = plain_run(&bolted.elf);
        assert_eq!((code0, &out0), (code1, &out1), "poison_nth={nth}");
    }
}
