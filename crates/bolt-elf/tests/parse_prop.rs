//! Robustness properties for the reader: `read_elf` must never panic,
//! no matter how a valid image's bytes are mutated — every input either
//! parses to an image or returns a structured [`ElfError`]. The writer
//! side of the round-trip lives in `roundtrip.rs`; this file is the
//! adversarial half of the fault-tolerance story (the dynamic sweep is
//! `tests/fault_injection.rs` at the workspace root).

use bolt_elf::{read_elf, write_elf, Elf, Rela, Section, Symbol};
use proptest::prelude::*;

/// A representative well-formed image: code, rodata, data, metadata,
/// symbols, and a relocation, so every reader code path is reachable
/// from a mutation.
fn valid_image() -> Vec<u8> {
    let mut e = Elf::new(0x400000);
    e.sections.push(Section::code(
        ".text",
        0x400000,
        vec![0x55, 0x48, 0x89, 0xE5, 0x31, 0xC0, 0x5D, 0xC3],
    ));
    e.sections
        .push(Section::rodata(".rodata", 0x500000, (0..32).collect()));
    e.sections
        .push(Section::data(".data", 0x600000, vec![0; 24]));
    e.sections
        .push(Section::metadata(".bolt.lines", vec![1, 2, 3, 4]));
    e.symbols.push(Symbol::func("main", 0x400000, 8, 0));
    e.symbols.push(Symbol::object("table", 0x500000, 8, 1));
    e.relocations.push(Rela {
        offset: 0x400002,
        sym_index: 1,
        rtype: bolt_elf::types::reloc::R_X86_64_PC32,
        addend: -4,
    });
    write_elf(&e).expect("valid image serializes")
}

/// Every prefix of a valid image parses or errors — never panics. This
/// walks each truncation point exhaustively (the file is a few KB), so
/// every length-check in the reader is exercised deterministically.
#[test]
fn every_truncation_is_handled() {
    let bytes = valid_image();
    for len in 0..bytes.len() {
        let _ = read_elf(&bytes[..len]);
    }
}

/// Every single-bit flip of the header and section-table region parses
/// or errors — never panics. The header and section table carry all the
/// offsets and counts the reader trusts, so this is the densest panic
/// surface.
#[test]
fn every_header_bitflip_is_handled() {
    let bytes = valid_image();
    let shoff = u64::from_le_bytes(bytes[40..48].try_into().unwrap()) as usize;
    let mut regions = Vec::new();
    regions.push(0..64.min(bytes.len()));
    if shoff < bytes.len() {
        regions.push(shoff..bytes.len());
    }
    for region in regions {
        for at in region {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[at] ^= 1 << bit;
                let _ = read_elf(&mutated);
            }
        }
    }
}

proptest! {
    /// Arbitrary multi-byte corruption plus truncation: the reader
    /// must return (`Ok` or `Err`) on every mutant.
    #[test]
    fn mutated_images_never_panic_the_reader(
        muts in proptest::collection::vec((0usize..1 << 20, any::<u8>()), 1..32),
        cut in 0usize..1 << 20,
    ) {
        let mut bytes = valid_image();
        for (at, xor) in muts {
            let idx = at % bytes.len();
            bytes[idx] ^= xor;
        }
        // Truncate only sometimes, so whole-length mutants stay common.
        if cut % 4 == 0 {
            let keep = cut % (bytes.len() + 1);
            bytes.truncate(keep);
        }
        let _ = read_elf(&bytes);
    }

    /// Pure-noise inputs (no valid scaffold at all) are rejected or
    /// parsed, never a panic.
    #[test]
    fn random_bytes_never_panic_the_reader(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = read_elf(&bytes);
    }
}
