//! Round-trip and property tests: `write_elf` output always parses back to
//! the same image.

use bolt_elf::types::{reloc, sht};
use bolt_elf::{
    read_elf, write_elf, Elf, ElfError, Rela, Section, SymBind, SymKind, SymSection, Symbol,
};
use proptest::prelude::*;

fn sample_elf() -> Elf {
    let mut e = Elf::new(0x400000);
    e.sections.push(Section::code(
        ".text",
        0x400000,
        vec![0x55, 0x48, 0x89, 0xE5, 0x5D, 0xC3],
    ));
    e.sections.push(Section::rodata(
        ".rodata",
        0x500000,
        vec![1, 2, 3, 4, 5, 6, 7, 8],
    ));
    e.sections
        .push(Section::data(".data", 0x600000, vec![0; 16]));
    e.sections
        .push(Section::metadata(".bolt.lines", vec![9, 9, 9]));
    e.symbols.push(Symbol {
        name: "local_helper".into(),
        value: 0x400000,
        size: 6,
        kind: SymKind::Func,
        bind: SymBind::Local,
        section: SymSection::Section(0),
    });
    e.symbols.push(Symbol::func("main", 0x400000, 6, 0));
    e.symbols.push(Symbol::object("table", 0x500000, 8, 1));
    e.relocations.push(Rela {
        offset: 0x400002,
        sym_index: 2,
        rtype: reloc::R_X86_64_PC32,
        addend: -4,
    });
    e
}

#[test]
fn full_image_round_trips() {
    let elf = sample_elf();
    let bytes = write_elf(&elf).unwrap();
    let back = read_elf(&bytes).unwrap();
    assert_eq!(back.entry, elf.entry);
    assert_eq!(back.sections, elf.sections);
    assert_eq!(back.symbols.len(), elf.symbols.len());
    for sym in &elf.symbols {
        let got = back.symbol(&sym.name).expect("symbol survives round trip");
        assert_eq!(got, sym);
    }
    assert_eq!(back.relocations.len(), 1);
    let r = back.relocations[0];
    assert_eq!(r.offset, 0x400002);
    assert_eq!(r.rtype, reloc::R_X86_64_PC32);
    assert_eq!(back.symbols[r.sym_index as usize].name, "table");
}

#[test]
fn rejects_garbage() {
    assert_eq!(read_elf(b"not an elf"), Err(ElfError::BadMagic));
    let mut bytes = write_elf(&sample_elf()).unwrap();
    bytes.truncate(40);
    assert!(read_elf(&bytes).is_err());
}

#[test]
fn alloc_sections_page_congruent() {
    let elf = sample_elf();
    let bytes = write_elf(&elf).unwrap();
    // Parse program headers directly to validate loadability.
    let phoff = u64::from_le_bytes(bytes[32..40].try_into().unwrap()) as usize;
    let phnum = u16::from_le_bytes(bytes[56..58].try_into().unwrap()) as usize;
    assert_eq!(phnum, 3, "one PT_LOAD per alloc section");
    for i in 0..phnum {
        let p = &bytes[phoff + i * 56..phoff + (i + 1) * 56];
        let p_offset = u64::from_le_bytes(p[8..16].try_into().unwrap());
        let p_vaddr = u64::from_le_bytes(p[16..24].try_into().unwrap());
        assert_eq!(p_offset % 4096, p_vaddr % 4096, "segment {i} congruence");
    }
}

#[test]
fn globals_follow_locals_in_symtab() {
    let mut elf = sample_elf();
    // Deliberately interleave: global first, then local.
    elf.symbols.swap(0, 1);
    let bytes = write_elf(&elf).unwrap();
    let back = read_elf(&bytes).unwrap();
    let first_global = back
        .symbols
        .iter()
        .position(|s| s.bind == SymBind::Global)
        .unwrap();
    assert!(
        back.symbols[..first_global]
            .iter()
            .all(|s| s.bind == SymBind::Local),
        "locals must precede globals"
    );
    // Relocation still resolves to the same symbol by name.
    let r = back.relocations[0];
    assert_eq!(back.symbols[r.sym_index as usize].name, "table");
}

#[test]
fn invalid_cross_references_rejected() {
    let mut elf = sample_elf();
    elf.symbols[0].section = SymSection::Section(99);
    assert!(matches!(
        write_elf(&elf),
        Err(ElfError::BadSymbolSection { .. })
    ));

    let mut elf = sample_elf();
    elf.relocations[0].sym_index = 99;
    assert!(matches!(
        write_elf(&elf),
        Err(ElfError::BadRelocSymbol { .. })
    ));
}

fn arb_section(i: usize) -> impl Strategy<Value = Section> {
    let name = format!(".s{i}");
    (
        proptest::collection::vec(any::<u8>(), 0..200),
        0u8..4,
        Just(name),
    )
        .prop_map(move |(data, kind, name)| {
            let addr = 0x40_0000 + (i as u64) * 0x10_0000;
            match kind {
                0 => Section::code(name, addr, data),
                1 => Section::rodata(name, addr, data),
                2 => Section::data(name, addr, data),
                _ => Section::metadata(name, data),
            }
        })
}

fn arb_elf() -> impl Strategy<Value = Elf> {
    (0usize..5).prop_flat_map(|n| {
        let sections: Vec<_> = (0..n).map(arb_section).collect();
        (
            sections,
            proptest::collection::vec(("[a-z]{1,8}", 0u64..1 << 40, 0u64..4096), 0..10),
        )
            .prop_map(move |(sections, syms)| {
                let mut elf = Elf::new(0x400000);
                elf.sections = sections;
                for (j, (name, value, size)) in syms.into_iter().enumerate() {
                    let section = if elf.sections.is_empty() {
                        SymSection::Abs
                    } else {
                        SymSection::Section(j % elf.sections.len())
                    };
                    elf.symbols.push(Symbol {
                        name: format!("{name}_{j}"),
                        value,
                        size,
                        kind: if j % 2 == 0 {
                            SymKind::Func
                        } else {
                            SymKind::Object
                        },
                        // Locals first keeps the image in canonical order so
                        // equality round-trips exactly.
                        bind: SymBind::Global,
                        section,
                    });
                }
                elf
            })
    })
}

proptest! {
    #[test]
    fn write_read_round_trip(elf in arb_elf()) {
        let bytes = write_elf(&elf).unwrap();
        let back = read_elf(&bytes).unwrap();
        prop_assert_eq!(back, elf);
    }

    /// Writing is deterministic.
    #[test]
    fn write_is_deterministic(elf in arb_elf()) {
        prop_assert_eq!(write_elf(&elf).unwrap(), write_elf(&elf).unwrap());
    }
}

#[test]
fn section_types_preserved() {
    let elf = sample_elf();
    let bytes = write_elf(&elf).unwrap();
    let back = read_elf(&bytes).unwrap();
    assert_eq!(back.section(".text").unwrap().sh_type, sht::PROGBITS);
    assert!(back.section(".text").unwrap().is_exec());
    assert!(!back.section(".rodata").unwrap().is_writable());
    assert!(back.section(".data").unwrap().is_writable());
    assert!(!back.section(".bolt.lines").unwrap().is_alloc());
}
