//! ELF64 parser.

use crate::image::{Elf, Rela, Section, SymSection, Symbol};
use crate::types::*;
use crate::ElfError;

struct In<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> In<'a> {
    fn at(data: &'a [u8], pos: usize) -> In<'a> {
        In { data, pos }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ElfError> {
        let end = self.pos.checked_add(n).ok_or(ElfError::Truncated)?;
        if end > self.data.len() {
            return Err(ElfError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ElfError> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ElfError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ElfError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ElfError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, ElfError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn skip(&mut self, n: usize) -> Result<(), ElfError> {
        self.bytes(n).map(|_| ())
    }
}

#[derive(Clone)]
struct RawShdr {
    name_off: u32,
    sh_type: u32,
    flags: u64,
    addr: u64,
    offset: u64,
    size: u64,
    link: u32,
    align: u64,
}

fn strtab_get(table: &[u8], off: u32) -> Result<String, ElfError> {
    let off = off as usize;
    if off >= table.len() {
        return Err(ElfError::BadStringOffset(off));
    }
    let end = table[off..]
        .iter()
        .position(|&b| b == 0)
        .ok_or(ElfError::BadStringOffset(off))?;
    String::from_utf8(table[off..off + end].to_vec()).map_err(|_| ElfError::BadStringOffset(off))
}

/// Parses an ELF64 executable produced by [`crate::write_elf`] (or any
/// binary using the same subset of features) back into an [`Elf`] image.
///
/// # Errors
///
/// Returns an error for malformed headers, unsupported class/encoding, or
/// out-of-bounds offsets.
pub fn read_elf(data: &[u8]) -> Result<Elf, ElfError> {
    let mut c = In::at(data, 0);
    let magic = c.bytes(4)?;
    if magic != ELF_MAGIC {
        return Err(ElfError::BadMagic);
    }
    if c.u8()? != ELFCLASS64 || c.u8()? != ELFDATA2LSB {
        return Err(ElfError::UnsupportedFormat("not ELF64 little-endian"));
    }
    c.skip(10)?; // version, ABI, padding
    let e_type = c.u16()?;
    let machine = c.u16()?;
    if e_type != ET_EXEC {
        return Err(ElfError::UnsupportedFormat("not an executable"));
    }
    if machine != EM_X86_64 {
        return Err(ElfError::UnsupportedFormat("not x86-64"));
    }
    c.skip(4)?; // e_version
    let entry = c.u64()?;
    let _phoff = c.u64()?;
    let shoff = c.u64()?;
    c.skip(4)?; // flags
    c.skip(2)?; // ehsize
    c.skip(2)?; // phentsize
    let _phnum = c.u16()?;
    c.skip(2)?; // shentsize
    let shnum = c.u16()?;
    let shstrndx = c.u16()?;

    // Section headers.
    let mut shdrs = Vec::with_capacity(shnum as usize);
    let mut sc = In::at(data, shoff as usize);
    for _ in 0..shnum {
        let name_off = sc.u32()?;
        let sh_type = sc.u32()?;
        let flags = sc.u64()?;
        let addr = sc.u64()?;
        let offset = sc.u64()?;
        let size = sc.u64()?;
        let link = sc.u32()?;
        let _info = sc.u32()?;
        let align = sc.u64()?;
        let _entsize = sc.u64()?;
        shdrs.push(RawShdr {
            name_off,
            sh_type,
            flags,
            addr,
            offset,
            size,
            link,
            align,
        });
    }

    let sect_data = |sh: &RawShdr| -> Result<&[u8], ElfError> {
        let start = sh.offset as usize;
        let end = start
            .checked_add(sh.size as usize)
            .ok_or(ElfError::Truncated)?;
        data.get(start..end).ok_or(ElfError::Truncated)
    };

    let shstrtab = shdrs
        .get(shstrndx as usize)
        .ok_or(ElfError::UnsupportedFormat("bad shstrndx"))?;
    let shstrtab_data = sect_data(shstrtab)?;

    let mut names = Vec::with_capacity(shdrs.len());
    for sh in &shdrs {
        names.push(strtab_get(shstrtab_data, sh.name_off)?);
    }

    // Content sections: everything that is not bookkeeping.
    let mut elf = Elf::new(entry);
    // Map from file shndx to content index.
    let mut content_of_shndx = vec![None; shdrs.len()];
    for (i, sh) in shdrs.iter().enumerate() {
        let name = &names[i];
        let bookkeeping = sh.sh_type == sht::NULL
            || sh.sh_type == sht::SYMTAB
            || sh.sh_type == sht::STRTAB
            || sh.sh_type == sht::RELA;
        if bookkeeping {
            continue;
        }
        content_of_shndx[i] = Some(elf.sections.len());
        elf.sections.push(Section {
            name: name.clone(),
            sh_type: sh.sh_type,
            flags: sh.flags,
            addr: sh.addr,
            data: sect_data(sh)?.to_vec(),
            align: sh.align,
        });
    }

    // Symbol table.
    let mut file_sym_to_ours: Vec<u32> = Vec::new();
    if let Some(symtab_i) = (0..shdrs.len()).find(|&i| shdrs[i].sh_type == sht::SYMTAB) {
        let symtab = &shdrs[symtab_i];
        let strtab = shdrs
            .get(symtab.link as usize)
            .ok_or(ElfError::UnsupportedFormat("bad symtab link"))?;
        let str_data = sect_data(strtab)?;
        let payload = sect_data(symtab)?;
        let count = payload.len() / SYM_SIZE;
        let mut sc = In::at(payload, 0);
        for i in 0..count {
            let name_off = sc.u32()?;
            let info = sc.u8()?;
            let _other = sc.u8()?;
            let shndx = sc.u16()?;
            let value = sc.u64()?;
            let size = sc.u64()?;
            if i == 0 {
                file_sym_to_ours.push(u32::MAX); // null symbol
                continue;
            }
            let bind = SymBind::from_st_bind(info >> 4)
                .ok_or(ElfError::UnsupportedFormat("unknown symbol binding"))?;
            let kind = SymKind::from_st_type(info & 0xF)
                .ok_or(ElfError::UnsupportedFormat("unknown symbol type"))?;
            let section = match shndx {
                shn::UNDEF => SymSection::Undef,
                shn::ABS => SymSection::Abs,
                s => {
                    let ci = content_of_shndx
                        .get(s as usize)
                        .copied()
                        .flatten()
                        .ok_or(ElfError::UnsupportedFormat("symbol in bookkeeping section"))?;
                    SymSection::Section(ci)
                }
            };
            file_sym_to_ours.push(elf.symbols.len() as u32);
            elf.symbols.push(Symbol {
                name: strtab_get(str_data, name_off)?,
                value,
                size,
                kind,
                bind,
                section,
            });
        }
    }

    // Relocations.
    for (i, sh) in shdrs.iter().enumerate() {
        if sh.sh_type != sht::RELA {
            continue;
        }
        let _ = i;
        let payload = sect_data(sh)?;
        let count = payload.len() / RELA_SIZE;
        let mut rc = In::at(payload, 0);
        for _ in 0..count {
            let offset = rc.u64()?;
            let info = rc.u64()?;
            let addend = rc.i64()?;
            let file_sym = (info >> 32) as usize;
            let sym_index = file_sym_to_ours
                .get(file_sym)
                .copied()
                .filter(|&v| v != u32::MAX)
                .ok_or(ElfError::UnsupportedFormat(
                    "relocation against null symbol",
                ))?;
            elf.relocations.push(Rela {
                offset,
                sym_index,
                rtype: (info & 0xFFFF_FFFF) as u32,
                addend,
            });
        }
    }

    Ok(elf)
}
