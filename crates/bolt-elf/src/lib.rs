//! # bolt-elf — ELF64 reader and writer
//!
//! A from-scratch ELF64 object model used by the compiler substrate (to link
//! executables) and by the BOLT rewriter (to read and rewrite them). It is
//! the `goblin`-equivalent substrate called for by the reproduction plan.
//!
//! The model is deliberately executable-focused: sections with contents and
//! virtual addresses, a typed symbol table, and RELA relocations (the
//! `--emit-relocs` output BOLT's relocations mode consumes, paper
//! section 3.2).
//!
//! ## Example
//!
//! ```
//! use bolt_elf::{Elf, Section, Symbol, read_elf, write_elf};
//!
//! let mut elf = Elf::new(0x400000);
//! elf.sections.push(Section::code(".text", 0x400000, vec![0xC3]));
//! elf.symbols.push(Symbol::func("main", 0x400000, 1, 0));
//!
//! let bytes = write_elf(&elf)?;
//! let back = read_elf(&bytes)?;
//! assert_eq!(back.symbol("main").unwrap().value, 0x400000);
//! # Ok::<(), bolt_elf::ElfError>(())
//! ```

mod image;
mod reader;
pub mod types;
mod writer;

pub use image::{Elf, Rela, Section, SymSection, Symbol};
pub use reader::read_elf;
pub use types::{reloc, sections, shf, sht, SymBind, SymKind};
pub use writer::write_elf;

use std::fmt;

/// Errors produced when reading or writing ELF images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// The file does not start with the ELF magic.
    BadMagic,
    /// The file ended unexpectedly.
    Truncated,
    /// A structurally valid ELF using features outside the supported
    /// subset.
    UnsupportedFormat(&'static str),
    /// A string-table offset pointed outside the table.
    BadStringOffset(usize),
    /// A symbol referenced a section index that does not exist.
    BadSymbolSection { symbol: usize, section: usize },
    /// A relocation referenced a symbol index that does not exist.
    BadRelocSymbol { reloc: usize, symbol: usize },
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::BadMagic => write!(f, "not an ELF file"),
            ElfError::Truncated => write!(f, "unexpected end of file"),
            ElfError::UnsupportedFormat(what) => write!(f, "unsupported ELF: {what}"),
            ElfError::BadStringOffset(o) => write!(f, "invalid string table offset {o}"),
            ElfError::BadSymbolSection { symbol, section } => {
                write!(f, "symbol {symbol} references invalid section {section}")
            }
            ElfError::BadRelocSymbol { reloc, symbol } => {
                write!(f, "relocation {reloc} references invalid symbol {symbol}")
            }
        }
    }
}

impl std::error::Error for ElfError {}
