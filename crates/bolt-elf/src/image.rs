//! The in-memory ELF image model shared by the writer and the reader.

use crate::types::{shf, SymBind, SymKind};
use std::fmt;

/// A section with content and layout information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (e.g. `.text`).
    pub name: String,
    /// `sht::*` section type.
    pub sh_type: u32,
    /// `shf::*` flag bits.
    pub flags: u64,
    /// Virtual address (0 for non-allocatable sections).
    pub addr: u64,
    /// Raw contents.
    pub data: Vec<u8>,
    /// Required alignment.
    pub align: u64,
}

impl Section {
    /// Creates an allocatable, executable code section.
    pub fn code(name: impl Into<String>, addr: u64, data: Vec<u8>) -> Section {
        Section {
            name: name.into(),
            sh_type: crate::types::sht::PROGBITS,
            flags: shf::ALLOC | shf::EXECINSTR,
            addr,
            data,
            align: 16,
        }
    }

    /// Creates an allocatable read-only data section.
    pub fn rodata(name: impl Into<String>, addr: u64, data: Vec<u8>) -> Section {
        Section {
            name: name.into(),
            sh_type: crate::types::sht::PROGBITS,
            flags: shf::ALLOC,
            addr,
            data,
            align: 8,
        }
    }

    /// Creates an allocatable read-write data section.
    pub fn data(name: impl Into<String>, addr: u64, data: Vec<u8>) -> Section {
        Section {
            name: name.into(),
            sh_type: crate::types::sht::PROGBITS,
            flags: shf::ALLOC | shf::WRITE,
            addr,
            data,
            align: 8,
        }
    }

    /// Creates a non-allocatable metadata section.
    pub fn metadata(name: impl Into<String>, data: Vec<u8>) -> Section {
        Section {
            name: name.into(),
            sh_type: crate::types::sht::PROGBITS,
            flags: 0,
            addr: 0,
            data,
            align: 8,
        }
    }

    /// Whether the section occupies memory at run time.
    pub fn is_alloc(&self) -> bool {
        self.flags & shf::ALLOC != 0
    }

    /// Whether the section contains executable code.
    pub fn is_exec(&self) -> bool {
        self.flags & shf::EXECINSTR != 0
    }

    /// Whether the section is writable at run time.
    pub fn is_writable(&self) -> bool {
        self.flags & shf::WRITE != 0
    }

    /// The virtual address range `[addr, addr+len)` of the section.
    pub fn addr_range(&self) -> std::ops::Range<u64> {
        self.addr..self.addr + self.data.len() as u64
    }
}

/// Where a symbol is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymSection {
    /// Undefined (external) symbol.
    Undef,
    /// Absolute value.
    Abs,
    /// Index into [`Elf::sections`].
    Section(usize),
}

/// A symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    pub name: String,
    pub value: u64,
    pub size: u64,
    pub kind: SymKind,
    pub bind: SymBind,
    pub section: SymSection,
}

impl Symbol {
    /// Creates a global function symbol.
    pub fn func(name: impl Into<String>, value: u64, size: u64, section: usize) -> Symbol {
        Symbol {
            name: name.into(),
            value,
            size,
            kind: SymKind::Func,
            bind: SymBind::Global,
            section: SymSection::Section(section),
        }
    }

    /// Creates a local data-object symbol.
    pub fn object(name: impl Into<String>, value: u64, size: u64, section: usize) -> Symbol {
        Symbol {
            name: name.into(),
            value,
            size,
            kind: SymKind::Object,
            bind: SymBind::Local,
            section: SymSection::Section(section),
        }
    }

    /// The address range covered by the symbol.
    pub fn addr_range(&self) -> std::ops::Range<u64> {
        self.value..self.value + self.size
    }
}

/// A RELA relocation entry (as produced by `--emit-relocs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rela {
    /// Virtual address of the patched field.
    pub offset: u64,
    /// Index into [`Elf::symbols`].
    pub sym_index: u32,
    /// `reloc::*` relocation type.
    pub rtype: u32,
    pub addend: i64,
}

/// An ELF64 executable image.
///
/// This is the single model used by [`crate::write_elf`] and
/// [`crate::read_elf`]; the generated bookkeeping sections (`.symtab`,
/// `.strtab`, `.shstrtab`, `.rela.text`) are represented by the typed
/// `symbols`/`relocations` fields rather than by raw [`Section`]s, so a
/// write→read round trip reproduces the same `Elf` value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Elf {
    /// Program entry point.
    pub entry: u64,
    /// Content sections in layout order.
    pub sections: Vec<Section>,
    /// Symbol table (never includes the leading null symbol).
    pub symbols: Vec<Symbol>,
    /// Relocations against allocatable sections (from `--emit-relocs`).
    pub relocations: Vec<Rela>,
}

impl Elf {
    /// Creates an empty image with the given entry point.
    pub fn new(entry: u64) -> Elf {
        Elf {
            entry,
            ..Elf::default()
        }
    }

    /// Finds a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Finds a section by name, mutably.
    pub fn section_mut(&mut self, name: &str) -> Option<&mut Section> {
        self.sections.iter_mut().find(|s| s.name == name)
    }

    /// Index of a section by name.
    pub fn section_index(&self, name: &str) -> Option<usize> {
        self.sections.iter().position(|s| s.name == name)
    }

    /// Finds a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// All function symbols, sorted by address.
    pub fn function_symbols(&self) -> Vec<&Symbol> {
        let mut v: Vec<&Symbol> = self
            .symbols
            .iter()
            .filter(|s| s.kind == SymKind::Func)
            .collect();
        v.sort_by_key(|s| s.value);
        v
    }

    /// Reads `len` bytes at virtual address `addr` from allocatable
    /// sections.
    pub fn read_vaddr(&self, addr: u64, len: usize) -> Option<&[u8]> {
        for s in &self.sections {
            if s.is_alloc() && addr >= s.addr {
                let off = (addr - s.addr) as usize;
                if off + len <= s.data.len() {
                    return Some(&s.data[off..off + len]);
                }
            }
        }
        None
    }

    /// Reads a little-endian u64 at a virtual address.
    pub fn read_u64(&self, addr: u64) -> Option<u64> {
        self.read_vaddr(addr, 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// The section containing the given virtual address, if any.
    pub fn section_at(&self, addr: u64) -> Option<(usize, &Section)> {
        self.sections
            .iter()
            .enumerate()
            .find(|(_, s)| s.is_alloc() && s.addr_range().contains(&addr))
    }

    /// Total size of executable sections in bytes (the binary's "text
    /// size").
    pub fn text_size(&self) -> u64 {
        self.sections
            .iter()
            .filter(|s| s.is_exec())
            .map(|s| s.data.len() as u64)
            .sum()
    }
}

impl fmt::Display for Elf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ELF exec entry={:#x}", self.entry)?;
        for s in &self.sections {
            writeln!(
                f,
                "  {:<16} addr={:#010x} size={:#8x} flags={}{}{}",
                s.name,
                s.addr,
                s.data.len(),
                if s.is_alloc() { "A" } else { "-" },
                if s.is_writable() { "W" } else { "-" },
                if s.is_exec() { "X" } else { "-" },
            )?;
        }
        writeln!(
            f,
            "  {} symbols, {} relocations",
            self.symbols.len(),
            self.relocations.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Elf {
        let mut e = Elf::new(0x400000);
        e.sections
            .push(Section::code(".text", 0x400000, vec![0xC3; 32]));
        e.sections.push(Section::rodata(
            ".rodata",
            0x500000,
            42u64.to_le_bytes().to_vec(),
        ));
        e.symbols.push(Symbol::func("main", 0x400000, 16, 0));
        e
    }

    #[test]
    fn section_lookup() {
        let e = sample();
        assert!(e.section(".text").is_some());
        assert_eq!(e.section_index(".rodata"), Some(1));
        assert!(e.section(".data").is_none());
    }

    #[test]
    fn vaddr_reads() {
        let e = sample();
        assert_eq!(e.read_u64(0x500000), Some(42));
        assert_eq!(e.read_vaddr(0x400010, 4), Some(&[0xC3u8; 4][..]));
        assert_eq!(e.read_vaddr(0x400000, 64), None, "read past end");
    }

    #[test]
    fn section_at_and_text_size() {
        let e = sample();
        assert_eq!(e.section_at(0x40001F).map(|(i, _)| i), Some(0));
        assert_eq!(e.section_at(0x400020), None);
        assert_eq!(e.text_size(), 32);
    }

    #[test]
    fn function_symbols_sorted() {
        let mut e = sample();
        e.symbols.push(Symbol::func("aaa", 0x3FF000, 8, 0));
        let funcs = e.function_symbols();
        assert_eq!(funcs[0].name, "aaa");
        assert_eq!(funcs[1].name, "main");
    }
}
