//! ELF64 constants and primitive types (little-endian, x86-64).

/// ELF magic bytes.
pub const ELF_MAGIC: [u8; 4] = [0x7F, b'E', b'L', b'F'];
/// 64-bit class.
pub const ELFCLASS64: u8 = 2;
/// Little-endian data encoding.
pub const ELFDATA2LSB: u8 = 1;
/// Current ELF version.
pub const EV_CURRENT: u8 = 1;

/// Executable file type.
pub const ET_EXEC: u16 = 2;
/// AMD x86-64 machine.
pub const EM_X86_64: u16 = 62;

/// Size of the ELF64 file header.
pub const EHDR_SIZE: usize = 64;
/// Size of one program header.
pub const PHDR_SIZE: usize = 56;
/// Size of one section header.
pub const SHDR_SIZE: usize = 64;
/// Size of one symbol-table entry.
pub const SYM_SIZE: usize = 24;
/// Size of one RELA relocation entry.
pub const RELA_SIZE: usize = 24;

/// Section types.
pub mod sht {
    pub const NULL: u32 = 0;
    pub const PROGBITS: u32 = 1;
    pub const SYMTAB: u32 = 2;
    pub const STRTAB: u32 = 3;
    pub const RELA: u32 = 4;
    pub const NOBITS: u32 = 8;
}

/// Section flags.
pub mod shf {
    pub const WRITE: u64 = 0x1;
    pub const ALLOC: u64 = 0x2;
    pub const EXECINSTR: u64 = 0x4;
}

/// Program header types.
pub mod pt {
    pub const LOAD: u32 = 1;
}

/// Program header flags.
pub mod pf {
    pub const X: u32 = 0x1;
    pub const W: u32 = 0x2;
    pub const R: u32 = 0x4;
}

/// Special section indexes.
pub mod shn {
    pub const UNDEF: u16 = 0;
    pub const ABS: u16 = 0xFFF1;
}

/// Relocation types for x86-64.
pub mod reloc {
    /// Direct 64-bit address.
    pub const R_X86_64_64: u32 = 1;
    /// 32-bit PC-relative.
    pub const R_X86_64_PC32: u32 = 2;
}

/// Symbol binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SymBind {
    #[default]
    Local,
    Global,
    Weak,
}

impl SymBind {
    pub fn to_st_bind(self) -> u8 {
        match self {
            SymBind::Local => 0,
            SymBind::Global => 1,
            SymBind::Weak => 2,
        }
    }

    pub fn from_st_bind(b: u8) -> Option<SymBind> {
        Some(match b {
            0 => SymBind::Local,
            1 => SymBind::Global,
            2 => SymBind::Weak,
            _ => return None,
        })
    }
}

/// Symbol type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SymKind {
    #[default]
    NoType,
    Object,
    Func,
    Section,
}

impl SymKind {
    pub fn to_st_type(self) -> u8 {
        match self {
            SymKind::NoType => 0,
            SymKind::Object => 1,
            SymKind::Func => 2,
            SymKind::Section => 3,
        }
    }

    pub fn from_st_type(t: u8) -> Option<SymKind> {
        Some(match t {
            0 => SymKind::NoType,
            1 => SymKind::Object,
            2 => SymKind::Func,
            3 => SymKind::Section,
            _ => return None,
        })
    }
}

/// Well-known section names used across the toolchain.
pub mod sections {
    pub const TEXT: &str = ".text";
    pub const TEXT_COLD: &str = ".text.cold";
    pub const RODATA: &str = ".rodata";
    pub const DATA: &str = ".data";
    pub const PLT: &str = ".plt";
    pub const GOT: &str = ".got";
    /// Simplified line table (the DWARF `.debug_line` substitute).
    pub const LINES: &str = ".bolt.lines";
    /// Simplified exception table (the LSDA substitute).
    pub const EH: &str = ".bolt.eh";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_kind_round_trip() {
        for b in [SymBind::Local, SymBind::Global, SymBind::Weak] {
            assert_eq!(SymBind::from_st_bind(b.to_st_bind()), Some(b));
        }
        for k in [
            SymKind::NoType,
            SymKind::Object,
            SymKind::Func,
            SymKind::Section,
        ] {
            assert_eq!(SymKind::from_st_type(k.to_st_type()), Some(k));
        }
        assert_eq!(SymBind::from_st_bind(9), None);
        assert_eq!(SymKind::from_st_type(9), None);
    }
}
