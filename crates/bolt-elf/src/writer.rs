//! ELF64 serializer.

use crate::image::{Elf, SymSection};
use crate::types::*;
use crate::ElfError;

struct Out(Vec<u8>);

impl Out {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn pad_to(&mut self, off: usize) {
        assert!(off >= self.0.len(), "cannot pad backwards");
        self.0.resize(off, 0);
    }
}

/// A string table under construction.
#[derive(Default)]
struct StrTab {
    data: Vec<u8>,
}

impl StrTab {
    fn new() -> StrTab {
        StrTab { data: vec![0] }
    }

    fn add(&mut self, s: &str) -> u32 {
        if s.is_empty() {
            return 0;
        }
        let off = self.data.len() as u32;
        self.data.extend_from_slice(s.as_bytes());
        self.data.push(0);
        off
    }
}

struct ShdrEntry {
    name_off: u32,
    sh_type: u32,
    flags: u64,
    addr: u64,
    offset: u64,
    size: u64,
    link: u32,
    info: u32,
    align: u64,
    entsize: u64,
}

/// Serializes an [`Elf`] image to bytes.
///
/// Bookkeeping sections (`.symtab`, `.strtab`, `.shstrtab`, `.rela.text`)
/// are generated from the typed fields. One `PT_LOAD` program header is
/// emitted per allocatable section, with file offsets congruent to virtual
/// addresses modulo the page size.
///
/// # Errors
///
/// Returns an error if a relocation references an out-of-range symbol index
/// or a symbol references an out-of-range section.
pub fn write_elf(elf: &Elf) -> Result<Vec<u8>, ElfError> {
    // Validate cross-references up front.
    for (i, sym) in elf.symbols.iter().enumerate() {
        if let SymSection::Section(s) = sym.section {
            if s >= elf.sections.len() {
                return Err(ElfError::BadSymbolSection {
                    symbol: i,
                    section: s,
                });
            }
        }
    }
    for (i, r) in elf.relocations.iter().enumerate() {
        if r.sym_index as usize >= elf.symbols.len() {
            return Err(ElfError::BadRelocSymbol {
                reloc: i,
                symbol: r.sym_index as usize,
            });
        }
    }

    // Symbol order: ELF requires local symbols to precede globals.
    let mut sym_order: Vec<usize> = (0..elf.symbols.len()).collect();
    sym_order.sort_by_key(|&i| elf.symbols[i].bind.to_st_bind().min(1));
    let mut sym_newpos = vec![0u32; elf.symbols.len()];
    for (newpos, &old) in sym_order.iter().enumerate() {
        sym_newpos[old] = newpos as u32;
    }
    let n_local = elf
        .symbols
        .iter()
        .filter(|s| s.bind == SymBind::Local)
        .count();

    let n_content = elf.sections.len();
    let has_rela = !elf.relocations.is_empty();
    // Section header order:
    //   0: null, 1..=n: content, then .symtab, .strtab, [.rela.text], .shstrtab
    let symtab_idx = n_content + 1;
    let strtab_idx = symtab_idx + 1;
    let shstrtab_idx = strtab_idx + 1 + usize::from(has_rela);
    let n_sections = shstrtab_idx + 1;

    let n_phdrs = elf.sections.iter().filter(|s| s.is_alloc()).count();

    let mut shstr = StrTab::new();
    let mut strtab = StrTab::new();

    // .symtab payload.
    let mut symtab_data = Out(Vec::new());
    // Null symbol.
    for _ in 0..SYM_SIZE {
        symtab_data.u8(0);
    }
    for &old in &sym_order {
        let sym = &elf.symbols[old];
        let name_off = strtab.add(&sym.name);
        let shndx = match sym.section {
            SymSection::Undef => shn::UNDEF,
            SymSection::Abs => shn::ABS,
            SymSection::Section(s) => (s + 1) as u16,
        };
        symtab_data.u32(name_off);
        symtab_data.u8((sym.bind.to_st_bind() << 4) | sym.kind.to_st_type());
        symtab_data.u8(0); // st_other
        symtab_data.u16(shndx);
        symtab_data.u64(sym.value);
        symtab_data.u64(sym.size);
    }

    // .rela.text payload (symbol indices shifted by 1 for the null symbol
    // and remapped for local-first ordering).
    let mut rela_data = Out(Vec::new());
    for r in &elf.relocations {
        rela_data.u64(r.offset);
        let sym = sym_newpos[r.sym_index as usize] + 1;
        rela_data.u64(((sym as u64) << 32) | r.rtype as u64);
        rela_data.i64(r.addend);
    }

    // Header layout.
    let phdr_off = EHDR_SIZE;
    let data_start = phdr_off + n_phdrs * PHDR_SIZE;

    // Assign file offsets to content sections.
    let mut offsets = Vec::with_capacity(n_content);
    let mut cursor = data_start;
    for s in &elf.sections {
        if s.is_alloc() {
            const PAGE: usize = 4096;
            let want = (s.addr as usize) % PAGE;
            if cursor % PAGE != want {
                cursor += (want + PAGE - cursor % PAGE) % PAGE;
            }
        } else {
            cursor = (cursor + 7) & !7;
        }
        offsets.push(cursor);
        cursor += s.data.len();
    }
    let symtab_off = (cursor + 7) & !7;
    let strtab_off = symtab_off + symtab_data.0.len();
    let rela_off = strtab_off + strtab.data.len();
    let shstrtab_off = rela_off + rela_data.0.len();

    // Build section header entries (names interned in order).
    let mut shdrs: Vec<ShdrEntry> = Vec::with_capacity(n_sections);
    shdrs.push(ShdrEntry {
        name_off: 0,
        sh_type: sht::NULL,
        flags: 0,
        addr: 0,
        offset: 0,
        size: 0,
        link: 0,
        info: 0,
        align: 0,
        entsize: 0,
    });
    for (i, s) in elf.sections.iter().enumerate() {
        shdrs.push(ShdrEntry {
            name_off: shstr.add(&s.name),
            sh_type: s.sh_type,
            flags: s.flags,
            addr: s.addr,
            offset: offsets[i] as u64,
            size: s.data.len() as u64,
            link: 0,
            info: 0,
            align: s.align,
            entsize: 0,
        });
    }
    shdrs.push(ShdrEntry {
        name_off: shstr.add(".symtab"),
        sh_type: sht::SYMTAB,
        flags: 0,
        addr: 0,
        offset: symtab_off as u64,
        size: symtab_data.0.len() as u64,
        link: strtab_idx as u32,
        info: (n_local + 1) as u32,
        align: 8,
        entsize: SYM_SIZE as u64,
    });
    shdrs.push(ShdrEntry {
        name_off: shstr.add(".strtab"),
        sh_type: sht::STRTAB,
        flags: 0,
        addr: 0,
        offset: strtab_off as u64,
        size: strtab.data.len() as u64,
        link: 0,
        info: 0,
        align: 1,
        entsize: 0,
    });
    if has_rela {
        let text_shndx = elf
            .section_index(sections::TEXT)
            .map(|i| (i + 1) as u32)
            .unwrap_or(0);
        shdrs.push(ShdrEntry {
            name_off: shstr.add(".rela.text"),
            sh_type: sht::RELA,
            flags: 0,
            addr: 0,
            offset: rela_off as u64,
            size: rela_data.0.len() as u64,
            link: symtab_idx as u32,
            info: text_shndx,
            align: 8,
            entsize: RELA_SIZE as u64,
        });
    }
    let shstrtab_name = shstr.add(".shstrtab");
    let shstrtab_size = shstr.data.len() + ".shstrtab".len() + 1;
    // The name was just interned, so the final size is already accounted
    // for by StrTab::add above.
    let _ = shstrtab_size;
    shdrs.push(ShdrEntry {
        name_off: shstrtab_name,
        sh_type: sht::STRTAB,
        flags: 0,
        addr: 0,
        offset: shstrtab_off as u64,
        size: shstr.data.len() as u64,
        link: 0,
        info: 0,
        align: 1,
        entsize: 0,
    });

    let shoff = {
        let end = shstrtab_off + shstr.data.len();
        (end + 7) & !7
    };

    // Emit.
    let mut out = Out(Vec::with_capacity(shoff + n_sections * SHDR_SIZE));
    // ELF header.
    out.0.extend_from_slice(&ELF_MAGIC);
    out.u8(ELFCLASS64);
    out.u8(ELFDATA2LSB);
    out.u8(EV_CURRENT);
    out.u8(0); // OS ABI = System V
    for _ in 0..8 {
        out.u8(0);
    }
    out.u16(ET_EXEC);
    out.u16(EM_X86_64);
    out.u32(EV_CURRENT as u32);
    out.u64(elf.entry);
    out.u64(phdr_off as u64);
    out.u64(shoff as u64);
    out.u32(0); // flags
    out.u16(EHDR_SIZE as u16);
    out.u16(PHDR_SIZE as u16);
    out.u16(n_phdrs as u16);
    out.u16(SHDR_SIZE as u16);
    out.u16(n_sections as u16);
    out.u16(shstrtab_idx as u16);
    debug_assert_eq!(out.0.len(), EHDR_SIZE);

    // Program headers: one PT_LOAD per allocatable section.
    for (i, s) in elf.sections.iter().enumerate() {
        if !s.is_alloc() {
            continue;
        }
        let mut flags = pf::R;
        if s.is_writable() {
            flags |= pf::W;
        }
        if s.is_exec() {
            flags |= pf::X;
        }
        out.u32(pt::LOAD);
        out.u32(flags);
        out.u64(offsets[i] as u64);
        out.u64(s.addr);
        out.u64(s.addr); // paddr
        out.u64(s.data.len() as u64);
        out.u64(s.data.len() as u64);
        out.u64(4096);
    }

    // Section data.
    for (i, s) in elf.sections.iter().enumerate() {
        out.pad_to(offsets[i]);
        out.0.extend_from_slice(&s.data);
    }
    out.pad_to(symtab_off);
    out.0.extend_from_slice(&symtab_data.0);
    debug_assert_eq!(out.0.len(), strtab_off);
    out.0.extend_from_slice(&strtab.data);
    debug_assert_eq!(out.0.len(), rela_off);
    out.0.extend_from_slice(&rela_data.0);
    debug_assert_eq!(out.0.len(), shstrtab_off);
    out.0.extend_from_slice(&shstr.data);

    // Section headers.
    out.pad_to(shoff);
    for sh in &shdrs {
        out.u32(sh.name_off);
        out.u32(sh.sh_type);
        out.u64(sh.flags);
        out.u64(sh.addr);
        out.u64(sh.offset);
        out.u64(sh.size);
        out.u32(sh.link);
        out.u32(sh.info);
        out.u64(sh.align);
        out.u64(sh.entsize);
    }

    Ok(out.0)
}
