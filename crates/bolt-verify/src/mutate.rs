//! Seeded defects for verifier validation.
//!
//! Each [`Mutation`] corrupts a rewritten ELF the way a buggy rewriter
//! would — retargeted branch, blocks swapped without fixups, truncated
//! function, garbage bytes, corrupted jump table, overlapping or missing
//! symbols — so tests can prove [`crate::verify_rewrite`] catches every
//! defect class rather than merely accepting good binaries.
//!
//! [`SemMutation`] plays the same role one layer down, for the
//! *semantic* translation validator: each variant corrupts an emulator
//! translation (the decoded instruction pool, the parallel micro-op
//! pool, and the recorded memory shapes) **consistently**, so the
//! structural cross-check (`bolt_emu::validate_block`) still accepts it
//! — only comparing against the meaning of the original bytes, as the
//! symbolic validator does, can catch it.

use crate::FindingKind;
use bolt_elf::{Elf, SymKind};
use bolt_emu::{MemShape, MicroOp, SemFindingKind, UopKind};
use bolt_ir::{BinaryContext, BinaryFunction};
use bolt_isa::{decode, Inst, Mem, Reg, Target};
use std::fmt;

/// One kind of seeded defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Bump the low displacement byte of a conditional branch so it
    /// points one byte past its real target.
    RetargetJcc,
    /// Rewrite a short `jcc` opcode into a short `jmp`, silently
    /// dropping one CFG edge.
    DropCondBranch,
    /// Swap the byte ranges of two adjacent basic blocks without fixing
    /// up any branches.
    SwapBlocks,
    /// Overwrite a function's final terminator with NOPs so it falls
    /// through into padding or the next function.
    TruncateFunction,
    /// Replace a function's first byte with an undecodable opcode.
    GarbageBytes,
    /// Add 1 to a jump-table entry in the data section.
    CorruptJumpTable,
    /// Bump the low displacement byte of a direct call into rewritten
    /// text so it lands between function entries.
    RetargetCall,
    /// Extend a function symbol's size past the start of the next one.
    OverlapSymbols,
    /// Delete the output symbol of an emitted function.
    DeleteSymbol,
}

impl Mutation {
    /// Every mutation, for exhaustive harness loops.
    pub const ALL: [Mutation; 9] = [
        Mutation::RetargetJcc,
        Mutation::DropCondBranch,
        Mutation::SwapBlocks,
        Mutation::TruncateFunction,
        Mutation::GarbageBytes,
        Mutation::CorruptJumpTable,
        Mutation::RetargetCall,
        Mutation::OverlapSymbols,
        Mutation::DeleteSymbol,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Mutation::RetargetJcc => "retarget-jcc",
            Mutation::DropCondBranch => "drop-cond-branch",
            Mutation::SwapBlocks => "swap-blocks",
            Mutation::TruncateFunction => "truncate-function",
            Mutation::GarbageBytes => "garbage-bytes",
            Mutation::CorruptJumpTable => "corrupt-jump-table",
            Mutation::RetargetCall => "retarget-call",
            Mutation::OverlapSymbols => "overlap-symbols",
            Mutation::DeleteSymbol => "delete-symbol",
        }
    }

    /// The finding kind the verifier is guaranteed to report for this
    /// defect (it may report others on top).
    pub fn expected_kind(self) -> FindingKind {
        match self {
            Mutation::RetargetJcc => FindingKind::CfgMismatch,
            Mutation::DropCondBranch => FindingKind::CfgMismatch,
            Mutation::SwapBlocks => FindingKind::CfgMismatch,
            Mutation::TruncateFunction => FindingKind::FallthroughOutOfFunction,
            Mutation::GarbageBytes => FindingKind::UndecodableBytes,
            Mutation::CorruptJumpTable => FindingKind::DanglingJumpTarget,
            Mutation::RetargetCall => FindingKind::DanglingJumpTarget,
            Mutation::OverlapSymbols => FindingKind::OverlappingCode,
            Mutation::DeleteSymbol => FindingKind::MissingFunction,
        }
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Applies `m` to the first applicable site in `elf`, returning a
/// description of what was corrupted, or `None` when the binary has no
/// applicable site (e.g. no jump tables anywhere).
pub fn apply_mutation(m: Mutation, elf: &mut Elf, ctx: &BinaryContext) -> Option<String> {
    match m {
        Mutation::RetargetJcc => retarget_branch(elf, ctx, BranchKind::Jcc),
        Mutation::DropCondBranch => drop_cond_branch(elf, ctx),
        Mutation::SwapBlocks => swap_blocks(elf, ctx),
        Mutation::TruncateFunction => truncate_function(elf, ctx),
        Mutation::GarbageBytes => garbage_bytes(elf, ctx),
        Mutation::CorruptJumpTable => corrupt_jump_table(elf, ctx),
        Mutation::RetargetCall => retarget_branch(elf, ctx, BranchKind::Call),
        Mutation::OverlapSymbols => overlap_symbols(elf),
        Mutation::DeleteSymbol => delete_symbol(elf, ctx),
    }
}

/// A decoded instruction and its place in the binary.
struct Slot {
    addr: u64,
    inst: Inst,
    len: u8,
}

/// Emitted functions with their hot-fragment symbol ranges.
fn hot_frags<'a>(elf: &Elf, ctx: &'a BinaryContext) -> Vec<(&'a BinaryFunction, u64, u64)> {
    let mut out = Vec::new();
    for f in &ctx.functions {
        if !f.is_simple || f.folded_into.is_some() {
            continue;
        }
        if let Some(s) = elf
            .symbols
            .iter()
            .find(|s| s.kind == SymKind::Func && s.name == f.name && s.size > 0)
        {
            out.push((f, s.value, s.size));
        }
    }
    out.sort_by_key(|&(_, addr, _)| addr);
    out
}

fn decode_range(elf: &Elf, start: u64, size: u64) -> Option<Vec<Slot>> {
    let bytes = elf.read_vaddr(start, size as usize)?;
    let mut slots = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let addr = start + off as u64;
        let d = decode(&bytes[off..], addr).ok()?;
        slots.push(Slot {
            addr,
            inst: d.inst,
            len: d.len,
        });
        off += d.len as usize;
    }
    Some(slots)
}

fn write_bytes(elf: &mut Elf, addr: u64, f: impl FnOnce(&mut [u8])) -> bool {
    for s in &mut elf.sections {
        if s.is_alloc() && addr >= s.addr {
            let off = (addr - s.addr) as usize;
            if off < s.data.len() {
                f(&mut s.data[off..]);
                return true;
            }
        }
    }
    false
}

enum BranchKind {
    Jcc,
    Call,
}

/// Bumps the low displacement byte of the first matching branch, moving
/// its target one byte forward without touching anything else.
fn retarget_branch(elf: &mut Elf, ctx: &BinaryContext, kind: BranchKind) -> Option<String> {
    let site = hot_frags(elf, ctx)
        .into_iter()
        .find_map(|(f, addr, size)| {
            let slots = decode_range(elf, addr, size)?;
            slots.into_iter().find_map(|s| {
                let (matched, disp_len) = match (&kind, &s.inst) {
                    (BranchKind::Jcc, Inst::Jcc { .. }) => (true, if s.len == 2 { 1 } else { 4 }),
                    (
                        BranchKind::Call,
                        Inst::Call {
                            target: Target::Addr(_),
                        },
                    ) => (true, 4),
                    _ => (false, 0),
                };
                if matched {
                    Some((f.name.clone(), s.addr, s.addr + s.len as u64 - disp_len))
                } else {
                    None
                }
            })
        })?;
    let (name, at, disp_addr) = site;
    write_bytes(elf, disp_addr, |b| b[0] = b[0].wrapping_add(1))
        .then(|| format!("bumped branch displacement at {at:#x} in {name}"))
}

/// Rewrites the first short `jcc` (opcode `0x70+cc`) into a short `jmp`
/// (`0xEB`), keeping the displacement: the branch becomes unconditional
/// and the fall-through edge silently disappears.
fn drop_cond_branch(elf: &mut Elf, ctx: &BinaryContext) -> Option<String> {
    let site = hot_frags(elf, ctx)
        .into_iter()
        .find_map(|(f, addr, size)| {
            let slots = decode_range(elf, addr, size)?;
            slots
                .into_iter()
                .find(|s| matches!(s.inst, Inst::Jcc { .. }) && s.len == 2)
                .map(|s| (f.name.clone(), s.addr))
        })?;
    let (name, at) = site;
    write_bytes(elf, at, |b| b[0] = 0xEB)
        .then(|| format!("rewrote short jcc at {at:#x} in {name} into jmp"))
}

/// Swaps the byte ranges of the first two adjacent non-empty blocks with
/// differing bytes, leaving every branch displacement stale.
fn swap_blocks(elf: &mut Elf, ctx: &BinaryContext) -> Option<String> {
    let site = hot_frags(elf, ctx)
        .into_iter()
        .find_map(|(f, addr, size)| {
            let slots = decode_range(elf, addr, size)?;
            // Derive hot block byte spans by walking the layout over the
            // decoded stream, mirroring the emitter's packing.
            let cold = f.cold_start.unwrap_or(f.layout.len());
            let hot = &f.layout[..cold];
            let total: usize = hot.iter().map(|&b| f.block(b).insts.len()).sum();
            if total != slots.len() {
                return None;
            }
            let mut spans: Vec<(u64, u64)> = Vec::new(); // (start, len)
            let mut cursor = 0usize;
            for &b in hot {
                let n = f.block(b).insts.len();
                if n > 0 {
                    let start = slots[cursor].addr;
                    let end = slots[cursor + n - 1].addr + slots[cursor + n - 1].len as u64;
                    spans.push((start, end - start));
                }
                cursor += n;
            }
            spans.windows(2).find_map(|w| {
                let (a_start, a_len) = w[0];
                let (b_start, b_len) = w[1];
                if a_start + a_len != b_start {
                    return None;
                }
                let a = elf.read_vaddr(a_start, a_len as usize)?.to_vec();
                let b = elf.read_vaddr(b_start, b_len as usize)?.to_vec();
                (a != b).then(|| (f.name.clone(), a_start, a_len as usize, b_len as usize))
            })
        })?;
    let (name, start, a_len, b_len) = site;
    write_bytes(elf, start, |bytes| {
        bytes[..a_len + b_len].rotate_left(a_len);
    })
    .then(|| format!("swapped adjacent blocks at {start:#x} in {name}"))
}

/// NOPs out the final terminator of the first hot fragment, so the
/// function runs off its own end.
fn truncate_function(elf: &mut Elf, ctx: &BinaryContext) -> Option<String> {
    let site = hot_frags(elf, ctx)
        .into_iter()
        .find_map(|(f, addr, size)| {
            let slots = decode_range(elf, addr, size)?;
            let last = slots.last()?;
            last.inst
                .is_terminator()
                .then(|| (f.name.clone(), last.addr, last.len as usize))
        })?;
    let (name, at, len) = site;
    write_bytes(elf, at, |b| b[..len].fill(0x90))
        .then(|| format!("replaced terminator at {at:#x} in {name} with NOPs"))
}

/// Stamps an undecodable opcode over a function's first byte.
fn garbage_bytes(elf: &mut Elf, ctx: &BinaryContext) -> Option<String> {
    let (f, addr, _) = hot_frags(elf, ctx).into_iter().next()?;
    let name = f.name.clone();
    // 0x06 is a removed 32-bit-era opcode (`push es`), invalid in long mode.
    write_bytes(elf, addr, |b| b[0] = 0x06)
        .then(|| format!("wrote garbage byte at {addr:#x} in {name}"))
}

/// Adds 1 to the first entry of the first jump table owned by an
/// emitted function.
fn corrupt_jump_table(elf: &mut Elf, ctx: &BinaryContext) -> Option<String> {
    let site = ctx
        .functions
        .iter()
        .filter(|f| f.is_simple && f.folded_into.is_none())
        .flat_map(|f| f.jump_tables.iter().map(move |jt| (f, jt)))
        .find_map(|(f, jt)| {
            let v = elf.read_u64(jt.addr)?;
            (!jt.targets.is_empty()).then(|| (f.name.clone(), jt.addr, v))
        })?;
    let (name, addr, v) = site;
    write_bytes(elf, addr, |b| {
        b[..8].copy_from_slice(&(v + 1).to_le_bytes());
    })
    .then(|| format!("corrupted jump-table entry at {addr:#x} of {name}"))
}

/// Extends the first exec-section function symbol one byte into its
/// neighbor.
fn overlap_symbols(elf: &mut Elf) -> Option<String> {
    let mut funcs: Vec<(u64, u64, usize)> = elf
        .symbols
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.kind == SymKind::Func
                && s.size > 0
                && matches!(s.section, bolt_elf::SymSection::Section(i)
                    if elf.sections.get(i).is_some_and(|sec| sec.is_exec()))
        })
        .map(|(i, s)| (s.value, s.size, i))
        .collect();
    funcs.sort_unstable();
    let pair = funcs.windows(2).next()?;
    let (a_start, _, a_idx) = pair[0];
    let (b_start, _, _) = pair[1];
    let new_size = b_start - a_start + 1;
    let name = elf.symbols[a_idx].name.clone();
    elf.symbols[a_idx].size = new_size;
    Some(format!(
        "extended {name} to overlap its neighbor at {b_start:#x}"
    ))
}

// ---------------------------------------------------------------------------
// Semantic translation mutations.

/// One kind of seeded translation defect: a corruption of an emulator
/// block translation that stays *internally consistent* — the micro-op
/// pool faithfully mirrors the (corrupted) instruction pool, so the
/// structural validator accepts it — but no longer means what the
/// original bytes mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemMutation {
    /// A `mov` lands in the wrong destination register in both pools.
    WrongRegister,
    /// A negative immediate loses its sign extension: the low 32 bits
    /// are kept, zero-extended, in both pools.
    DroppedSignExtend,
    /// A base+index*scale effective address swaps its scale factor in
    /// both pools.
    SwappedEaScale,
    /// A live flag writer is dropped: the instruction becomes a
    /// zero-masked-count shift (architecturally not a flags writer) and
    /// its micro-op a `Nop`, as if the liveness pass had wrongly marked
    /// it dead and the lowering had elided it.
    DeadFlagWriter,
    /// Two adjacent recorded memory shapes swap places — the pools the
    /// structural validator checks are untouched; only the shape list
    /// (which announces D-side event order to the superblock engine)
    /// lies.
    ReorderedMemEffect,
    /// A conditional branch tests the inverted condition in both pools.
    WrongCondCode,
    /// A direct branch target moves 16 bytes forward in both pools.
    WrongBranchTarget,
}

impl SemMutation {
    /// Every semantic mutation, for exhaustive harness loops.
    pub const ALL: [SemMutation; 7] = [
        SemMutation::WrongRegister,
        SemMutation::DroppedSignExtend,
        SemMutation::SwappedEaScale,
        SemMutation::DeadFlagWriter,
        SemMutation::ReorderedMemEffect,
        SemMutation::WrongCondCode,
        SemMutation::WrongBranchTarget,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            SemMutation::WrongRegister => "wrong-register",
            SemMutation::DroppedSignExtend => "dropped-sign-extend",
            SemMutation::SwappedEaScale => "swapped-ea-scale",
            SemMutation::DeadFlagWriter => "dead-flag-writer",
            SemMutation::ReorderedMemEffect => "reordered-mem-effect",
            SemMutation::WrongCondCode => "wrong-cond-code",
            SemMutation::WrongBranchTarget => "wrong-branch-target",
        }
    }

    /// The finding kind the symbolic validator is guaranteed to report
    /// for this defect (it may report others on top).
    pub fn expected_kind(self) -> SemFindingKind {
        match self {
            SemMutation::WrongRegister => SemFindingKind::RegMismatch,
            SemMutation::DroppedSignExtend => SemFindingKind::RegMismatch,
            SemMutation::SwappedEaScale => SemFindingKind::MemEffectMismatch,
            SemMutation::DeadFlagWriter => SemFindingKind::FlagMismatch,
            SemMutation::ReorderedMemEffect => SemFindingKind::EffectOrderMismatch,
            SemMutation::WrongCondCode => SemFindingKind::TerminatorMismatch,
            SemMutation::WrongBranchTarget => SemFindingKind::TerminatorMismatch,
        }
    }
}

impl fmt::Display for SemMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Applies `m` to the first applicable site in a block translation —
/// `insts` and `uops` are the parallel pools, `shapes` the recorded
/// memory shapes — returning a description of the corruption, or `None`
/// when the block has no applicable site. The corruption is always
/// consistent across the pools: `bolt_emu::validate_block` must keep
/// accepting the result.
pub fn apply_sem_mutation(
    m: SemMutation,
    insts: &mut [(Inst, u8)],
    uops: &mut [MicroOp],
    shapes: &mut [MemShape],
) -> Option<String> {
    match m {
        SemMutation::WrongRegister => {
            let i = insts
                .iter()
                .position(|(inst, _)| matches!(inst, Inst::MovRR { .. }))?;
            let Inst::MovRR { dst, .. } = &mut insts[i].0 else {
                unreachable!()
            };
            let wrong = if *dst == Reg::Rax { Reg::Rbx } else { Reg::Rax };
            let desc = format!("inst {i}: mov destination {dst} -> {wrong}");
            *dst = wrong;
            uops[i].a = wrong.num();
            Some(desc)
        }
        SemMutation::DroppedSignExtend => {
            let i = insts.iter().position(|(inst, _)| {
                matches!(inst, Inst::MovRI { imm, .. } if *imm < 0 && *imm >= i32::MIN as i64)
            })?;
            let Inst::MovRI { imm, .. } = &mut insts[i].0 else {
                unreachable!()
            };
            let zext = (*imm as u32) as i64;
            let desc = format!("inst {i}: immediate {imm:#x} zero-extended to {zext:#x}");
            *imm = zext;
            uops[i].imm = zext;
            Some(desc)
        }
        SemMutation::SwappedEaScale => {
            let i = insts.iter().position(|(inst, _)| {
                matches!(
                    inst,
                    Inst::Load {
                        mem: Mem::BaseIndexScale { .. },
                        ..
                    } | Inst::Store {
                        mem: Mem::BaseIndexScale { .. },
                        ..
                    }
                )
            })?;
            let (Inst::Load { mem, .. } | Inst::Store { mem, .. }) = &mut insts[i].0 else {
                unreachable!()
            };
            let Mem::BaseIndexScale { scale, .. } = mem else {
                unreachable!()
            };
            let wrong = if *scale == 8 { 1 } else { 8 };
            let desc = format!("inst {i}: effective-address scale {scale} -> {wrong}");
            *scale = wrong;
            uops[i].d = wrong;
            Some(desc)
        }
        SemMutation::DeadFlagWriter => {
            // The site must be a live (`fl`) shift whose elision the
            // structural liveness re-derivation cannot see through:
            // every earlier flag writer must itself be live, so demand
            // flowing back past the elided site meets no dead mark.
            let i = (0..insts.len()).find(|&i| {
                matches!(insts[i].0, Inst::Shift { amount, .. } if amount & 63 != 0)
                    && uops[i].fl
                    && uops[..i].iter().all(|u| {
                        !matches!(
                            u.kind,
                            UopKind::AddRR
                                | UopKind::AddRI
                                | UopKind::SubRR
                                | UopKind::SubRI
                                | UopKind::AndRR
                                | UopKind::AndRI
                                | UopKind::OrRR
                                | UopKind::OrRI
                                | UopKind::XorRR
                                | UopKind::XorRI
                                | UopKind::CmpRR
                                | UopKind::CmpRI
                                | UopKind::Test
                                | UopKind::Imul
                                | UopKind::Shl
                                | UopKind::Shr
                                | UopKind::Sar
                        ) || u.fl
                    })
            })?;
            let Inst::Shift { amount, .. } = &mut insts[i].0 else {
                unreachable!()
            };
            let desc = format!(
                "inst {i}: live shift (count {amount}) elided as a zero-masked-count shift"
            );
            // `amount & 63 == 0` shifts write neither register nor
            // flags, so the faithful lowering of the corrupted
            // instruction *is* a dead `Nop` — structurally perfect,
            // semantically a dropped live flag write.
            *amount = 64;
            let len = uops[i].len;
            uops[i] = MicroOp {
                kind: UopKind::Nop,
                a: 0,
                b: 0,
                c: 0,
                d: 0,
                len,
                fl: false,
                imm: 0,
            };
            Some(desc)
        }
        SemMutation::ReorderedMemEffect => {
            let i = shapes
                .windows(2)
                .position(|w| (w[0].inst, w[0].write) != (w[1].inst, w[1].write))?;
            let desc = format!(
                "shapes {i}/{}: swapped recorded memory effects of insts {} and {}",
                i + 1,
                shapes[i].inst,
                shapes[i + 1].inst
            );
            shapes.swap(i, i + 1);
            Some(desc)
        }
        SemMutation::WrongCondCode => {
            let i = insts
                .iter()
                .position(|(inst, _)| matches!(inst, Inst::Jcc { .. }))?;
            let Inst::Jcc { cond, .. } = &mut insts[i].0 else {
                unreachable!()
            };
            let wrong = cond.invert();
            let desc = format!(
                "inst {i}: branch condition {} -> {}",
                cond.suffix(),
                wrong.suffix()
            );
            *cond = wrong;
            uops[i].c = wrong.cc();
            Some(desc)
        }
        SemMutation::WrongBranchTarget => {
            let i = insts.iter().position(|(inst, _)| {
                matches!(
                    inst,
                    Inst::Jmp {
                        target: Target::Addr(_),
                        ..
                    } | Inst::Jcc {
                        target: Target::Addr(_),
                        ..
                    }
                )
            })?;
            let (Inst::Jmp { target, .. } | Inst::Jcc { target, .. }) = &mut insts[i].0 else {
                unreachable!()
            };
            let Target::Addr(addr) = target else {
                unreachable!()
            };
            let desc = format!("inst {i}: branch target {addr:#x} -> {:#x}", *addr + 16);
            *addr += 16;
            uops[i].imm = *addr as i64;
            Some(desc)
        }
    }
}

/// Removes the output symbol of the first emitted function.
fn delete_symbol(elf: &mut Elf, ctx: &BinaryContext) -> Option<String> {
    let (f, addr, _) = hot_frags(elf, ctx).into_iter().next()?;
    let name = f.name.clone();
    let pos = elf
        .symbols
        .iter()
        .position(|s| s.kind == SymKind::Func && s.name == name && s.value == addr)?;
    elf.symbols.remove(pos);
    Some(format!("deleted symbol {name}"))
}
