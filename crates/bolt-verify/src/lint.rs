//! The IR lint: per-pass invariant checks over the in-memory CFG.
//!
//! Run between passes (the manager's `-verify`/`-verify-each` hook), it
//! asserts the invariants every Table-1 pass is supposed to preserve:
//! the layout is a permutation of live blocks, terminator targets
//! resolve to laid-out blocks, the dominator tree is consistent with the
//! CFG, and `frame-opts`/`shrink-wrapping` never moved a callee-saved
//! save past a clobber of the saved register (checked with the
//! [`CalleeClobbered`] dataflow problem).

use crate::{Finding, FindingKind};
use bolt_ir::{dominators, solve, BinaryContext, BinaryFunction, BlockId, CalleeClobbered};
use bolt_isa::{Inst, Target};

/// Lints every simple, unfolded function in the context.
pub fn lint_context(ctx: &BinaryContext) -> Vec<Finding> {
    let mut findings = Vec::new();
    for func in &ctx.functions {
        if func.is_simple && func.folded_into.is_none() {
            lint_function(func, &mut findings);
        }
    }
    findings
}

/// Lints one function, appending findings.
pub fn lint_function(func: &BinaryFunction, findings: &mut Vec<Finding>) {
    let push = |findings: &mut Vec<Finding>, kind: FindingKind, detail: String| {
        findings.push(Finding {
            kind,
            function: func.name.clone(),
            addr: func.address,
            detail,
        });
    };

    // Layout sanity first: everything below indexes through it.
    let n = func.blocks.len();
    let mut seen = vec![false; n];
    for &id in &func.layout {
        if id.index() >= n {
            push(
                findings,
                FindingKind::LintLayout,
                format!("layout references out-of-range block {id}"),
            );
            return;
        }
        if seen[id.index()] {
            push(
                findings,
                FindingKind::LintLayout,
                format!("block {id} appears twice in layout"),
            );
            return;
        }
        seen[id.index()] = true;
    }
    if let Some(cold) = func.cold_start {
        if cold == 0 || cold > func.layout.len() {
            push(
                findings,
                FindingKind::LintLayout,
                format!(
                    "cold_start {cold} outside layout of {} blocks",
                    func.layout.len()
                ),
            );
        }
    }

    // The structural validator covers the remaining CFG invariants
    // (terminator/edge agreement, fall-through positioning, …).
    if let Err(e) = func.validate() {
        push(findings, FindingKind::LintCfg, e);
    }

    // Terminator targets must resolve to laid-out blocks.
    for &id in &func.layout {
        if let Some(term) = func.block(id).terminator() {
            if let Some(Target::Label(l)) = term.inst.target() {
                let ok = (l.0 as usize) < n && seen[l.0 as usize];
                if !ok {
                    push(
                        findings,
                        FindingKind::LintCfg,
                        format!("{id} terminator targets unresolved label L{}", l.0),
                    );
                }
            }
        }
    }
    for jt in &func.jump_tables {
        for &t in &jt.targets {
            if t.index() >= n || !seen[t.index()] {
                push(
                    findings,
                    FindingKind::LintCfg,
                    format!("jump table {} targets dead block {t}", jt.name),
                );
            }
        }
    }

    if func.blocks.is_empty() || func.layout.is_empty() {
        return;
    }

    lint_dominators(func, findings);
    lint_saved_regs(func, findings);
}

/// The dominator tree must stay consistent with the CFG: the entry is
/// its own idom, every block reachable along `succs` edges has an idom,
/// and every idom chain terminates at the entry.
fn lint_dominators(func: &BinaryFunction, findings: &mut Vec<Finding>) {
    let push = |findings: &mut Vec<Finding>, detail: String| {
        findings.push(Finding {
            kind: FindingKind::LintDominators,
            function: func.name.clone(),
            addr: func.address,
            detail,
        });
    };

    let idom = dominators(func);
    let entry = func.entry();
    if idom[entry.index()] != Some(entry) {
        push(
            findings,
            format!(
                "entry {entry} is not its own idom ({:?})",
                idom[entry.index()]
            ),
        );
        return;
    }

    // Blocks reachable from the entry along succs edges. Blocks only
    // reachable through landing-pad edges legitimately have no idom
    // (`reverse_post_order` follows succs only), as do dead blocks kept
    // by `uce`-disabled presets.
    let mut reach = vec![false; func.blocks.len()];
    let mut stack = vec![entry];
    reach[entry.index()] = true;
    while let Some(b) = stack.pop() {
        for e in &func.block(b).succs {
            if !reach[e.block.index()] {
                reach[e.block.index()] = true;
                stack.push(e.block);
            }
        }
    }

    for b in (0..func.blocks.len() as u32).map(BlockId) {
        if !reach[b.index()] {
            continue;
        }
        let Some(mut cur) = idom[b.index()] else {
            push(findings, format!("reachable block {b} has no idom"));
            continue;
        };
        // The idom chain must reach the entry within |blocks| steps.
        let mut steps = 0;
        while cur != entry {
            match idom[cur.index()] {
                Some(next) if next != cur => cur = next,
                _ => {
                    push(
                        findings,
                        format!("idom chain of {b} stalls at {cur} before reaching entry"),
                    );
                    break;
                }
            }
            steps += 1;
            if steps > func.blocks.len() {
                push(findings, format!("idom chain of {b} cycles"));
                break;
            }
        }
    }
}

/// `frame-opts`/`shrink-wrapping` must keep callee-saved save/restore
/// pairs bracketing every clobber: at a `push %r` of a callee-saved
/// register, no path from the entry may already have overwritten `r`
/// (the save would spill the clobbered value), and at every return the
/// may-clobbered set must be empty (every overwrite was restored).
fn lint_saved_regs(func: &BinaryFunction, findings: &mut Vec<Finding>) {
    let tracked = CalleeClobbered::tracked();
    let facts = solve(func, &CalleeClobbered);
    for &id in &func.layout {
        let block = func.block(id);
        let mut cur = facts[id.index()].entry;
        for inst in &block.insts {
            match &inst.inst {
                Inst::Push(r) if tracked.contains(*r) && cur.contains(*r) => {
                    findings.push(Finding {
                        kind: FindingKind::LintSavedRegs,
                        function: func.name.clone(),
                        addr: inst.addr,
                        detail: format!("{id}: save of {r} sits after a clobber of {r}"),
                    });
                }
                Inst::Ret | Inst::RepzRet => {
                    let dirty = cur.intersect(tracked);
                    if !dirty.is_empty() {
                        findings.push(Finding {
                            kind: FindingKind::LintSavedRegs,
                            function: func.name.clone(),
                            addr: inst.addr,
                            detail: format!("{id}: returns with clobbered callee-saved {dirty}"),
                        });
                    }
                }
                _ => {}
            }
            let (gen, kill) = bolt_ir::DataflowProblem::transfer(&CalleeClobbered, inst);
            cur = gen.union(cur.minus(kill));
        }
    }
}
