//! # bolt-verify — static correctness tooling for rewritten binaries
//!
//! BOLT's safety story rests on the claim that layout passes reorder but
//! never change program behavior. The rest of the workspace checks that
//! *dynamically* (engine/thread/shard invariance sweeps); this crate
//! checks it *statically*, on every rewritten ELF, with two independent
//! analyzers:
//!
//! - [`verify_rewrite`] re-disassembles the rewritten binary using only
//!   `bolt-isa` decoding — no emitter state, no encoder — reconstructs a
//!   CFG per emitted function, and checks it against the optimized IR
//!   modulo the legal transforms (branch relaxation, moved entry
//!   addresses of folded functions). Structural properties — branch
//!   targets land on instruction boundaries, no fall-through out of a
//!   function, no overlapping code, no unexpectedly unreachable bytes,
//!   jump tables point at real blocks — are checked from the bytes alone.
//! - [`lint_context`] checks the in-memory IR between passes: layout is a
//!   permutation of live blocks, terminator targets resolve, the
//!   dominator tree is consistent, and `frame-opts`/`shrink-wrapping`
//!   never moved a callee-saved save past a clobber (via
//!   `bolt-ir::dataflow`).
//!
//! Everything is reported as a structured [`Finding`]; a clean rewrite
//! yields zero findings. The [`mutate`] module seeds deliberately broken
//! rewrites (retargeted branches, swapped blocks, truncated functions,
//! corrupted jump tables, …) so tests can prove the verifier actually
//! catches each defect class instead of merely accepting good binaries.
//! The [`inject`] module is the dual for *inputs*: seeded deterministic
//! corruption plans ([`FaultPlan`]) over raw ELF bytes, loaded images,
//! profile text, and the pass pipeline, driving the fault-injection
//! harness that proves the whole stack degrades gracefully instead of
//! panicking.

pub mod inject;
pub mod lint;
pub mod mutate;
pub mod rewrite;
pub mod transval;

pub use inject::{
    ArtifactMutation, CrashMode, CrashRule, CrashSpec, FaultKind, FaultPlan, FaultSurface,
    XorShift64,
};
pub use lint::{lint_context, lint_function};
pub use mutate::{apply_mutation, apply_sem_mutation, Mutation, SemMutation};
pub use rewrite::{edge_sets, verify_rewrite};
pub use transval::verify_semantics;

use std::fmt;
use std::time::Duration;

/// The defect classes the verifier reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// Bytes inside a function's symbol range did not decode.
    UndecodableBytes,
    /// A branch, call, or jump-table entry points at something that is
    /// not an instruction boundary / function entry.
    DanglingJumpTarget,
    /// The last instruction of a function fragment can fall through —
    /// into inter-function padding or the next function.
    FallthroughOutOfFunction,
    /// Two function symbols claim overlapping byte ranges.
    OverlappingCode,
    /// Decoded, non-NOP instructions that no path from the entry (or a
    /// landing pad, or a jump table) reaches — and that the IR does not
    /// also consider dead.
    UnreachableBytes,
    /// The re-disassembled CFG disagrees with the optimized IR:
    /// instruction mismatch, wrong branch target, edge-set difference.
    CfgMismatch,
    /// A function the IR says was emitted has no symbol in the output.
    MissingFunction,
    /// IR lint: layout is not a permutation of live blocks / references
    /// out-of-range blocks.
    LintLayout,
    /// IR lint: structural CFG invariant broken (unresolved terminator
    /// target, edge/terminator disagreement, …).
    LintCfg,
    /// IR lint: dominator tree inconsistent with the CFG.
    LintDominators,
    /// IR lint: a callee-saved register save/restore no longer brackets
    /// the clobbers (`frame-opts`/`shrink-wrapping` moved a save past a
    /// use).
    LintSavedRegs,
    /// Symbolic translation validation: an execution tier's translation
    /// of some block is not semantically equivalent to the step
    /// semantics of its bytes (see `bolt-emu`'s `transval` module for
    /// the per-observable breakdown carried in the detail).
    SemanticMismatch,
}

impl FindingKind {
    /// Stable report name.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::UndecodableBytes => "undecodable-bytes",
            FindingKind::DanglingJumpTarget => "dangling-jump-target",
            FindingKind::FallthroughOutOfFunction => "fallthrough-out-of-function",
            FindingKind::OverlappingCode => "overlapping-code",
            FindingKind::UnreachableBytes => "unreachable-bytes",
            FindingKind::CfgMismatch => "cfg-mismatch",
            FindingKind::MissingFunction => "missing-function",
            FindingKind::LintLayout => "lint-layout",
            FindingKind::LintCfg => "lint-cfg",
            FindingKind::LintDominators => "lint-dominators",
            FindingKind::LintSavedRegs => "lint-saved-regs",
            FindingKind::SemanticMismatch => "semantic-mismatch",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verifier finding: a defect class, where it was seen, and a
/// human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub kind: FindingKind,
    /// The function the finding is attributed to (empty for whole-binary
    /// findings such as symbol overlaps).
    pub function: String,
    /// The virtual address the finding anchors to (0 for IR-only lints
    /// on functions whose blocks carry no addresses).
    pub addr: u64,
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if !self.function.is_empty() {
            write!(f, " {}", self.function)?;
        }
        if self.addr != 0 {
            write!(f, " @ {:#x}", self.addr)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The result of one verification sweep.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    pub findings: Vec<Finding>,
    /// How many emitted functions the sweep examined.
    pub functions_checked: usize,
    /// Wall-clock time the sweep took.
    pub duration: Duration,
}

impl VerifyReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders every finding, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{f}\n"));
        }
        out
    }
}
