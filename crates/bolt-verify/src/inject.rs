//! Seeded deterministic fault injection.
//!
//! A [`FaultPlan`] is one reproducible corruption — of the input ELF's
//! raw bytes, of its loaded image, of the serialized profile text, or of
//! the pass pipeline itself — identified by a [`FaultKind`] and a seed.
//! Everything derives from an xorshift stream of the seed: no
//! wall-clock, no global RNG, so a failing plan replays exactly from
//! `(kind, seed)`.
//!
//! The harness contract for every plan, at every seed:
//! - no panic escapes any layer (parser, driver, passes, emitter);
//! - if the corrupted input still parses, the pipeline degrades
//!   per-function (quarantine) instead of failing the run;
//! - quarantined functions keep their original bytes verbatim.

use bolt_elf::Elf;

/// A deterministic xorshift64 stream — the only randomness source in
/// fault injection.
#[derive(Debug, Clone)]
pub struct XorShift64(u64);

impl XorShift64 {
    pub fn new(seed: u64) -> XorShift64 {
        // Zero is xorshift's fixed point; displace it.
        XorShift64(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish index into `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Which layer a corruption targets — and therefore which harness
/// contract applies to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSurface {
    /// Raw ELF file bytes: the reader must return an error or a valid
    /// image, never panic.
    ElfBytes,
    /// The loaded ELF image (text bytes): the driver must quarantine
    /// affected functions and keep going.
    Image,
    /// Serialized profile text: the parser must error or produce a
    /// usable profile, never panic; the pipeline must accept either.
    Profile,
    /// The pass pipeline: a kernel panic must be contained to one
    /// function by the quarantine ladder.
    Pipeline,
}

/// Every corruption kind the harness injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Truncate the ELF file at a seeded offset.
    TruncateElf,
    /// Flip one bit inside the 64-byte ELF header.
    BitflipElfHeader,
    /// Flip one bit inside the section-header table.
    BitflipSectionTable,
    /// Flip bits in the file's tail (string/symbol tables live there).
    BitflipSymbolTable,
    /// Overwrite a run of executable-section bytes with garbage.
    GarbageTextBytes,
    /// Flip one bit inside an executable section.
    BitflipTextBytes,
    /// Truncate the fdata profile text at a seeded offset.
    TruncateProfile,
    /// Mangle the tokens of one seeded profile line.
    CorruptProfileFragment,
    /// Register a pass whose kernel panics on the Nth simple function.
    PoisonPass,
}

impl FaultKind {
    /// All kinds, in a stable order (the CI sweep iterates this).
    pub fn all() -> [FaultKind; 9] {
        [
            FaultKind::TruncateElf,
            FaultKind::BitflipElfHeader,
            FaultKind::BitflipSectionTable,
            FaultKind::BitflipSymbolTable,
            FaultKind::GarbageTextBytes,
            FaultKind::BitflipTextBytes,
            FaultKind::TruncateProfile,
            FaultKind::CorruptProfileFragment,
            FaultKind::PoisonPass,
        ]
    }

    pub fn surface(self) -> FaultSurface {
        match self {
            FaultKind::TruncateElf
            | FaultKind::BitflipElfHeader
            | FaultKind::BitflipSectionTable
            | FaultKind::BitflipSymbolTable => FaultSurface::ElfBytes,
            FaultKind::GarbageTextBytes | FaultKind::BitflipTextBytes => FaultSurface::Image,
            FaultKind::TruncateProfile | FaultKind::CorruptProfileFragment => FaultSurface::Profile,
            FaultKind::PoisonPass => FaultSurface::Pipeline,
        }
    }

    /// Stable report name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::TruncateElf => "truncate-elf",
            FaultKind::BitflipElfHeader => "bitflip-elf-header",
            FaultKind::BitflipSectionTable => "bitflip-section-table",
            FaultKind::BitflipSymbolTable => "bitflip-symbol-table",
            FaultKind::GarbageTextBytes => "garbage-text-bytes",
            FaultKind::BitflipTextBytes => "bitflip-text-bytes",
            FaultKind::TruncateProfile => "truncate-profile",
            FaultKind::CorruptProfileFragment => "corrupt-profile-fragment",
            FaultKind::PoisonPass => "poison-pass",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reproducible corruption: a kind plus the seed its parameters
/// derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    pub kind: FaultKind,
    pub seed: u64,
}

impl FaultPlan {
    pub fn new(kind: FaultKind, seed: u64) -> FaultPlan {
        FaultPlan { kind, seed }
    }

    /// One plan of every kind at `seed` (the CI sweep's unit of work).
    pub fn sweep(seed: u64) -> Vec<FaultPlan> {
        FaultKind::all()
            .into_iter()
            .map(|kind| FaultPlan { kind, seed })
            .collect()
    }

    fn rng(&self) -> XorShift64 {
        // Mix the kind in so sibling plans at one seed diverge.
        XorShift64::new(
            self.seed
                .wrapping_mul(31)
                .wrapping_add(self.kind as u64 + 1),
        )
    }

    /// Applies a raw-byte corruption ([`FaultSurface::ElfBytes`]).
    /// Returns `false` when this plan does not target raw bytes or the
    /// buffer is too small to corrupt.
    pub fn apply_elf_bytes(&self, bytes: &mut Vec<u8>) -> bool {
        let mut rng = self.rng();
        match self.kind {
            FaultKind::TruncateElf => {
                if bytes.is_empty() {
                    return false;
                }
                let keep = rng.below(bytes.len());
                bytes.truncate(keep);
                true
            }
            FaultKind::BitflipElfHeader => {
                if bytes.is_empty() {
                    return false;
                }
                let span = bytes.len().min(64);
                let at = rng.below(span);
                bytes[at] ^= 1 << rng.below(8);
                true
            }
            FaultKind::BitflipSectionTable => {
                // e_shoff lives at offset 40; fall back to the header
                // when the file is too short to carry it.
                if bytes.len() < 48 {
                    return self.fallback_flip(bytes);
                }
                let shoff = u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes")) as usize;
                if shoff >= bytes.len() {
                    return self.fallback_flip(bytes);
                }
                let region = bytes.len() - shoff;
                let at = shoff + rng.below(region);
                bytes[at] ^= 1 << rng.below(8);
                true
            }
            FaultKind::BitflipSymbolTable => {
                // String and symbol tables sit in the file's tail; flip
                // a few bits there.
                if bytes.is_empty() {
                    return false;
                }
                let start = bytes.len() - bytes.len() / 4 - 1;
                for _ in 0..3 {
                    let at = start + rng.below(bytes.len() - start);
                    bytes[at] ^= 1 << rng.below(8);
                }
                true
            }
            _ => false,
        }
    }

    fn fallback_flip(&self, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() {
            return false;
        }
        let mut rng = self.rng();
        let at = rng.below(bytes.len());
        bytes[at] ^= 1 << rng.below(8);
        true
    }

    /// Applies a loaded-image corruption ([`FaultSurface::Image`]).
    /// Returns `false` when this plan does not target the image or the
    /// image has no executable bytes.
    pub fn apply_image(&self, elf: &mut Elf) -> bool {
        let mut rng = self.rng();
        let exec: Vec<usize> = (0..elf.sections.len())
            .filter(|&i| elf.sections[i].is_exec() && !elf.sections[i].data.is_empty())
            .collect();
        if exec.is_empty() {
            return false;
        }
        let sec = &mut elf.sections[exec[rng.below(exec.len())]];
        match self.kind {
            FaultKind::GarbageTextBytes => {
                let at = rng.below(sec.data.len());
                let run = (rng.below(16) + 1).min(sec.data.len() - at);
                for b in &mut sec.data[at..at + run] {
                    *b = rng.next_u64() as u8;
                }
                true
            }
            FaultKind::BitflipTextBytes => {
                let at = rng.below(sec.data.len());
                sec.data[at] ^= 1 << rng.below(8);
                true
            }
            _ => false,
        }
    }

    /// Applies a profile-text corruption ([`FaultSurface::Profile`]).
    /// Returns `false` when this plan does not target the profile or
    /// the text is empty.
    pub fn apply_profile(&self, text: &mut String) -> bool {
        let mut rng = self.rng();
        match self.kind {
            FaultKind::TruncateProfile => {
                if text.is_empty() {
                    return false;
                }
                let keep = rng.below(text.len());
                text.truncate(keep); // fdata text is ASCII
                true
            }
            FaultKind::CorruptProfileFragment => {
                let lines: Vec<&str> = text.lines().collect();
                if lines.is_empty() {
                    return false;
                }
                let victim = rng.below(lines.len());
                let mut out = String::with_capacity(text.len());
                for (i, line) in lines.iter().enumerate() {
                    if i == victim {
                        // Mangle a seeded token into non-hex garbage.
                        let toks: Vec<&str> = line.split_whitespace().collect();
                        if toks.is_empty() {
                            out.push_str("zz zz");
                        } else {
                            let bad = rng.below(toks.len());
                            for (k, t) in toks.iter().enumerate() {
                                if k > 0 {
                                    out.push(' ');
                                }
                                out.push_str(if k == bad { "zzzz" } else { t });
                            }
                        }
                    } else {
                        out.push_str(line);
                    }
                    out.push('\n');
                }
                *text = out;
                true
            }
            _ => false,
        }
    }

    /// For [`FaultKind::PoisonPass`]: which simple function (0-based)
    /// the poisoned kernel should panic on.
    pub fn poison_nth(&self) -> Option<usize> {
        (self.kind == FaultKind::PoisonPass).then(|| self.rng().below(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        for plan in FaultPlan::sweep(42) {
            let mut a = vec![7u8; 256];
            let mut b = vec![7u8; 256];
            let ra = plan.apply_elf_bytes(&mut a);
            let rb = plan.apply_elf_bytes(&mut b);
            assert_eq!((ra, &a), (rb, &b), "{plan:?}");
            let mut s1 = String::from("1 a 2 b 10\n1 c 2 d 20\n");
            let mut s2 = s1.clone();
            assert_eq!(
                (plan.apply_profile(&mut s1), &s1),
                (plan.apply_profile(&mut s2), &s2),
                "{plan:?}"
            );
            assert_eq!(plan.poison_nth(), plan.poison_nth(), "{plan:?}");
        }
    }

    #[test]
    fn sweep_covers_every_kind_once() {
        let plans = FaultPlan::sweep(7);
        assert_eq!(plans.len(), FaultKind::all().len());
        assert!(plans.len() >= 8, "the harness contract wants >= 8 kinds");
        for (plan, kind) in plans.iter().zip(FaultKind::all()) {
            assert_eq!(plan.kind, kind);
        }
    }

    #[test]
    fn every_surface_is_exercised() {
        use FaultSurface::*;
        let surfaces: Vec<FaultSurface> =
            FaultKind::all().into_iter().map(|k| k.surface()).collect();
        for s in [ElfBytes, Image, Profile, Pipeline] {
            assert!(surfaces.contains(&s), "{s:?} missing");
        }
    }

    #[test]
    fn corruptions_actually_corrupt() {
        // Each byte-level plan must change its target, not no-op.
        let pristine = vec![0xABu8; 512];
        for plan in FaultPlan::sweep(3) {
            if plan.kind.surface() == FaultSurface::ElfBytes {
                let mut bytes = pristine.clone();
                assert!(plan.apply_elf_bytes(&mut bytes), "{plan:?} applies");
                assert_ne!(bytes, pristine, "{plan:?} changed the buffer");
            }
        }
        let pristine = "0 aa 1 bb 10\n0 cc 1 dd 20\n".to_string();
        for plan in FaultPlan::sweep(3) {
            if plan.kind.surface() == FaultSurface::Profile {
                let mut text = pristine.clone();
                assert!(plan.apply_profile(&mut text), "{plan:?} applies");
                assert_ne!(text, pristine, "{plan:?} changed the text");
            }
        }
    }
}
