//! Seeded deterministic fault injection.
//!
//! A [`FaultPlan`] is one reproducible corruption — of the input ELF's
//! raw bytes, of its loaded image, of the serialized profile text, or of
//! the pass pipeline itself — identified by a [`FaultKind`] and a seed.
//! Everything derives from an xorshift stream of the seed: no
//! wall-clock, no global RNG, so a failing plan replays exactly from
//! `(kind, seed)`.
//!
//! The harness contract for every plan, at every seed:
//! - no panic escapes any layer (parser, driver, passes, emitter);
//! - if the corrupted input still parses, the pipeline degrades
//!   per-function (quarantine) instead of failing the run;
//! - quarantined functions keep their original bytes verbatim.

use bolt_elf::Elf;

/// A deterministic xorshift64 stream — the only randomness source in
/// fault injection.
#[derive(Debug, Clone)]
pub struct XorShift64(u64);

impl XorShift64 {
    pub fn new(seed: u64) -> XorShift64 {
        // Zero is xorshift's fixed point; displace it.
        XorShift64(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish index into `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Which layer a corruption targets — and therefore which harness
/// contract applies to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSurface {
    /// Raw ELF file bytes: the reader must return an error or a valid
    /// image, never panic.
    ElfBytes,
    /// The loaded ELF image (text bytes): the driver must quarantine
    /// affected functions and keep going.
    Image,
    /// Serialized profile text: the parser must error or produce a
    /// usable profile, never panic; the pipeline must accept either.
    Profile,
    /// The pass pipeline: a kernel panic must be contained to one
    /// function by the quarantine ladder.
    Pipeline,
}

/// Every corruption kind the harness injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Truncate the ELF file at a seeded offset.
    TruncateElf,
    /// Flip one bit inside the 64-byte ELF header.
    BitflipElfHeader,
    /// Flip one bit inside the section-header table.
    BitflipSectionTable,
    /// Flip bits in the file's tail (string/symbol tables live there).
    BitflipSymbolTable,
    /// Overwrite a run of executable-section bytes with garbage.
    GarbageTextBytes,
    /// Flip one bit inside an executable section.
    BitflipTextBytes,
    /// Truncate the fdata profile text at a seeded offset.
    TruncateProfile,
    /// Mangle the tokens of one seeded profile line.
    CorruptProfileFragment,
    /// Register a pass whose kernel panics on the Nth simple function.
    PoisonPass,
}

impl FaultKind {
    /// All kinds, in a stable order (the CI sweep iterates this).
    pub fn all() -> [FaultKind; 9] {
        [
            FaultKind::TruncateElf,
            FaultKind::BitflipElfHeader,
            FaultKind::BitflipSectionTable,
            FaultKind::BitflipSymbolTable,
            FaultKind::GarbageTextBytes,
            FaultKind::BitflipTextBytes,
            FaultKind::TruncateProfile,
            FaultKind::CorruptProfileFragment,
            FaultKind::PoisonPass,
        ]
    }

    pub fn surface(self) -> FaultSurface {
        match self {
            FaultKind::TruncateElf
            | FaultKind::BitflipElfHeader
            | FaultKind::BitflipSectionTable
            | FaultKind::BitflipSymbolTable => FaultSurface::ElfBytes,
            FaultKind::GarbageTextBytes | FaultKind::BitflipTextBytes => FaultSurface::Image,
            FaultKind::TruncateProfile | FaultKind::CorruptProfileFragment => FaultSurface::Profile,
            FaultKind::PoisonPass => FaultSurface::Pipeline,
        }
    }

    /// Stable report name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::TruncateElf => "truncate-elf",
            FaultKind::BitflipElfHeader => "bitflip-elf-header",
            FaultKind::BitflipSectionTable => "bitflip-section-table",
            FaultKind::BitflipSymbolTable => "bitflip-symbol-table",
            FaultKind::GarbageTextBytes => "garbage-text-bytes",
            FaultKind::BitflipTextBytes => "bitflip-text-bytes",
            FaultKind::TruncateProfile => "truncate-profile",
            FaultKind::CorruptProfileFragment => "corrupt-profile-fragment",
            FaultKind::PoisonPass => "poison-pass",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reproducible corruption: a kind plus the seed its parameters
/// derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    pub kind: FaultKind,
    pub seed: u64,
}

impl FaultPlan {
    pub fn new(kind: FaultKind, seed: u64) -> FaultPlan {
        FaultPlan { kind, seed }
    }

    /// One plan of every kind at `seed` (the CI sweep's unit of work).
    pub fn sweep(seed: u64) -> Vec<FaultPlan> {
        FaultKind::all()
            .into_iter()
            .map(|kind| FaultPlan { kind, seed })
            .collect()
    }

    fn rng(&self) -> XorShift64 {
        // Mix the kind in so sibling plans at one seed diverge.
        XorShift64::new(
            self.seed
                .wrapping_mul(31)
                .wrapping_add(self.kind as u64 + 1),
        )
    }

    /// Applies a raw-byte corruption ([`FaultSurface::ElfBytes`]).
    /// Returns `false` when this plan does not target raw bytes or the
    /// buffer is too small to corrupt.
    pub fn apply_elf_bytes(&self, bytes: &mut Vec<u8>) -> bool {
        let mut rng = self.rng();
        match self.kind {
            FaultKind::TruncateElf => {
                if bytes.is_empty() {
                    return false;
                }
                let keep = rng.below(bytes.len());
                bytes.truncate(keep);
                true
            }
            FaultKind::BitflipElfHeader => {
                if bytes.is_empty() {
                    return false;
                }
                let span = bytes.len().min(64);
                let at = rng.below(span);
                bytes[at] ^= 1 << rng.below(8);
                true
            }
            FaultKind::BitflipSectionTable => {
                // e_shoff lives at offset 40; fall back to the header
                // when the file is too short to carry it.
                if bytes.len() < 48 {
                    return self.fallback_flip(bytes);
                }
                let shoff = u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes")) as usize;
                if shoff >= bytes.len() {
                    return self.fallback_flip(bytes);
                }
                let region = bytes.len() - shoff;
                let at = shoff + rng.below(region);
                bytes[at] ^= 1 << rng.below(8);
                true
            }
            FaultKind::BitflipSymbolTable => {
                // String and symbol tables sit in the file's tail; flip
                // a few bits there.
                if bytes.is_empty() {
                    return false;
                }
                let start = bytes.len() - bytes.len() / 4 - 1;
                for _ in 0..3 {
                    let at = start + rng.below(bytes.len() - start);
                    bytes[at] ^= 1 << rng.below(8);
                }
                true
            }
            _ => false,
        }
    }

    fn fallback_flip(&self, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() {
            return false;
        }
        let mut rng = self.rng();
        let at = rng.below(bytes.len());
        bytes[at] ^= 1 << rng.below(8);
        true
    }

    /// Applies a loaded-image corruption ([`FaultSurface::Image`]).
    /// Returns `false` when this plan does not target the image or the
    /// image has no executable bytes.
    pub fn apply_image(&self, elf: &mut Elf) -> bool {
        let mut rng = self.rng();
        let exec: Vec<usize> = (0..elf.sections.len())
            .filter(|&i| elf.sections[i].is_exec() && !elf.sections[i].data.is_empty())
            .collect();
        if exec.is_empty() {
            return false;
        }
        let sec = &mut elf.sections[exec[rng.below(exec.len())]];
        match self.kind {
            FaultKind::GarbageTextBytes => {
                let at = rng.below(sec.data.len());
                let run = (rng.below(16) + 1).min(sec.data.len() - at);
                for b in &mut sec.data[at..at + run] {
                    *b = rng.next_u64() as u8;
                }
                true
            }
            FaultKind::BitflipTextBytes => {
                let at = rng.below(sec.data.len());
                sec.data[at] ^= 1 << rng.below(8);
                true
            }
            _ => false,
        }
    }

    /// Applies a profile-text corruption ([`FaultSurface::Profile`]).
    /// Returns `false` when this plan does not target the profile or
    /// the text is empty.
    pub fn apply_profile(&self, text: &mut String) -> bool {
        let mut rng = self.rng();
        match self.kind {
            FaultKind::TruncateProfile => {
                if text.is_empty() {
                    return false;
                }
                let keep = rng.below(text.len());
                text.truncate(keep); // fdata text is ASCII
                true
            }
            FaultKind::CorruptProfileFragment => {
                let lines: Vec<&str> = text.lines().collect();
                if lines.is_empty() {
                    return false;
                }
                let victim = rng.below(lines.len());
                let mut out = String::with_capacity(text.len());
                for (i, line) in lines.iter().enumerate() {
                    if i == victim {
                        // Mangle a seeded token into non-hex garbage.
                        let toks: Vec<&str> = line.split_whitespace().collect();
                        if toks.is_empty() {
                            out.push_str("zz zz");
                        } else {
                            let bad = rng.below(toks.len());
                            for (k, t) in toks.iter().enumerate() {
                                if k > 0 {
                                    out.push(' ');
                                }
                                out.push_str(if k == bad { "zzzz" } else { t });
                            }
                        }
                    } else {
                        out.push_str(line);
                    }
                    out.push('\n');
                }
                *text = out;
                true
            }
            _ => false,
        }
    }

    /// For [`FaultKind::PoisonPass`]: which simple function (0-based)
    /// the poisoned kernel should panic on.
    pub fn poison_nth(&self) -> Option<usize> {
        (self.kind == FaultKind::PoisonPass).then(|| self.rng().below(8))
    }
}

/// How an injected supervised-worker fault manifests — the process-level
/// analogue of [`FaultKind`]. The first three fail *without* producing
/// output (the supervisor sees the process die); the last three exit
/// cleanly but leave a bad artifact behind, which only the reducer's
/// artifact validation can catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// `abort(2)` mid-run: SIGABRT, no artifact.
    Abort,
    /// Exit with a nonzero status without writing an artifact.
    ExitNoArtifact,
    /// Never exit; the supervisor must kill at the deadline.
    Hang,
    /// Exit 0 after writing seeded junk bytes in place of the artifact.
    GarbageArtifact,
    /// Exit 0 after writing only a prefix of the real artifact
    /// (a simulated torn write that bypassed the atomic-rename path).
    TruncatedArtifact,
    /// Exit 0 after flipping one payload byte of the real artifact.
    CorruptArtifact,
}

impl CrashMode {
    /// All modes, in a stable order (the injection sweep iterates this).
    pub fn all() -> [CrashMode; 6] {
        [
            CrashMode::Abort,
            CrashMode::ExitNoArtifact,
            CrashMode::Hang,
            CrashMode::GarbageArtifact,
            CrashMode::TruncatedArtifact,
            CrashMode::CorruptArtifact,
        ]
    }

    /// Whether the worker exits 0 and the fault is only visible in the
    /// artifact bytes.
    pub fn clean_exit_bad_artifact(self) -> bool {
        matches!(
            self,
            CrashMode::GarbageArtifact | CrashMode::TruncatedArtifact | CrashMode::CorruptArtifact
        )
    }

    pub fn as_str(self) -> &'static str {
        match self {
            CrashMode::Abort => "crash",
            CrashMode::ExitNoArtifact => "exit",
            CrashMode::Hang => "hang",
            CrashMode::GarbageArtifact => "garbage",
            CrashMode::TruncatedArtifact => "truncate",
            CrashMode::CorruptArtifact => "corrupt",
        }
    }

    fn parse(s: &str) -> Option<CrashMode> {
        CrashMode::all().into_iter().find(|m| m.as_str() == s)
    }
}

impl std::fmt::Display for CrashMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule of a [`CrashSpec`]: inject `mode` when the worker's shard
/// and attempt match (`None` = wildcard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRule {
    pub shard: Option<u32>,
    pub attempt: Option<u32>,
    pub mode: CrashMode,
}

/// A worker-side crash-injection spec, parsed from the `BOLT_CRASH_AT`
/// environment variable: comma-separated `shard:attempt:mode` rules
/// where `shard`/`attempt` may be `*`. The first matching rule wins.
///
/// ```text
/// BOLT_CRASH_AT="2:0:crash"          # shard 2 aborts on its first attempt
/// BOLT_CRASH_AT="*:0:hang"           # every shard hangs once
/// BOLT_CRASH_AT="1:*:truncate,3:0:exit"
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSpec {
    pub rules: Vec<CrashRule>,
}

impl CrashSpec {
    /// Parses a spec string. Garbled specs are an `Err` with the bad
    /// fragment — a fault injector that silently no-ops on a typo would
    /// make the whole sweep vacuous.
    pub fn parse(spec: &str) -> Result<CrashSpec, String> {
        let mut rules = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let fields: Vec<&str> = part.trim().split(':').collect();
            let [shard, attempt, mode] = fields[..] else {
                return Err(format!("bad crash rule {part:?} (want shard:attempt:mode)"));
            };
            let parse_sel = |s: &str| -> Result<Option<u32>, String> {
                if s == "*" {
                    Ok(None)
                } else {
                    s.parse()
                        .map(Some)
                        .map_err(|_| format!("bad selector {s:?} in {part:?}"))
                }
            };
            rules.push(CrashRule {
                shard: parse_sel(shard)?,
                attempt: parse_sel(attempt)?,
                mode: CrashMode::parse(mode)
                    .ok_or_else(|| format!("bad crash mode {mode:?} in {part:?}"))?,
            });
        }
        Ok(CrashSpec { rules })
    }

    /// Reads `BOLT_CRASH_AT`. Absent/empty = no injection; garbled =
    /// panic (same contract as the other `BOLT_*` knobs: a typo must
    /// not silently disable the sweep).
    pub fn from_env() -> CrashSpec {
        match std::env::var("BOLT_CRASH_AT") {
            Ok(s) if !s.trim().is_empty() => {
                CrashSpec::parse(&s).unwrap_or_else(|e| panic!("BOLT_CRASH_AT: {e}"))
            }
            _ => CrashSpec::default(),
        }
    }

    /// The mode to inject for this worker invocation, if any rule
    /// matches.
    pub fn action_for(&self, shard: u32, attempt: u32) -> Option<CrashMode> {
        self.rules
            .iter()
            .find(|r| r.shard.is_none_or(|s| s == shard) && r.attempt.is_none_or(|a| a == attempt))
            .map(|r| r.mode)
    }
}

/// A seeded corruption of framed artifact bytes — the corruption-sweep
/// counterpart of [`FaultKind`] for the durable artifact format. Every
/// mutation must be *detected* by artifact validation; the sweep in
/// `tests/artifact_prop.rs` asserts exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactMutation {
    /// Flip one seeded bit anywhere in the payload.
    FlipPayloadBit,
    /// Flip one seeded bit of the stored CRC.
    FlipCrc,
    /// Overwrite the magic with seeded junk.
    BadMagic,
    /// Bump the format version.
    BadVersion,
    /// Drop a seeded number of trailing bytes.
    TruncateTail,
    /// Append a seeded number of junk bytes.
    ExtendTail,
}

impl ArtifactMutation {
    pub fn all() -> [ArtifactMutation; 6] {
        [
            ArtifactMutation::FlipPayloadBit,
            ArtifactMutation::FlipCrc,
            ArtifactMutation::BadMagic,
            ArtifactMutation::BadVersion,
            ArtifactMutation::TruncateTail,
            ArtifactMutation::ExtendTail,
        ]
    }

    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactMutation::FlipPayloadBit => "flip-payload-bit",
            ArtifactMutation::FlipCrc => "flip-crc",
            ArtifactMutation::BadMagic => "bad-magic",
            ArtifactMutation::BadVersion => "bad-version",
            ArtifactMutation::TruncateTail => "truncate-tail",
            ArtifactMutation::ExtendTail => "extend-tail",
        }
    }

    /// Mutates framed artifact bytes in place (layout per
    /// `bolt_emu::artifact`: 4 magic, 2 version, 2 kind, 8 len, 4 CRC,
    /// then payload). Returns `false` when the buffer is too small for
    /// this mutation to apply.
    pub fn apply(self, bytes: &mut Vec<u8>, seed: u64) -> bool {
        const HEADER_LEN: usize = 20;
        let mut rng = XorShift64::new(seed.wrapping_mul(257).wrapping_add(self as u64 + 1));
        match self {
            ArtifactMutation::FlipPayloadBit => {
                if bytes.len() <= HEADER_LEN {
                    return false;
                }
                let at = HEADER_LEN + rng.below(bytes.len() - HEADER_LEN);
                bytes[at] ^= 1 << rng.below(8);
                true
            }
            ArtifactMutation::FlipCrc => {
                if bytes.len() < HEADER_LEN {
                    return false;
                }
                bytes[16 + rng.below(4)] ^= 1 << rng.below(8);
                true
            }
            ArtifactMutation::BadMagic => {
                if bytes.len() < 4 {
                    return false;
                }
                let at = rng.below(4);
                bytes[at] = bytes[at].wrapping_add((rng.below(255) + 1) as u8);
                true
            }
            ArtifactMutation::BadVersion => {
                if bytes.len() < 6 {
                    return false;
                }
                bytes[4] = bytes[4].wrapping_add(1);
                true
            }
            ArtifactMutation::TruncateTail => {
                if bytes.is_empty() {
                    return false;
                }
                let drop = rng.below(bytes.len()) + 1;
                bytes.truncate(bytes.len() - drop);
                true
            }
            ArtifactMutation::ExtendTail => {
                for _ in 0..rng.below(16) + 1 {
                    bytes.push(rng.next_u64() as u8);
                }
                true
            }
        }
    }
}

impl std::fmt::Display for ArtifactMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        for plan in FaultPlan::sweep(42) {
            let mut a = vec![7u8; 256];
            let mut b = vec![7u8; 256];
            let ra = plan.apply_elf_bytes(&mut a);
            let rb = plan.apply_elf_bytes(&mut b);
            assert_eq!((ra, &a), (rb, &b), "{plan:?}");
            let mut s1 = String::from("1 a 2 b 10\n1 c 2 d 20\n");
            let mut s2 = s1.clone();
            assert_eq!(
                (plan.apply_profile(&mut s1), &s1),
                (plan.apply_profile(&mut s2), &s2),
                "{plan:?}"
            );
            assert_eq!(plan.poison_nth(), plan.poison_nth(), "{plan:?}");
        }
    }

    #[test]
    fn sweep_covers_every_kind_once() {
        let plans = FaultPlan::sweep(7);
        assert_eq!(plans.len(), FaultKind::all().len());
        assert!(plans.len() >= 8, "the harness contract wants >= 8 kinds");
        for (plan, kind) in plans.iter().zip(FaultKind::all()) {
            assert_eq!(plan.kind, kind);
        }
    }

    #[test]
    fn every_surface_is_exercised() {
        use FaultSurface::*;
        let surfaces: Vec<FaultSurface> =
            FaultKind::all().into_iter().map(|k| k.surface()).collect();
        for s in [ElfBytes, Image, Profile, Pipeline] {
            assert!(surfaces.contains(&s), "{s:?} missing");
        }
    }

    #[test]
    fn crash_spec_parses_rules_and_wildcards() {
        let spec = CrashSpec::parse("2:0:crash,*:1:hang,3:*:truncate").unwrap();
        assert_eq!(spec.action_for(2, 0), Some(CrashMode::Abort));
        assert_eq!(spec.action_for(2, 1), Some(CrashMode::Hang));
        assert_eq!(spec.action_for(3, 0), Some(CrashMode::TruncatedArtifact));
        assert_eq!(
            spec.action_for(3, 1),
            Some(CrashMode::Hang),
            "first match wins"
        );
        assert_eq!(spec.action_for(0, 0), None);
        assert_eq!(CrashSpec::parse("").unwrap(), CrashSpec::default());
        assert!(CrashSpec::parse("1:2").is_err());
        assert!(CrashSpec::parse("1:2:frobnicate").is_err());
        assert!(CrashSpec::parse("x:2:crash").is_err());
        for mode in CrashMode::all() {
            let spec = CrashSpec::parse(&format!("*:*:{mode}")).unwrap();
            assert_eq!(spec.action_for(9, 9), Some(mode), "{mode} round-trips");
        }
    }

    #[test]
    fn artifact_mutations_are_deterministic_and_mutate() {
        // A synthetic frame-shaped buffer: 20-byte header + payload.
        let pristine: Vec<u8> = (0..64u8).collect();
        for m in ArtifactMutation::all() {
            for seed in [1u64, 42, 1 << 40] {
                let mut a = pristine.clone();
                let mut b = pristine.clone();
                assert!(m.apply(&mut a, seed), "{m} applies");
                assert!(m.apply(&mut b, seed), "{m} applies");
                assert_eq!(a, b, "{m} seed {seed} deterministic");
                assert_ne!(a, pristine, "{m} seed {seed} changed the bytes");
            }
        }
    }

    #[test]
    fn corruptions_actually_corrupt() {
        // Each byte-level plan must change its target, not no-op.
        let pristine = vec![0xABu8; 512];
        for plan in FaultPlan::sweep(3) {
            if plan.kind.surface() == FaultSurface::ElfBytes {
                let mut bytes = pristine.clone();
                assert!(plan.apply_elf_bytes(&mut bytes), "{plan:?} applies");
                assert_ne!(bytes, pristine, "{plan:?} changed the buffer");
            }
        }
        let pristine = "0 aa 1 bb 10\n0 cc 1 dd 20\n".to_string();
        for plan in FaultPlan::sweep(3) {
            if plan.kind.surface() == FaultSurface::Profile {
                let mut text = pristine.clone();
                assert!(plan.apply_profile(&mut text), "{plan:?} applies");
                assert_ne!(text, pristine, "{plan:?} changed the text");
            }
        }
    }
}
