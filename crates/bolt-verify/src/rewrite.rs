//! The independent re-disassembler: lifts a rewritten ELF back into a
//! CFG using only `bolt-isa` decoding and checks it against the
//! optimized IR.
//!
//! The verifier deliberately shares nothing with the emitter: it reads
//! the output symbol table, linearly decodes each emitted function's hot
//! and cold fragments, re-derives block addresses by walking the layout,
//! and then checks three layers:
//!
//! 1. **Instruction preservation** — every decoded instruction must match
//!    its IR counterpart 1:1, with control-flow targets resolved the way
//!    the rewriter was *supposed* to resolve them (labels to block
//!    addresses, old entry addresses of re-emitted functions to their new
//!    entries) and branch width ignored (relaxation is a legal
//!    transform).
//! 2. **Structural soundness, from bytes alone** — intra-function branch
//!    targets land on instruction boundaries; targets into rewritten
//!    text land on function entries; no fragment falls through into
//!    padding or the next function; function symbol ranges don't
//!    overlap; no decoded instruction is unreachable unless the IR also
//!    considers its block dead (kept only by `uce`-disabled presets);
//!    jump-table entries in data sections point at the right blocks.
//! 3. **Edge-set equality** — the CFG edge set recovered from the bytes
//!    (leader partition + decoded terminators) must equal the IR edge
//!    set mapped through the derived block addresses.

use crate::{Finding, FindingKind, VerifyReport};
use bolt_elf::{sections, Elf, SymKind, SymSection};
use bolt_ir::{BinaryContext, BinaryFunction, BlockId, ExceptionTable};
use bolt_isa::{decode, Inst, Mem, Target};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::Range;
use std::time::Instant;

/// The sections the rewriter owns; targets inside them are held to a
/// stricter standard (must be function entries) than targets into the
/// preserved original text.
const BOLT_TEXT: &str = ".text.bolt";
const BOLT_TEXT_COLD: &str = ".text.bolt.cold";

/// A CFG edge set as `(from_block_addr, to_block_addr)` pairs.
pub type EdgeSet = BTreeSet<(u64, u64)>;

/// One decoded instruction with its location.
#[derive(Debug, Clone, Copy)]
struct Slot {
    addr: u64,
    inst: Inst,
    len: u8,
}

impl Slot {
    fn end(&self) -> u64 {
        self.addr + self.len as u64
    }

    /// Whether execution can continue past this instruction.
    fn falls_through(&self) -> bool {
        !matches!(
            self.inst,
            Inst::Jmp { .. } | Inst::JmpInd { .. } | Inst::Ret | Inst::RepzRet | Inst::Ud2
        )
    }
}

/// Re-disassembles `elf` and checks every emitted function against the
/// optimized IR in `ctx`. A clean rewrite yields zero findings.
pub fn verify_rewrite(elf: &Elf, ctx: &BinaryContext) -> VerifyReport {
    let started = Instant::now();
    let env = VerifyEnv::new(elf, ctx);
    let mut findings = Vec::new();
    check_symbol_overlaps(elf, &mut findings);
    let mut checked = 0;
    for fi in 0..ctx.functions.len() {
        let f = &ctx.functions[fi];
        if !f.is_simple || f.folded_into.is_some() {
            continue;
        }
        checked += 1;
        findings.extend(env.check_function(fi).findings);
    }
    VerifyReport {
        findings,
        functions_checked: checked,
        duration: started.elapsed(),
    }
}

/// The recovered and IR edge sets of one emitted function, for the
/// round-trip property tests: `(ir_edges, decoded_edges)` as
/// `(from_block_addr, to_block_addr)` pairs. `None` when the function
/// was not emitted or failed to pair against the IR.
pub fn edge_sets(elf: &Elf, ctx: &BinaryContext, name: &str) -> Option<(EdgeSet, EdgeSet)> {
    let &fi = ctx.by_name.get(name)?;
    let env = VerifyEnv::new(elf, ctx);
    env.check_function(fi).edges
}

struct FnOutcome {
    findings: Vec<Finding>,
    edges: Option<(EdgeSet, EdgeSet)>,
}

/// Shared lookup tables for one verification sweep.
struct VerifyEnv<'a> {
    elf: &'a Elf,
    ctx: &'a BinaryContext,
    /// Output `Func` symbols by name.
    sym_map: HashMap<&'a str, (u64, u64)>,
    /// Every output `Func` symbol address (legal out-of-function code
    /// targets inside the rewritten text).
    entry_syms: HashSet<u64>,
    /// Old function entry address → new entry address, resolved through
    /// icf fold chains — the rewriter's `entry_label_of_addr` mirrored
    /// from the output symbol table.
    new_entry_of_old: HashMap<u64, u64>,
    /// Landing-pad addresses recorded in the rewritten EH section.
    eh_pads: HashSet<u64>,
    /// Address ranges of the rewriter-owned text sections.
    bolt_ranges: Vec<Range<u64>>,
}

impl<'a> VerifyEnv<'a> {
    fn new(elf: &'a Elf, ctx: &'a BinaryContext) -> VerifyEnv<'a> {
        let mut sym_map = HashMap::new();
        let mut entry_syms = HashSet::new();
        for s in &elf.symbols {
            if s.kind == SymKind::Func {
                sym_map.insert(s.name.as_str(), (s.value, s.size));
                entry_syms.insert(s.value);
            }
        }
        let mut new_entry_of_old = HashMap::new();
        for f in &ctx.functions {
            let mut k = f.folded_into;
            let mut keeper = f;
            while let Some(i) = k {
                keeper = &ctx.functions[i];
                k = keeper.folded_into;
            }
            if keeper.is_simple && keeper.folded_into.is_none() {
                if let Some(&(addr, _)) = sym_map.get(keeper.name.as_str()) {
                    new_entry_of_old.insert(f.address, addr);
                }
            }
        }
        let eh_pads = elf
            .section(sections::EH)
            .and_then(|s| ExceptionTable::from_bytes(&s.data).ok())
            .map(|t| t.entries.values().copied().collect())
            .unwrap_or_default();
        let bolt_ranges = [BOLT_TEXT, BOLT_TEXT_COLD]
            .iter()
            .filter_map(|n| elf.section(n).map(|s| s.addr_range()))
            .collect();
        VerifyEnv {
            elf,
            ctx,
            sym_map,
            entry_syms,
            new_entry_of_old,
            eh_pads,
            bolt_ranges,
        }
    }

    fn check_function(&self, fi: usize) -> FnOutcome {
        let func = &self.ctx.functions[fi];
        let mut findings = Vec::new();
        let mut out = FnOutcome {
            findings: Vec::new(),
            edges: None,
        };
        let push = |findings: &mut Vec<Finding>, kind, addr, detail| {
            findings.push(Finding {
                kind,
                function: func.name.clone(),
                addr,
                detail,
            });
        };

        let cold_start = func.cold_start.unwrap_or(func.layout.len());
        let hot_blocks = &func.layout[..cold_start.min(func.layout.len())];
        let cold_blocks = &func.layout[cold_start.min(func.layout.len())..];
        let ir_len = |blocks: &[BlockId]| -> usize {
            blocks.iter().map(|&b| func.block(b).insts.len()).sum()
        };
        if ir_len(&func.layout) == 0 {
            return out; // nothing was emitted for this function
        }

        // Locate the fragments in the output symbol table.
        let Some(&(hot_addr, hot_size)) = self.sym_map.get(func.name.as_str()) else {
            push(
                &mut findings,
                FindingKind::MissingFunction,
                func.address,
                "no symbol in rewritten binary".to_string(),
            );
            return FnOutcome {
                findings,
                edges: None,
            };
        };
        let cold_name = format!("{}.cold", func.name);
        let cold_sym = self.sym_map.get(cold_name.as_str()).copied();
        if ir_len(cold_blocks) > 0 && cold_sym.is_none() {
            push(
                &mut findings,
                FindingKind::MissingFunction,
                func.address,
                format!("cold fragment symbol {cold_name} missing"),
            );
            return FnOutcome {
                findings,
                edges: None,
            };
        }

        // Linear decode of both fragments.
        let mut frags: Vec<(Range<u64>, Vec<Slot>)> = Vec::new();
        for (start, size) in std::iter::once((hot_addr, hot_size))
            .chain(cold_sym.filter(|_| ir_len(cold_blocks) > 0))
        {
            match self.decode_fragment(func, start, size, &mut findings) {
                Some(slots) => frags.push((start..start + size, slots)),
                None => {
                    return FnOutcome {
                        findings,
                        edges: None,
                    }
                }
            }
        }
        let intra = |addr: u64| frags.iter().any(|(r, _)| r.contains(&addr));
        let slot_addrs: HashSet<u64> = frags
            .iter()
            .flat_map(|(_, s)| s.iter().map(|s| s.addr))
            .collect();

        // Structural checks that need no IR pairing: fragments must not
        // fall through into padding / the next function, and every
        // decoded code target must be defensible.
        for (range, slots) in &frags {
            if let Some(last) = slots.last() {
                if last.falls_through() {
                    push(
                        &mut findings,
                        FindingKind::FallthroughOutOfFunction,
                        last.addr,
                        format!("fragment ends with `{}` which can fall through", last.inst),
                    );
                }
            }
            let _ = range;
            for slot in slots {
                let target = match slot.inst {
                    Inst::Jcc { target, .. } | Inst::Jmp { target, .. } | Inst::Call { target } => {
                        target
                    }
                    _ => continue,
                };
                let Target::Addr(t) = target else { continue };
                if intra(t) {
                    if !slot_addrs.contains(&t) {
                        push(
                            &mut findings,
                            FindingKind::DanglingJumpTarget,
                            slot.addr,
                            format!(
                                "`{}` targets {t:#x}, not an instruction boundary",
                                slot.inst
                            ),
                        );
                    }
                } else if self.bolt_ranges.iter().any(|r| r.contains(&t)) {
                    if !self.entry_syms.contains(&t) {
                        push(
                            &mut findings,
                            FindingKind::DanglingJumpTarget,
                            slot.addr,
                            format!(
                                "`{}` targets {t:#x} inside rewritten text, not a function entry",
                                slot.inst
                            ),
                        );
                    }
                } else if self.elf.section_at(t).is_none_or(|(_, s)| !s.is_exec()) {
                    push(
                        &mut findings,
                        FindingKind::DanglingJumpTarget,
                        slot.addr,
                        format!("`{}` targets {t:#x} outside executable sections", slot.inst),
                    );
                }
            }
        }

        // Pair the decoded stream against the IR layout, fragment by
        // fragment, deriving each block's emitted address as we go.
        let frag_blocks: Vec<&[BlockId]> = if frags.len() == 2 {
            vec![hot_blocks, cold_blocks]
        } else {
            vec![&func.layout]
        };
        let mut block_addr: Vec<Option<u64>> = vec![None; func.blocks.len()];
        let mut paired = true;
        for (blocks, (range, slots)) in frag_blocks.iter().zip(&frags) {
            if ir_len(blocks) != slots.len() {
                push(
                    &mut findings,
                    FindingKind::CfgMismatch,
                    range.start,
                    format!(
                        "instruction count mismatch: IR has {}, decoded {}",
                        ir_len(blocks),
                        slots.len()
                    ),
                );
                paired = false;
                continue;
            }
            let frag_end = slots.last().map_or(range.start, |s| s.end());
            let mut cursor = 0usize;
            for &b in *blocks {
                block_addr[b.index()] = Some(slots.get(cursor).map_or(frag_end, |s| s.addr));
                cursor += func.block(b).insts.len();
            }
        }
        if !paired {
            out.findings = findings;
            return out;
        }

        // Instruction-by-instruction comparison.
        for (blocks, (_, slots)) in frag_blocks.iter().zip(&frags) {
            let mut idx = 0usize;
            for &b in *blocks {
                for ir in &func.block(b).insts {
                    let slot = &slots[idx];
                    idx += 1;
                    match self.resolve_ir_inst(&ir.inst, &block_addr) {
                        Ok(want) => {
                            if !inst_matches(&want, &slot.inst) {
                                push(
                                    &mut findings,
                                    FindingKind::CfgMismatch,
                                    slot.addr,
                                    format!("decoded `{}` where IR expects `{want}`", slot.inst),
                                );
                            }
                        }
                        Err(e) => {
                            push(&mut findings, FindingKind::CfgMismatch, slot.addr, e);
                        }
                    }
                }
            }
        }

        // Jump tables: the patched entries in the data sections must
        // point at the derived addresses of their target blocks.
        for jt in &func.jump_tables {
            for (k, &t) in jt.targets.iter().enumerate() {
                let ea = jt.addr + (jt.entry_size as u64) * k as u64;
                let want = block_addr[t.index()];
                match self.elf.read_u64(ea) {
                    Some(v) if Some(v) == want => {}
                    Some(v) => push(
                        &mut findings,
                        FindingKind::DanglingJumpTarget,
                        ea,
                        format!(
                            "jump table {} entry {k} is {v:#x}, expected {:#x} ({t})",
                            jt.name,
                            want.unwrap_or(0)
                        ),
                    ),
                    None => push(
                        &mut findings,
                        FindingKind::DanglingJumpTarget,
                        ea,
                        format!("jump table {} entry {k} is unreadable", jt.name),
                    ),
                }
            }
        }

        // Reachability over the decoded instructions: everything must be
        // reachable from the entry, a landing pad, or a jump table —
        // unless the IR itself considers the block dead (possible only
        // under `uce`-disabled presets, which keep dead blocks in the
        // layout).
        self.check_reachability(func, &frags, &block_addr, &mut findings);

        // Edge-set equality between the recovered CFG and the IR.
        let ir_reach = func.reachable();
        let (ir_edges, dec_edges) =
            self.build_edge_sets(func, &frags, &block_addr, &ir_reach, intra);
        for &(from, to) in ir_edges.symmetric_difference(&dec_edges) {
            let side = if ir_edges.contains(&(from, to)) {
                "IR edge missing from decoded CFG"
            } else {
                "decoded edge absent from IR"
            };
            push(
                &mut findings,
                FindingKind::CfgMismatch,
                from,
                format!("{side}: {from:#x} -> {to:#x}"),
            );
        }

        FnOutcome {
            findings,
            edges: Some((ir_edges, dec_edges)),
        }
    }

    fn decode_fragment(
        &self,
        func: &BinaryFunction,
        start: u64,
        size: u64,
        findings: &mut Vec<Finding>,
    ) -> Option<Vec<Slot>> {
        if size == 0 {
            return Some(Vec::new());
        }
        let Some(bytes) = self.elf.read_vaddr(start, size as usize) else {
            findings.push(Finding {
                kind: FindingKind::UndecodableBytes,
                function: func.name.clone(),
                addr: start,
                detail: format!("symbol range {start:#x}+{size:#x} not backed by a section"),
            });
            return None;
        };
        let mut slots = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            let addr = start + off as u64;
            match decode(&bytes[off..], addr) {
                Ok(d) => {
                    slots.push(Slot {
                        addr,
                        inst: d.inst,
                        len: d.len,
                    });
                    off += d.len as usize;
                }
                Err(e) => {
                    findings.push(Finding {
                        kind: FindingKind::UndecodableBytes,
                        function: func.name.clone(),
                        addr,
                        detail: format!("{e:?}"),
                    });
                    return None;
                }
            }
        }
        Some(slots)
    }

    /// The instruction the emitted bytes should decode back to: label
    /// targets become derived block addresses, old entries of re-emitted
    /// functions become their new entries (the rewriter's `map_target`),
    /// and `movabs $sym` collapses to the `MovRI` the decoder reports.
    fn resolve_ir_inst(&self, inst: &Inst, block_addr: &[Option<u64>]) -> Result<Inst, String> {
        let label = |t: &Target| -> Result<u64, String> {
            match t {
                Target::Label(l) => block_addr
                    .get(l.0 as usize)
                    .copied()
                    .flatten()
                    .ok_or_else(|| format!("label L{} does not resolve to an emitted block", l.0)),
                Target::Addr(a) => Ok(*a),
            }
        };
        let mapped = |t: &Target| -> Result<u64, String> {
            match t {
                Target::Label(_) => label(t),
                Target::Addr(a) => Ok(self.new_entry_of_old.get(a).copied().unwrap_or(*a)),
            }
        };
        let mem = |m: &Mem| -> Result<Mem, String> {
            match m {
                Mem::RipRel { target } => Ok(Mem::RipRel {
                    target: Target::Addr(label(target)?),
                }),
                other => Ok(*other),
            }
        };
        Ok(match inst {
            Inst::Jcc {
                cond,
                target,
                width,
            } => Inst::Jcc {
                cond: *cond,
                target: Target::Addr(mapped(target)?),
                width: *width,
            },
            Inst::Jmp { target, width } => Inst::Jmp {
                target: Target::Addr(mapped(target)?),
                width: *width,
            },
            Inst::Call { target } => Inst::Call {
                target: Target::Addr(mapped(target)?),
            },
            Inst::MovRSym { dst, target } => Inst::MovRI {
                dst: *dst,
                imm: mapped(target)? as i64,
            },
            Inst::Load { dst, mem: m } => Inst::Load {
                dst: *dst,
                mem: mem(m)?,
            },
            Inst::Store { mem: m, src } => Inst::Store {
                mem: mem(m)?,
                src: *src,
            },
            Inst::Lea { dst, mem: m } => Inst::Lea {
                dst: *dst,
                mem: mem(m)?,
            },
            other => *other,
        })
    }

    fn check_reachability(
        &self,
        func: &BinaryFunction,
        frags: &[(Range<u64>, Vec<Slot>)],
        block_addr: &[Option<u64>],
        findings: &mut Vec<Finding>,
    ) {
        let all: Vec<&Slot> = frags.iter().flat_map(|(_, s)| s.iter()).collect();
        let idx_of: HashMap<u64, usize> =
            all.iter().enumerate().map(|(i, s)| (s.addr, i)).collect();
        let intra = |a: u64| idx_of.contains_key(&a);

        let mut reached = vec![false; all.len()];
        let mut stack: Vec<usize> = Vec::new();
        let root = |a: u64, stack: &mut Vec<usize>, reached: &mut Vec<bool>| {
            if let Some(&i) = idx_of.get(&a) {
                if !reached[i] {
                    reached[i] = true;
                    stack.push(i);
                }
            }
        };
        // The entry, EH landing pads, jump-table entries as recorded in
        // the rewritten binary, and blocks the IR itself cannot reach
        // (dead blocks kept by uce-disabled presets are not a defect).
        if let Some((range, _)) = frags.first() {
            root(range.start, &mut stack, &mut reached);
        }
        for &pad in &self.eh_pads {
            root(pad, &mut stack, &mut reached);
        }
        for jt in &func.jump_tables {
            for k in 0..jt.targets.len() {
                if let Some(v) = self
                    .elf
                    .read_u64(jt.addr + (jt.entry_size as u64) * k as u64)
                {
                    root(v, &mut stack, &mut reached);
                }
            }
        }
        let ir_reach = func.reachable();
        for &b in &func.layout {
            // Empty dead blocks occupy zero bytes; their derived address
            // aliases the next live block and must not root it.
            if !ir_reach[b.index()] && !func.block(b).insts.is_empty() {
                if let Some(a) = block_addr[b.index()] {
                    root(a, &mut stack, &mut reached);
                }
            }
        }

        while let Some(i) = stack.pop() {
            let slot = all[i];
            if slot.falls_through() || matches!(slot.inst, Inst::Jcc { .. }) {
                if let Some(&j) = idx_of.get(&slot.end()) {
                    if !reached[j] {
                        reached[j] = true;
                        stack.push(j);
                    }
                }
            }
            if let Inst::Jcc {
                target: Target::Addr(t),
                ..
            }
            | Inst::Jmp {
                target: Target::Addr(t),
                ..
            } = slot.inst
            {
                if intra(t) {
                    let j = idx_of[&t];
                    if !reached[j] {
                        reached[j] = true;
                        stack.push(j);
                    }
                }
            }
        }

        // Report contiguous unreached non-NOP runs, one finding each.
        let mut i = 0;
        while i < all.len() {
            if reached[i] || matches!(all[i].inst, Inst::Nop { .. }) {
                i += 1;
                continue;
            }
            let start = i;
            while i < all.len() && !reached[i] {
                i += 1;
            }
            let bytes: u64 = all[start..i].iter().map(|s| s.len as u64).sum();
            findings.push(Finding {
                kind: FindingKind::UnreachableBytes,
                function: func.name.clone(),
                addr: all[start].addr,
                detail: format!(
                    "{} unreachable instruction(s) ({bytes} bytes) starting at {:#x}",
                    i - start,
                    all[start].addr
                ),
            });
        }
    }

    /// Builds the IR edge set (from `succs`, mapped through derived
    /// block addresses) and the recovered edge set (leader partition of
    /// the decoded stream). Edges from indirect-jump blocks are excluded
    /// on both sides — they are verified through the jump-table bytes —
    /// as are edges out of empty blocks (layout artifacts with no
    /// instruction to carry them).
    fn build_edge_sets(
        &self,
        func: &BinaryFunction,
        frags: &[(Range<u64>, Vec<Slot>)],
        block_addr: &[Option<u64>],
        ir_reach: &[bool],
        intra: impl Fn(u64) -> bool,
    ) -> (EdgeSet, EdgeSet) {
        let mut ir_edges = BTreeSet::new();
        for &b in &func.layout {
            let blk = func.block(b);
            if blk.insts.is_empty() || !ir_reach[b.index()] {
                continue;
            }
            if matches!(blk.terminator().map(|t| &t.inst), Some(Inst::JmpInd { .. })) {
                continue;
            }
            let Some(from) = block_addr[b.index()] else {
                continue;
            };
            for e in &blk.succs {
                if let Some(to) = block_addr[e.block.index()] {
                    ir_edges.insert((from, to));
                }
            }
        }

        // Leaders: fragment starts, derived block addresses, decoded
        // branch targets, post-terminator addresses, jump-table entries,
        // EH pads. On a faithful rewrite this set collapses to exactly
        // the block starts; on a corrupted one the extra leaders surface
        // as edge differences.
        let mut leaders: BTreeSet<u64> = frags.iter().map(|(r, _)| r.start).collect();
        for a in block_addr.iter().flatten() {
            leaders.insert(*a);
        }
        for (_, slots) in frags {
            for s in slots {
                if s.inst.is_terminator() {
                    leaders.insert(s.end());
                }
                if let Inst::Jcc {
                    target: Target::Addr(t),
                    ..
                }
                | Inst::Jmp {
                    target: Target::Addr(t),
                    ..
                } = s.inst
                {
                    if intra(t) {
                        leaders.insert(t);
                    }
                }
            }
        }
        for jt in &func.jump_tables {
            for k in 0..jt.targets.len() {
                if let Some(v) = self
                    .elf
                    .read_u64(jt.addr + (jt.entry_size as u64) * k as u64)
                {
                    if intra(v) {
                        leaders.insert(v);
                    }
                }
            }
        }
        for &pad in &self.eh_pads {
            if intra(pad) {
                leaders.insert(pad);
            }
        }

        // Unreached decoded instructions in IR-dead blocks don't belong
        // in the comparison: collect the dead blocks' address ranges.
        let mut dead_starts: HashSet<u64> = HashSet::new();
        for &b in &func.layout {
            // Empty dead blocks alias the next live block's address and
            // must not suppress its decoded edges.
            if !ir_reach[b.index()] && !func.block(b).insts.is_empty() {
                if let Some(a) = block_addr[b.index()] {
                    dead_starts.insert(a);
                }
            }
        }

        let mut dec_edges = BTreeSet::new();
        for (range, slots) in frags {
            let mut i = 0;
            while i < slots.len() {
                let start = slots[i].addr;
                let mut j = i;
                while !slots[j].inst.is_terminator()
                    && j + 1 < slots.len()
                    && !leaders.contains(&slots[j + 1].addr)
                {
                    j += 1;
                }
                let last = &slots[j];
                let next_in_frag = j + 1 < slots.len();
                let in_dead_block = dead_starts.contains(&start);
                if !in_dead_block {
                    match last.inst {
                        Inst::Jcc {
                            target: Target::Addr(t),
                            ..
                        } => {
                            if intra(t) {
                                dec_edges.insert((start, t));
                            }
                            if next_in_frag {
                                dec_edges.insert((start, last.end()));
                            }
                        }
                        Inst::Jmp {
                            target: Target::Addr(t),
                            ..
                        } => {
                            if intra(t) {
                                dec_edges.insert((start, t));
                            }
                        }
                        Inst::JmpInd { .. } | Inst::Ret | Inst::RepzRet | Inst::Ud2 => {}
                        _ => {
                            // Chunk ends at a leader boundary by falling
                            // through into it.
                            if next_in_frag {
                                dec_edges.insert((start, last.end()));
                            }
                        }
                    }
                }
                let _ = range;
                i = j + 1;
            }
        }
        (ir_edges, dec_edges)
    }
}

/// Decoded/IR instruction equivalence: branch widths are a legal
/// emitter choice (relaxation), everything else must match exactly.
fn inst_matches(want: &Inst, got: &Inst) -> bool {
    match (want, got) {
        (
            Inst::Jcc {
                cond: c1,
                target: t1,
                ..
            },
            Inst::Jcc {
                cond: c2,
                target: t2,
                ..
            },
        ) => c1 == c2 && t1 == t2,
        (Inst::Jmp { target: t1, .. }, Inst::Jmp { target: t2, .. }) => t1 == t2,
        _ => want == got,
    }
}

/// Function symbols with nonzero size in executable sections must not
/// overlap.
fn check_symbol_overlaps(elf: &Elf, findings: &mut Vec<Finding>) {
    let mut ranges: Vec<(u64, u64, &str)> = elf
        .symbols
        .iter()
        .filter(|s| s.kind == SymKind::Func && s.size > 0)
        .filter(|s| match s.section {
            SymSection::Section(i) => elf.sections.get(i).is_some_and(|sec| sec.is_exec()),
            _ => false,
        })
        .map(|s| (s.value, s.size, s.name.as_str()))
        .collect();
    ranges.sort_unstable();
    for w in ranges.windows(2) {
        let (a_start, a_size, a_name) = w[0];
        let (b_start, _, b_name) = w[1];
        if a_start + a_size > b_start {
            findings.push(Finding {
                kind: FindingKind::OverlappingCode,
                function: a_name.to_string(),
                addr: b_start,
                detail: format!(
                    "{a_name} [{a_start:#x}+{a_size:#x}) overlaps {b_name} at {b_start:#x}"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_elf::{Section, Symbol};
    use bolt_ir::{BasicBlock, BinaryInst, SuccEdge};
    use bolt_isa::{encode_at, encoded_len, Cond, JumpWidth, Label};

    const BASE: u64 = 0x400000;

    /// Builds a synthetic rewritten binary and its matching IR from a
    /// block list: IR targets are `Label(block_index)`, the encoded
    /// bytes get the derived block addresses, exactly as a faithful
    /// rewrite would.
    fn synthetic(blocks: &[(&[Inst], &[u32])]) -> (Elf, BinaryContext) {
        let mut addrs = Vec::new();
        let mut at = BASE;
        for (insts, _) in blocks {
            addrs.push(at);
            for i in *insts {
                at += encoded_len(i) as u64;
            }
        }
        let place = |i: &Inst| -> Inst {
            let addr = |t: &Target| match t {
                Target::Label(l) => Target::Addr(addrs[l.0 as usize]),
                a => *a,
            };
            match i {
                Inst::Jcc {
                    cond,
                    target,
                    width,
                } => Inst::Jcc {
                    cond: *cond,
                    target: addr(target),
                    width: *width,
                },
                Inst::Jmp { target, width } => Inst::Jmp {
                    target: addr(target),
                    width: *width,
                },
                other => *other,
            }
        };
        let mut bytes = Vec::new();
        let mut pc = BASE;
        for (insts, _) in blocks {
            for i in *insts {
                let enc = encode_at(&place(i), pc).expect("encodes");
                pc += enc.bytes.len() as u64;
                bytes.extend_from_slice(&enc.bytes);
            }
        }

        let mut elf = Elf::new(BASE);
        elf.sections.push(Section::code(".text.bolt", BASE, bytes));
        elf.symbols.push(Symbol::func("f", BASE, pc - BASE, 0));

        let mut func = bolt_ir::BinaryFunction::new("f", 0x1000);
        for (insts, succs) in blocks {
            let mut b = BasicBlock::new();
            b.insts = insts.iter().map(|&i| BinaryInst::new(i)).collect();
            b.succs = succs.iter().map(|&s| SuccEdge::cold(BlockId(s))).collect();
            func.add_block(b);
        }
        let mut ctx = BinaryContext::new();
        ctx.add_function(func);
        (elf, ctx)
    }

    fn diamond() -> (Elf, BinaryContext) {
        // b0: jcc -> b2, falls through to b1; b1: jmp -> b2; b2: ret.
        synthetic(&[
            (
                &[Inst::Jcc {
                    cond: Cond::E,
                    target: Target::Label(Label(2)),
                    width: JumpWidth::Short,
                }],
                &[2, 1],
            ),
            (
                &[Inst::Jmp {
                    target: Target::Label(Label(2)),
                    width: JumpWidth::Short,
                }],
                &[2],
            ),
            (&[Inst::Ret], &[]),
        ])
    }

    #[test]
    fn faithful_synthetic_rewrite_is_clean() {
        let (elf, ctx) = diamond();
        let report = verify_rewrite(&elf, &ctx);
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.findings
        );
        assert_eq!(report.functions_checked, 1);
        let (ir, dec) = edge_sets(&elf, &ctx, "f").expect("paired");
        assert_eq!(ir, dec);
        assert_eq!(ir.len(), 3); // b0->b2, b0->b1, b1->b2
    }

    /// Overwriting the conditional branch with an unconditional one
    /// strands the middle block: the verifier must see bytes the CFG
    /// can no longer reach (and the instruction mismatch itself).
    #[test]
    fn decoded_unreachable_code_is_reported() {
        let (mut elf, ctx) = diamond();
        // jcc short (0x74 disp) -> jmp short (0xEB disp), same length.
        elf.sections[0].data[0] = 0xEB;
        let report = verify_rewrite(&elf, &ctx);
        let kinds: Vec<FindingKind> = report.findings.iter().map(|f| f.kind).collect();
        assert!(
            kinds.contains(&FindingKind::UnreachableBytes),
            "expected UnreachableBytes, got {:?}",
            report.findings
        );
        assert!(kinds.contains(&FindingKind::CfgMismatch));
    }

    /// Blocks the IR itself considers dead (kept in the layout by
    /// uce-disabled presets) are emitted but never reached — that is
    /// not a defect.
    #[test]
    fn ir_dead_blocks_are_exempt_from_reachability() {
        // b0: jmp -> b2; b1 (IR-dead, no preds): jmp -> b2; b2: ret.
        let (elf, ctx) = synthetic(&[
            (
                &[Inst::Jmp {
                    target: Target::Label(Label(2)),
                    width: JumpWidth::Short,
                }],
                &[2],
            ),
            (
                &[Inst::Jmp {
                    target: Target::Label(Label(2)),
                    width: JumpWidth::Short,
                }],
                &[2],
            ),
            (&[Inst::Ret], &[]),
        ]);
        let report = verify_rewrite(&elf, &ctx);
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.findings
        );
    }

    /// A fragment whose last instruction can fall through escapes the
    /// function: the structural check needs no IR pairing to see it.
    #[test]
    fn trailing_fallthrough_is_reported() {
        let (mut elf, ctx) = synthetic(&[
            (
                &[Inst::Jcc {
                    cond: Cond::E,
                    target: Target::Label(Label(1)),
                    width: JumpWidth::Short,
                }],
                &[1, 1],
            ),
            (&[Inst::Ret], &[]),
        ]);
        // Overwrite the final ret with a 1-byte nop: same decode length,
        // but execution now runs off the end of the symbol.
        let end = elf.sections[0].data.len() - 1;
        elf.sections[0].data[end] = 0x90;
        let report = verify_rewrite(&elf, &ctx);
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::FallthroughOutOfFunction));
    }
}
