//! Semantic (symbolic) translation-validation sweep over a rewritten
//! binary.
//!
//! The core prover lives in `bolt-emu` (`bolt_emu::transval` /
//! `bolt_emu::symexec`), next to the private translation caches and
//! lazy-flags machinery it must model exactly. This module is the
//! verifier-facing entry point: it walks every emitted function of a
//! rewritten ELF, runs the code bytes through all three translation
//! tiers via [`bolt_emu::validate_code`], and folds each semantic
//! disagreement into the standard [`Finding`] stream under
//! [`FindingKind::SemanticMismatch`] — so `bolt -verify-sem` reports
//! through the same machinery (and the same JSON emitter) as the
//! re-disassembly verifier and the IR lint.

use crate::{Finding, FindingKind, VerifyReport};
use bolt_elf::{Elf, SymKind};
use bolt_ir::BinaryContext;
use std::time::Instant;

/// Symbolically validates every emitted function of `elf`: each
/// function's bytes are translated block by block under every
/// translation tier (block, superblock, uop) and each translation is
/// proven semantically equivalent to a fresh decode of its bytes. A
/// clean report means the emulator's translation layers preserve step
/// semantics on exactly the code this binary will run.
pub fn verify_semantics(elf: &Elf, ctx: &BinaryContext) -> VerifyReport {
    let start = Instant::now();
    let mut report = VerifyReport::default();
    for f in &ctx.functions {
        if !f.is_simple || f.folded_into.is_some() {
            continue;
        }
        let Some(sym) = elf
            .symbols
            .iter()
            .find(|s| s.kind == SymKind::Func && s.name == f.name && s.size > 0)
        else {
            continue;
        };
        let Some(bytes) = elf.read_vaddr(sym.value, sym.size as usize) else {
            continue;
        };
        report.functions_checked += 1;
        for sf in bolt_emu::validate_code(bytes, sym.value) {
            report.findings.push(Finding {
                kind: FindingKind::SemanticMismatch,
                function: f.name.clone(),
                addr: sf.entry,
                detail: format!("{} at inst {}: {}", sf.kind.as_str(), sf.inst, sf.detail),
            });
        }
    }
    report.duration = start.elapsed();
    report
}
