//! Property tests for the re-disassembly verifier: any generated CFG,
//! emitted faithfully through the real emitter (`bolt_ir::emit_units`,
//! branch relaxation included), must verify with zero findings and
//! reconstruct exactly the IR's edge set — and corrupting any single
//! instruction of the emitted bytes must produce at least one finding.

use bolt_elf::{Elf, Section, Symbol};
use bolt_ir::{
    emit_units, BasicBlock, BinaryContext, BinaryFunction, BinaryInst, BlockId, EmitBlock,
    EmitInst, EmitUnit, SuccEdge,
};
use bolt_isa::{Cond, Inst, JumpWidth, Label, Reg, Target};
use bolt_verify::{edge_sets, verify_rewrite};
use proptest::prelude::*;
use std::collections::HashMap;

const BASE: u64 = 0x400000;
const COLD_BASE: u64 = 0x600000;

/// A random function: per block, filler length, an optional branch
/// target, and whether the branch is conditional. The last block always
/// returns so the layout cannot fall off the end.
#[derive(Debug, Clone)]
struct FuncSpec {
    blocks: Vec<(usize, Option<usize>, bool)>,
}

fn arb_func(max_blocks: usize) -> impl Strategy<Value = FuncSpec> {
    proptest::collection::vec(
        (
            0usize..5,
            proptest::option::of(0usize..max_blocks),
            any::<bool>(),
        ),
        2..max_blocks,
    )
    .prop_map(|mut blocks| {
        let n = blocks.len();
        for (_, t, _) in blocks.iter_mut() {
            if let Some(t) = t.as_mut() {
                *t %= n;
            }
        }
        blocks.last_mut().expect("non-empty").1 = None;
        FuncSpec { blocks }
    })
}

/// The per-block instruction list and successor edges, shared by the
/// emit unit and the IR so the two cannot drift apart in the test
/// itself.
fn block_shapes(spec: &FuncSpec) -> Vec<(Vec<Inst>, Vec<u32>)> {
    let n = spec.blocks.len();
    spec.blocks
        .iter()
        .enumerate()
        .map(|(i, (pad, target, cond))| {
            let mut insts: Vec<Inst> = (0..*pad)
                .map(|k| Inst::MovRI {
                    dst: Reg::Rax,
                    imm: (k as i64) * 3 + 1,
                })
                .collect();
            let succs: Vec<u32> = match target {
                Some(t) if *cond && i + 1 < n => {
                    insts.push(Inst::Jcc {
                        cond: Cond::E,
                        target: Target::Label(Label(*t as u32)),
                        width: JumpWidth::Short,
                    });
                    vec![*t as u32, (i + 1) as u32]
                }
                Some(t) => {
                    insts.push(Inst::Jmp {
                        target: Target::Label(Label(*t as u32)),
                        width: JumpWidth::Short,
                    });
                    vec![*t as u32]
                }
                // Fall-through block (no terminator) when a next block
                // exists; otherwise a return.
                None if *cond && i + 1 < n => vec![(i + 1) as u32],
                None => {
                    insts.push(Inst::Ret);
                    vec![]
                }
            };
            (insts, succs)
        })
        .collect()
}

/// Emits the spec through the real emitter and builds the matching
/// "optimized IR" context — the identity pipeline's view of the
/// function.
fn emit_spec(spec: &FuncSpec) -> (Elf, BinaryContext) {
    let shapes = block_shapes(spec);

    let mut unit = EmitUnit::new("prop");
    unit.align = 1;
    for (i, (insts, _)) in shapes.iter().enumerate() {
        let mut b = EmitBlock::new(Label(i as u32));
        b.insts = insts.iter().map(|&inst| EmitInst::new(inst)).collect();
        unit.blocks.push(b);
    }
    let result = emit_units(&[unit], BASE, COLD_BASE, &HashMap::new()).expect("emits");

    let mut elf = Elf::new(BASE);
    elf.sections
        .push(Section::code(".text.bolt", BASE, result.text));
    for s in &result.symbols {
        elf.symbols
            .push(Symbol::func(s.name.clone(), s.addr, s.size, 0));
    }

    let mut func = BinaryFunction::new("prop", 0x1000);
    for (insts, succs) in &shapes {
        let mut b = BasicBlock::new();
        b.insts = insts.iter().map(|&inst| BinaryInst::new(inst)).collect();
        b.succs = succs.iter().map(|&s| SuccEdge::cold(BlockId(s))).collect();
        func.add_block(b);
    }
    let mut ctx = BinaryContext::new();
    ctx.add_function(func);
    (elf, ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Identity round trip: emit → re-disassemble → zero findings, and
    /// the recovered edge set equals the IR edge set.
    #[test]
    fn emitted_cfg_verifies_clean_with_equal_edge_sets(spec in arb_func(12)) {
        let (elf, ctx) = emit_spec(&spec);
        let report = verify_rewrite(&elf, &ctx);
        prop_assert!(
            report.is_clean(),
            "clean emit produced findings: {:?}",
            report.findings
        );
        let (ir, dec) = edge_sets(&elf, &ctx, "prop").expect("function pairs");
        prop_assert_eq!(ir, dec);
    }

    /// Single-instruction corruption: flipping the last byte of any
    /// emitted instruction (opcode, displacement, or immediate) must
    /// surface at least one finding — the verifier has no blind spots
    /// inside a function body.
    #[test]
    fn corrupting_any_instruction_is_detected(
        spec in arb_func(8),
        pick in 0usize..1024,
    ) {
        let (mut elf, ctx) = emit_spec(&spec);
        // Decode the pristine text to find instruction boundaries.
        let sym = elf.symbol("prop").expect("symbol").clone();
        let text = elf.read_vaddr(sym.value, sym.size as usize).expect("readable").to_vec();
        let decoded = bolt_isa::decode_all(&text, sym.value).expect("pristine text decodes");
        // `decode_all` yields offsets relative to the slice start.
        let (inst_off, d) = &decoded[pick % decoded.len()];
        let off = (sym.value - BASE) as usize + *inst_off as usize + d.len as usize - 1;
        elf.sections[0].data[off] ^= 0x13;
        let report = verify_rewrite(&elf, &ctx);
        prop_assert!(
            !report.is_clean(),
            "corrupted byte at {:#x} (inside `{}`) went undetected",
            BASE + off as u64,
            d.inst
        );
    }
}
