//! Basic blocks and CFG edges.

use crate::BinaryInst;
use std::fmt;

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".BB{}", self.0)
    }
}

/// A weighted CFG edge, annotated with profile counts the way BOLT
/// annotates successors (`mispreds`, `count` — paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccEdge {
    pub block: BlockId,
    /// Number of times the edge was traversed according to profile.
    pub count: u64,
    /// Number of mispredictions recorded on the edge.
    pub mispreds: u64,
}

impl SuccEdge {
    /// An edge with zero profile counts.
    pub fn cold(block: BlockId) -> SuccEdge {
        SuccEdge {
            block,
            count: 0,
            mispreds: 0,
        }
    }

    /// An edge with the given traversal count.
    pub fn with_count(block: BlockId, count: u64) -> SuccEdge {
        SuccEdge {
            block,
            count,
            mispreds: 0,
        }
    }
}

/// A basic block of annotated machine instructions.
///
/// Successor convention (matching how the emitter lays out terminators):
///
/// * conditional branch: `succs[0]` is the *taken* target, `succs[1]` the
///   fall-through;
/// * unconditional branch: `succs[0]` is the target;
/// * no terminator: `succs[0]` is the fall-through;
/// * indirect branch through a jump table: one edge per distinct entry;
/// * return / trap: no successors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BasicBlock {
    pub insts: Vec<BinaryInst>,
    pub succs: Vec<SuccEdge>,
    /// Predecessors, maintained by [`crate::BinaryFunction::rebuild_preds`].
    pub preds: Vec<BlockId>,
    /// Profile execution count.
    pub exec_count: u64,
    /// Whether the block is an exception landing pad.
    pub is_landing_pad: bool,
    /// Blocks whose calls can throw into this landing pad.
    pub throwers: Vec<BlockId>,
    /// Requested start alignment in bytes (1 = none).
    pub alignment: u16,
    /// Original start address in the input binary, if any.
    pub orig_addr: u64,
}

impl BasicBlock {
    /// Creates an empty block.
    pub fn new() -> BasicBlock {
        BasicBlock {
            alignment: 1,
            ..BasicBlock::default()
        }
    }

    /// The terminating instruction, if the block ends in one.
    pub fn terminator(&self) -> Option<&BinaryInst> {
        self.insts.last().filter(|i| i.inst.is_terminator())
    }

    /// Mutable access to the terminator.
    pub fn terminator_mut(&mut self) -> Option<&mut BinaryInst> {
        self.insts.last_mut().filter(|i| i.inst.is_terminator())
    }

    /// Whether control can fall through past the end of this block.
    pub fn can_fall_through(&self) -> bool {
        match self.insts.last() {
            None => true,
            Some(last) => {
                !last.inst.is_uncond_branch()
                    && !last.inst.is_return()
                    && !matches!(
                        last.inst,
                        bolt_isa::Inst::JmpInd { .. } | bolt_isa::Inst::Ud2
                    )
            }
        }
    }

    /// The fall-through successor under the successor convention.
    pub fn fallthrough_succ(&self) -> Option<BlockId> {
        match self.insts.last() {
            Some(last) if last.inst.is_cond_branch() => self.succs.get(1).map(|e| e.block),
            Some(last) if last.inst.is_terminator() => None,
            _ => self.succs.first().map(|e| e.block),
        }
    }

    /// The taken-branch successor (conditional or unconditional), if any.
    pub fn taken_succ(&self) -> Option<BlockId> {
        match self.insts.last() {
            Some(last) if last.inst.is_cond_branch() || last.inst.is_uncond_branch() => {
                self.succs.first().map(|e| e.block)
            }
            _ => None,
        }
    }

    /// Finds the edge to `to`, if present.
    pub fn succ_edge(&self, to: BlockId) -> Option<&SuccEdge> {
        self.succs.iter().find(|e| e.block == to)
    }

    /// Finds the edge to `to`, mutably.
    pub fn succ_edge_mut(&mut self, to: BlockId) -> Option<&mut SuccEdge> {
        self.succs.iter_mut().find(|e| e.block == to)
    }

    /// Total profile count flowing out of this block.
    pub fn outflow(&self) -> u64 {
        self.succs.iter().map(|e| e.count).sum()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: impl Into<BinaryInst>) {
        self.insts.push(inst.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::{Cond, Inst, JumpWidth, Label, Reg, Target};

    fn jcc(target: u32) -> Inst {
        Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(target)),
            width: JumpWidth::Near,
        }
    }

    #[test]
    fn fallthrough_conventions() {
        // Conditional branch: succs[0] taken, succs[1] fallthrough.
        let mut b = BasicBlock::new();
        b.push(jcc(1));
        b.succs = vec![SuccEdge::cold(BlockId(1)), SuccEdge::cold(BlockId(2))];
        assert!(b.can_fall_through());
        assert_eq!(b.taken_succ(), Some(BlockId(1)));
        assert_eq!(b.fallthrough_succ(), Some(BlockId(2)));

        // Unconditional.
        let mut b = BasicBlock::new();
        b.push(Inst::Jmp {
            target: Target::Label(Label(3)),
            width: JumpWidth::Near,
        });
        b.succs = vec![SuccEdge::cold(BlockId(3))];
        assert!(!b.can_fall_through());
        assert_eq!(b.taken_succ(), Some(BlockId(3)));
        assert_eq!(b.fallthrough_succ(), None);

        // Plain block.
        let mut b = BasicBlock::new();
        b.push(Inst::Push(Reg::Rbp));
        b.succs = vec![SuccEdge::cold(BlockId(9))];
        assert_eq!(b.fallthrough_succ(), Some(BlockId(9)));
        assert_eq!(b.taken_succ(), None);

        // Return.
        let mut b = BasicBlock::new();
        b.push(Inst::Ret);
        assert!(!b.can_fall_through());
        assert_eq!(b.fallthrough_succ(), None);
    }

    #[test]
    fn edge_queries() {
        let mut b = BasicBlock::new();
        b.succs = vec![
            SuccEdge::with_count(BlockId(1), 10),
            SuccEdge::with_count(BlockId(2), 5),
        ];
        assert_eq!(b.outflow(), 15);
        assert_eq!(b.succ_edge(BlockId(2)).unwrap().count, 5);
        b.succ_edge_mut(BlockId(1)).unwrap().count += 1;
        assert_eq!(b.outflow(), 16);
    }
}
