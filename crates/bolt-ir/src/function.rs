//! Binary functions: the unit of disassembly, optimization, and re-emission.

use crate::{BasicBlock, BlockId, SuccEdge};
use std::collections::VecDeque;
use std::fmt;

/// A jump table recovered from `.rodata`, owned by a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JumpTable {
    /// Address of the table in the input binary.
    pub addr: u64,
    /// Symbol name of the table (used when re-emitting).
    pub name: String,
    /// Table entries as block targets.
    pub targets: Vec<BlockId>,
    /// Size of one entry in bytes (8 = absolute addresses).
    pub entry_size: u8,
}

/// Why a function was marked non-simple and left untouched (paper
/// sections 3.1 and 6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonSimpleReason {
    /// Disassembly hit an unsupported byte sequence.
    UndecodableBytes,
    /// An indirect jump could not be resolved to a jump table.
    UnresolvedIndirectJump,
    /// A branch target fell outside the function's address range.
    /// (E.g. the indirect tail calls called out in paper section 6.4.)
    OutOfRangeControlFlow,
    /// The function overlaps another symbol.
    OverlappingCode,
    /// The fault-tolerance ladder excluded the function: a pass panicked
    /// on it, a verifier flagged it, or its layout-only retry failed
    /// too. Its original bytes are preserved verbatim in the output.
    Quarantined,
}

impl fmt::Display for NonSimpleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonSimpleReason::UndecodableBytes => write!(f, "undecodable bytes"),
            NonSimpleReason::UnresolvedIndirectJump => write!(f, "unresolved indirect jump"),
            NonSimpleReason::OutOfRangeControlFlow => write!(f, "out-of-range control flow"),
            NonSimpleReason::OverlappingCode => write!(f, "overlapping code"),
            NonSimpleReason::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// How much of the pipeline may touch a function — the rungs of the
/// driver's retry/degrade ladder. Every function starts at
/// [`OptTier::Full`]; a function that fails a pass or a verifier is
/// retried at [`OptTier::LayoutOnly`] before being quarantined outright
/// (`is_simple = false`, reason [`NonSimpleReason::Quarantined`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptTier {
    /// Every enabled pass may transform the function.
    #[default]
    Full,
    /// Only layout passes (block/function reordering, splitting, uce,
    /// fixup-branches) run; instruction-mutating passes skip the
    /// function.
    LayoutOnly,
}

/// A function reconstructed from the binary, its CFG, and its layout.
///
/// `blocks` is indexed by [`BlockId`]; `layout` gives the current emission
/// order and always starts with the entry block. Deleted blocks are kept in
/// `blocks` (so ids stay stable) but removed from `layout`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BinaryFunction {
    pub name: String,
    /// Start address in the input binary.
    pub address: u64,
    /// Size in bytes in the input binary.
    pub size: u64,
    /// Containing section name.
    pub section: String,
    pub blocks: Vec<BasicBlock>,
    /// Current block emission order; `layout[0]` is the entry block.
    pub layout: Vec<BlockId>,
    /// Index into `layout` where the cold (split) part begins.
    pub cold_start: Option<usize>,
    /// Total profile execution count (entries into the function).
    pub exec_count: u64,
    /// Fraction of profile that matched the CFG (1.0 = perfect).
    pub profile_accuracy: f64,
    /// Whether BOLT fully understands the function and may rewrite it.
    pub is_simple: bool,
    /// Why the function is non-simple, when it is not.
    pub non_simple_reason: Option<NonSimpleReason>,
    /// Which pipeline rung may transform the function (the quarantine
    /// ladder's per-function demotion level). [`OptTier::Full`] for
    /// every healthy function.
    pub opt_tier: OptTier,
    pub jump_tables: Vec<JumpTable>,
    /// Names folded into this function by identical-code-folding.
    pub icf_aliases: Vec<String>,
    /// Set when this function was folded into another by ICF; folded
    /// functions are not emitted and their symbol resolves to the keeper.
    pub folded_into: Option<usize>,
}

impl BinaryFunction {
    /// Creates an empty simple function.
    pub fn new(name: impl Into<String>, address: u64) -> BinaryFunction {
        BinaryFunction {
            name: name.into(),
            address,
            is_simple: true,
            profile_accuracy: 1.0,
            section: bolt_elf_section_text(),
            ..BinaryFunction::default()
        }
    }

    /// Adds a block, returning its id.
    pub fn add_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        self.layout.push(id);
        id
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        self.layout.first().copied().unwrap_or(BlockId(0))
    }

    /// Whether instruction-mutating passes may rewrite this function.
    /// Layout passes gate on `is_simple` alone; everything that changes
    /// instructions must come through here, so a function demoted to
    /// [`OptTier::LayoutOnly`] by the quarantine ladder genuinely only
    /// gets its layout optimized on the retry. (Folded-function
    /// exclusion stays with the individual passes, exactly as before
    /// the ladder existed.)
    pub fn may_transform(&self) -> bool {
        self.is_simple && self.opt_tier == OptTier::Full
    }

    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Number of blocks currently in the layout.
    pub fn num_live_blocks(&self) -> usize {
        self.layout.len()
    }

    /// Total instruction count over live blocks.
    pub fn num_insts(&self) -> usize {
        self.layout
            .iter()
            .map(|id| self.block(*id).insts.len())
            .sum()
    }

    /// Whether the function has been split into hot and cold parts.
    pub fn is_split(&self) -> bool {
        self.cold_start.is_some()
    }

    /// Iterates over live blocks in layout order.
    pub fn iter_layout(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> + '_ {
        self.layout.iter().map(move |id| (*id, self.block(*id)))
    }

    /// The layout successor of `id` (the block physically after it).
    pub fn layout_next(&self, id: BlockId) -> Option<BlockId> {
        let pos = self.layout.iter().position(|b| *b == id)?;
        self.layout.get(pos + 1).copied()
    }

    /// Recomputes all predecessor lists from successor lists, including
    /// landing-pad `throwers`.
    pub fn rebuild_preds(&mut self) {
        for b in &mut self.blocks {
            b.preds.clear();
            b.throwers.clear();
        }
        let edges: Vec<(BlockId, BlockId)> = self
            .layout
            .iter()
            .flat_map(|&from| {
                self.block(from)
                    .succs
                    .iter()
                    .map(move |e| (from, e.block))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (from, to) in edges {
            if !self.blocks[to.index()].preds.contains(&from) {
                self.blocks[to.index()].preds.push(from);
            }
        }
        // Landing pads: collect throwers from call annotations.
        let throws: Vec<(BlockId, BlockId)> = self
            .layout
            .iter()
            .flat_map(|&from| {
                self.block(from)
                    .insts
                    .iter()
                    .filter_map(move |i| i.landing_pad.map(|lp| (from, lp)))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (from, lp) in throws {
            let b = &mut self.blocks[lp.index()];
            b.is_landing_pad = true;
            if !b.throwers.contains(&from) {
                b.throwers.push(from);
            }
        }
    }

    /// Blocks reachable from the entry following CFG edges and
    /// call→landing-pad edges.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.layout.is_empty() {
            return seen;
        }
        let mut q = VecDeque::new();
        let entry = self.entry();
        seen[entry.index()] = true;
        q.push_back(entry);
        while let Some(b) = q.pop_front() {
            let blk = self.block(b);
            let succ_iter = blk.succs.iter().map(|e| e.block);
            let lp_iter = blk.insts.iter().filter_map(|i| i.landing_pad);
            for next in succ_iter.chain(lp_iter) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    q.push_back(next);
                }
            }
        }
        seen
    }

    /// Reverse post-order over the CFG from the entry.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        if self.blocks.is_empty() {
            return Vec::new();
        }
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.layout.len());
        // Iterative DFS.
        let entry = self.entry();
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some((b, i)) = stack.pop() {
            let succs = &self.block(b).succs;
            if i < succs.len() {
                stack.push((b, i + 1));
                let next = succs[i].block;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post
    }

    /// Checks structural invariants; returns a human-readable violation if
    /// any. Used by tests and (in debug builds) after each pass.
    pub fn validate(&self) -> Result<(), String> {
        // Layout is a duplicate-free subset of block ids.
        let mut seen = vec![false; self.blocks.len()];
        for id in &self.layout {
            let i = id.index();
            if i >= self.blocks.len() {
                return Err(format!(
                    "{}: layout references missing block {id}",
                    self.name
                ));
            }
            if seen[i] {
                return Err(format!("{}: block {id} appears twice in layout", self.name));
            }
            seen[i] = true;
        }
        if let Some(cold) = self.cold_start {
            if cold == 0 || cold > self.layout.len() {
                return Err(format!("{}: invalid cold_start {cold}", self.name));
            }
        }
        for &id in &self.layout {
            let b = self.block(id);
            for e in &b.succs {
                if e.block.index() >= self.blocks.len() {
                    return Err(format!(
                        "{}: {id} has edge to missing block {}",
                        self.name, e.block
                    ));
                }
                if !seen[e.block.index()] {
                    return Err(format!(
                        "{}: {id} has edge to dead block {}",
                        self.name, e.block
                    ));
                }
            }
            // Terminator targets (labels encoded as block ids) must match
            // edges.
            if let Some(term) = b.terminator() {
                use bolt_isa::{Inst, Target};
                match term.inst {
                    Inst::Jcc { target, .. } | Inst::Jmp { target, .. } => {
                        if let Target::Label(l) = target {
                            let tgt = BlockId(l.0);
                            if b.succ_edge(tgt).is_none() {
                                return Err(format!(
                                    "{}: {id} branches to {tgt} without a CFG edge",
                                    self.name
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
            // Non-last terminators are a structural error.
            for inst in b.insts.iter().rev().skip(1) {
                if inst.inst.is_terminator() {
                    return Err(format!(
                        "{}: {id} has terminator in the middle of the block",
                        self.name
                    ));
                }
            }
        }
        for jt in &self.jump_tables {
            for t in &jt.targets {
                if t.index() >= self.blocks.len() || !seen[t.index()] {
                    return Err(format!(
                        "{}: jump table {} targets dead block {t}",
                        self.name, jt.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Sum of all taken-edge counts (used by dyno stats).
    pub fn total_edge_count(&self) -> u64 {
        self.layout.iter().map(|&id| self.block(id).outflow()).sum()
    }

    /// Hottest-first order of block ids by execution count.
    pub fn blocks_by_hotness(&self) -> Vec<BlockId> {
        let mut ids: Vec<BlockId> = self.layout.clone();
        ids.sort_by_key(|id| std::cmp::Reverse(self.block(*id).exec_count));
        ids
    }
}

fn bolt_elf_section_text() -> String {
    ".text".to_string()
}

/// Convenience: builds an edge list for tests.
pub fn edges(list: &[(u32, u64)]) -> Vec<SuccEdge> {
    list.iter()
        .map(|&(b, c)| SuccEdge::with_count(BlockId(b), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::{Cond, Inst, JumpWidth, Label, Reg, Target};

    /// A diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> BinaryFunction {
        let mut f = BinaryFunction::new("diamond", 0x400000);
        for _ in 0..4 {
            f.add_block(BasicBlock::new());
        }
        f.block_mut(BlockId(0)).push(Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(BlockId(0)).succs = edges(&[(2, 30), (1, 70)]);
        f.block_mut(BlockId(1)).push(Inst::Push(Reg::Rax));
        f.block_mut(BlockId(1)).succs = edges(&[(3, 70)]);
        f.block_mut(BlockId(2)).push(Inst::Push(Reg::Rbx));
        f.block_mut(BlockId(2)).succs = edges(&[(3, 30)]);
        f.block_mut(BlockId(3)).push(Inst::Ret);
        f.rebuild_preds();
        f
    }

    #[test]
    fn preds_rebuilt() {
        let f = diamond();
        assert_eq!(f.block(BlockId(3)).preds.len(), 2);
        assert_eq!(f.block(BlockId(0)).preds.len(), 0);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let rpo = f.reverse_post_order();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn reachability_sees_landing_pads() {
        let mut f = diamond();
        // Add a landing pad only reachable via a call annotation.
        let lp = f.add_block(BasicBlock::new());
        f.block_mut(lp).push(Inst::Ret);
        f.block_mut(lp).is_landing_pad = true;
        let call = crate::BinaryInst {
            inst: Inst::Call {
                target: Target::Addr(0x400100),
            },
            addr: 0,
            line: None,
            cfi: vec![],
            landing_pad: Some(lp),
        };
        f.block_mut(BlockId(1)).insts.insert(0, call);
        f.rebuild_preds();
        let reach = f.reachable();
        assert!(reach[lp.index()], "landing pad must be reachable");
        assert_eq!(f.block(lp).throwers, vec![BlockId(1)]);
    }

    #[test]
    fn validate_catches_violations() {
        let mut f = diamond();
        f.layout.push(BlockId(2));
        assert!(f.validate().unwrap_err().contains("twice"));

        let mut f = diamond();
        f.block_mut(BlockId(0)).succs = edges(&[(1, 70)]);
        assert!(f.validate().unwrap_err().contains("without a CFG edge"));

        let mut f = diamond();
        f.block_mut(BlockId(1))
            .insts
            .insert(0, crate::BinaryInst::new(Inst::Ret));
        assert!(f
            .validate()
            .unwrap_err()
            .contains("terminator in the middle"));
    }

    #[test]
    fn hotness_order() {
        let mut f = diamond();
        f.block_mut(BlockId(1)).exec_count = 70;
        f.block_mut(BlockId(2)).exec_count = 30;
        f.block_mut(BlockId(0)).exec_count = 100;
        f.block_mut(BlockId(3)).exec_count = 100;
        let hot = f.blocks_by_hotness();
        assert_eq!(hot[3], BlockId(2), "coldest block last");
    }
}
