//! Simplified debug-information tables: the line table (`.bolt.lines`,
//! standing in for DWARF `.debug_line`) and the exception table
//! (`.bolt.eh`, standing in for the LSDA). Both are emitted by the linker
//! and *rewritten* by BOLT when code moves (paper section 3.4).

use std::collections::BTreeMap;
use std::fmt;

/// Errors from parsing metadata sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    Truncated,
    BadUtf8,
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::Truncated => write!(f, "truncated metadata section"),
            MetaError::BadUtf8 => write!(f, "invalid UTF-8 in file name"),
        }
    }
}

impl std::error::Error for MetaError {}

/// Address → (file, line) mapping with a file-name table.
///
/// Entries are sorted by address; a lookup finds the last entry at or below
/// the queried address within the same entry's extent (entries are
/// per-instruction, so exact match is the norm).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LineTable {
    /// File names, indexed by `LineInfo::file`.
    pub files: Vec<String>,
    /// `(address, file, line)`, sorted by address.
    pub entries: Vec<(u64, u32, u32)>,
}

impl LineTable {
    pub fn new() -> LineTable {
        LineTable::default()
    }

    /// Interns a file name, returning its index.
    pub fn intern_file(&mut self, name: &str) -> u32 {
        if let Some(i) = self.files.iter().position(|f| f == name) {
            return i as u32;
        }
        self.files.push(name.to_string());
        (self.files.len() - 1) as u32
    }

    /// Records that the instruction at `addr` came from `file:line`.
    pub fn push(&mut self, addr: u64, file: u32, line: u32) {
        self.entries.push((addr, file, line));
    }

    /// Sorts entries by address (required before serialization/lookup).
    pub fn normalize(&mut self) {
        self.entries.sort_unstable();
        self.entries.dedup();
    }

    /// Exact-address lookup.
    pub fn lookup(&self, addr: u64) -> Option<(u32, u32)> {
        let i = self.entries.partition_point(|e| e.0 < addr);
        self.entries
            .get(i)
            .filter(|e| e.0 == addr)
            .map(|e| (e.1, e.2))
    }

    /// Human-readable `file:line` for an address.
    pub fn describe(&self, addr: u64) -> Option<String> {
        let (f, l) = self.lookup(addr)?;
        let name = self
            .files
            .get(f as usize)
            .map(String::as_str)
            .unwrap_or("?");
        Some(format!("{name}:{l}"))
    }

    /// Serializes to the `.bolt.lines` binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.files.len() as u32).to_le_bytes());
        for f in &self.files {
            out.extend_from_slice(&(f.len() as u32).to_le_bytes());
            out.extend_from_slice(f.as_bytes());
        }
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (a, f, l) in &self.entries {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&f.to_le_bytes());
            out.extend_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Parses the `.bolt.lines` binary format.
    ///
    /// # Errors
    ///
    /// Returns an error on truncated input or invalid UTF-8 file names.
    pub fn from_bytes(data: &[u8]) -> Result<LineTable, MetaError> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], MetaError> {
            let end = pos.checked_add(n).ok_or(MetaError::Truncated)?;
            let s = data.get(pos..end).ok_or(MetaError::Truncated)?;
            pos = end;
            Ok(s)
        };
        let mut t = LineTable::new();
        let nfiles = u32::from_le_bytes(take(4)?.try_into().unwrap());
        for _ in 0..nfiles {
            let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            let name = std::str::from_utf8(take(len)?).map_err(|_| MetaError::BadUtf8)?;
            t.files.push(name.to_string());
        }
        let nentries = u32::from_le_bytes(take(4)?.try_into().unwrap());
        for _ in 0..nentries {
            let a = u64::from_le_bytes(take(8)?.try_into().unwrap());
            let f = u32::from_le_bytes(take(4)?.try_into().unwrap());
            let l = u32::from_le_bytes(take(4)?.try_into().unwrap());
            t.entries.push((a, f, l));
        }
        Ok(t)
    }
}

/// The simplified exception table: maps call-site addresses to landing-pad
/// addresses. BOLT must keep this table correct when it moves either the
/// call site or the landing pad (paper sections 3.4 and split-eh).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExceptionTable {
    /// `call_site_addr -> landing_pad_addr`.
    pub entries: BTreeMap<u64, u64>,
}

impl ExceptionTable {
    pub fn new() -> ExceptionTable {
        ExceptionTable::default()
    }

    /// Registers a call site with its landing pad.
    pub fn add(&mut self, call_site: u64, landing_pad: u64) {
        self.entries.insert(call_site, landing_pad);
    }

    /// The landing pad for a call site, if registered.
    pub fn landing_pad_for(&self, call_site: u64) -> Option<u64> {
        self.entries.get(&call_site).copied()
    }

    /// Serializes to the `.bolt.eh` binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (cs, lp) in &self.entries {
            out.extend_from_slice(&cs.to_le_bytes());
            out.extend_from_slice(&lp.to_le_bytes());
        }
        out
    }

    /// Parses the `.bolt.eh` binary format.
    ///
    /// # Errors
    ///
    /// Returns an error on truncated input.
    pub fn from_bytes(data: &[u8]) -> Result<ExceptionTable, MetaError> {
        let mut t = ExceptionTable::new();
        let n = u32::from_le_bytes(
            data.get(..4)
                .ok_or(MetaError::Truncated)?
                .try_into()
                .unwrap(),
        ) as usize;
        let mut pos = 4;
        for _ in 0..n {
            let cs = u64::from_le_bytes(
                data.get(pos..pos + 8)
                    .ok_or(MetaError::Truncated)?
                    .try_into()
                    .unwrap(),
            );
            let lp = u64::from_le_bytes(
                data.get(pos + 8..pos + 16)
                    .ok_or(MetaError::Truncated)?
                    .try_into()
                    .unwrap(),
            );
            t.entries.insert(cs, lp);
            pos += 16;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_table_round_trip() {
        let mut t = LineTable::new();
        let f1 = t.intern_file("exception4.cpp");
        let f2 = t.intern_file("PointerIntPair.h");
        assert_eq!(t.intern_file("exception4.cpp"), f1, "interning dedups");
        t.push(0x400010, f1, 22);
        t.push(0x400000, f2, 152);
        t.normalize();
        let back = LineTable::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.lookup(0x400010), Some((f1, 22)));
        assert_eq!(back.describe(0x400000).unwrap(), "PointerIntPair.h:152");
        assert_eq!(back.lookup(0x400001), None);
    }

    #[test]
    fn exception_table_round_trip() {
        let mut t = ExceptionTable::new();
        t.add(0x400010, 0x400200);
        t.add(0x400050, 0x400220);
        let back = ExceptionTable::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.landing_pad_for(0x400010), Some(0x400200));
        assert_eq!(back.landing_pad_for(0x400011), None);
    }

    #[test]
    fn truncation_rejected() {
        let mut t = LineTable::new();
        t.intern_file("a.cpp");
        t.push(1, 0, 1);
        let bytes = t.to_bytes();
        assert_eq!(
            LineTable::from_bytes(&bytes[..bytes.len() - 1]),
            Err(MetaError::Truncated)
        );
        let mut e = ExceptionTable::new();
        e.add(1, 2);
        let bytes = e.to_bytes();
        assert_eq!(
            ExceptionTable::from_bytes(&bytes[..bytes.len() - 1]),
            Err(MetaError::Truncated)
        );
    }
}
