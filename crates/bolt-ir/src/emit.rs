//! Code emission with branch relaxation.
//!
//! This module is shared between the compiler substrate's linker and BOLT's
//! "emit and link functions" stage (paper Figure 3): it takes an ordered
//! list of functions whose blocks reference each other through global
//! [`Label`]s, chooses short/near branch encodings by iterative relaxation
//! (conditional branches are 2 vs 6 bytes on x86-64 — paper section 3.1),
//! assigns addresses, applies fixups, and reports everything needed to
//! rebuild symbol tables, line tables, and exception tables.

use crate::LineInfo;
use bolt_isa::{
    apply_fixup, encode_at, encoded_len, EncodeError, Fixup, FixupKind, Inst, JumpWidth, Label,
    Target,
};
use std::collections::HashMap;
use std::fmt;

/// An instruction queued for emission, with the metadata that must survive
/// relocation.
#[derive(Debug, Clone)]
pub struct EmitInst {
    pub inst: Inst,
    /// Source line to record in the output line table.
    pub line: Option<LineInfo>,
    /// Landing-pad label if this is a call site with an exception handler.
    pub eh_pad: Option<Label>,
}

impl EmitInst {
    pub fn new(inst: Inst) -> EmitInst {
        EmitInst {
            inst,
            line: None,
            eh_pad: None,
        }
    }
}

impl From<Inst> for EmitInst {
    fn from(inst: Inst) -> EmitInst {
        EmitInst::new(inst)
    }
}

/// A block of instructions with a globally unique label.
#[derive(Debug, Clone)]
pub struct EmitBlock {
    pub label: Label,
    /// Start alignment in bytes (1 = none). Padding is emitted as NOPs so
    /// fall-through execution stays valid, exactly like compiler alignment
    /// padding.
    pub align: u16,
    pub insts: Vec<EmitInst>,
}

impl EmitBlock {
    pub fn new(label: Label) -> EmitBlock {
        EmitBlock {
            label,
            align: 1,
            insts: Vec::new(),
        }
    }
}

/// A function queued for emission. Blocks from `cold_start` onward are
/// placed in the cold section (function splitting, paper section 3.2).
#[derive(Debug, Clone)]
pub struct EmitUnit {
    pub name: String,
    /// Function start alignment.
    pub align: u16,
    pub blocks: Vec<EmitBlock>,
    pub cold_start: Option<usize>,
}

impl EmitUnit {
    pub fn new(name: impl Into<String>) -> EmitUnit {
        EmitUnit {
            name: name.into(),
            align: 16,
            blocks: Vec::new(),
            cold_start: None,
        }
    }
}

/// A symbol produced by emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmitSymbol {
    pub name: String,
    pub addr: u64,
    pub size: u64,
    /// True for the `.cold` fragment of a split function.
    pub is_cold_fragment: bool,
}

/// A fixup applied during emission, recorded for `--emit-relocs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitReloc {
    /// Address of the patched field.
    pub at: u64,
    pub kind: FixupKind,
    pub label: Label,
}

/// The result of emitting a set of functions.
#[derive(Debug, Clone, Default)]
pub struct EmitResult {
    /// Hot code bytes, based at the `text_base` passed to [`emit_units`].
    pub text: Vec<u8>,
    /// Cold code bytes, based at `cold_base`.
    pub cold: Vec<u8>,
    /// Resolved code label addresses (every block label).
    pub label_addrs: HashMap<Label, u64>,
    /// Function symbols (hot fragments plus `.cold` fragments).
    pub symbols: Vec<EmitSymbol>,
    /// `(address, line)` pairs for the output line table.
    pub line_entries: Vec<(u64, LineInfo)>,
    /// `(call-site address, landing-pad label)` pairs for the output
    /// exception table.
    pub eh_entries: Vec<(u64, Label)>,
    /// Every label fixup applied, for relocation emission.
    pub relocs: Vec<EmitReloc>,
}

/// Errors produced by the emitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// A label was referenced but defined neither by a block nor by the
    /// external label map.
    UnresolvedLabel(Label),
    /// The last block of a section fragment can fall through.
    TrailingFallthrough { function: String },
    /// The encoder rejected an instruction.
    Encode(EncodeError),
    /// A block label was defined twice.
    DuplicateLabel(Label),
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::UnresolvedLabel(l) => write!(f, "unresolved label {l}"),
            EmitError::TrailingFallthrough { function } => {
                write!(f, "function {function} ends in a fall-through block")
            }
            EmitError::Encode(e) => write!(f, "encode error: {e}"),
            EmitError::DuplicateLabel(l) => write!(f, "label {l} defined twice"),
        }
    }
}

impl std::error::Error for EmitError {}

impl From<EncodeError> for EmitError {
    fn from(e: EncodeError) -> EmitError {
        EmitError::Encode(e)
    }
}

/// NOP padding bytes to reach `align` from `pos`.
fn pad_len(pos: u64, align: u16) -> u64 {
    if align <= 1 {
        return 0;
    }
    let a = align as u64;
    (a - pos % a) % a
}

fn push_nops(bytes: &mut Vec<u8>, mut n: u64) {
    while n > 0 {
        let chunk = n.min(9) as usize;
        bytes.extend_from_slice(bolt_isa::NOP_SEQUENCES[chunk - 1]);
        n -= chunk as u64;
    }
}

/// One placed instruction during layout.
struct Placed {
    /// Unit index, block index, instruction index.
    unit: usize,
    block: usize,
    inst: usize,
    /// Working width for relaxable branches.
    width: Option<JumpWidth>,
}

/// Emits `units` in order. Hot fragments go to a stream based at
/// `text_base`; blocks past each unit's `cold_start` go to a stream based
/// at `cold_base`. `extern_labels` resolves references to labels defined
/// outside the emitted code (data, PLT, GOT, unmodified functions).
///
/// Branch relaxation starts every label-targeted branch short and grows it
/// to near until a fixed point — growth is monotone, so this terminates.
///
/// # Errors
///
/// See [`EmitError`].
pub fn emit_units(
    units: &[EmitUnit],
    text_base: u64,
    cold_base: u64,
    extern_labels: &HashMap<Label, u64>,
) -> Result<EmitResult, EmitError> {
    // Gather label definitions and a linear placement list per stream.
    // stream 0 = hot, stream 1 = cold.
    let mut label_defined: HashMap<Label, ()> = HashMap::new();
    // (stream, unit, block) in placement order.
    let mut order: Vec<(usize, usize, usize)> = Vec::new();
    for (ui, u) in units.iter().enumerate() {
        let cold = u.cold_start.unwrap_or(u.blocks.len());
        for bi in 0..cold {
            order.push((0, ui, bi));
        }
    }
    for (ui, u) in units.iter().enumerate() {
        let cold = u.cold_start.unwrap_or(u.blocks.len());
        for bi in cold..u.blocks.len() {
            order.push((1, ui, bi));
        }
    }
    for u in units {
        for b in &u.blocks {
            if label_defined.insert(b.label, ()).is_some() {
                return Err(EmitError::DuplicateLabel(b.label));
            }
        }
    }

    // Working widths: all relaxable branches start Short.
    let mut placed: Vec<Placed> = Vec::new();
    for &(_, ui, bi) in &order {
        for (ii, inst) in units[ui].blocks[bi].insts.iter().enumerate() {
            let width = match inst.inst {
                Inst::Jcc { .. } | Inst::Jmp { .. } => Some(JumpWidth::Short),
                _ => None,
            };
            placed.push(Placed {
                unit: ui,
                block: bi,
                inst: ii,
                width,
            });
        }
    }

    // Relaxation loop: compute addresses with current widths, grow any
    // short branch whose target does not fit, repeat.
    let mut label_addrs: HashMap<Label, u64> = HashMap::new();
    let mut inst_addrs: Vec<u64> = vec![0; placed.len()];
    let mut inst_lens: Vec<u64> = vec![0; placed.len()];
    loop {
        // Address assignment pass.
        let mut pos = [text_base, cold_base];
        let mut pi = 0usize;
        let mut order_i = 0usize;
        while order_i < order.len() {
            let (stream, ui, bi) = order[order_i];
            let unit = &units[ui];
            let is_fragment_start = bi == 0 || unit.cold_start == Some(bi);
            let align = if is_fragment_start {
                unit.align.max(1)
            } else {
                unit.blocks[bi].align.max(1)
            };
            pos[stream] += pad_len(pos[stream], align);
            label_addrs.insert(unit.blocks[bi].label, pos[stream]);
            for inst in &unit.blocks[bi].insts {
                let mut working = inst.inst;
                if let Some(w) = placed[pi].width {
                    set_width(&mut working, w);
                }
                let len = encoded_len(&working) as u64;
                inst_addrs[pi] = pos[stream];
                inst_lens[pi] = len;
                pos[stream] += len;
                pi += 1;
            }
            order_i += 1;
        }

        // Width check pass.
        let mut grew = false;
        for (pi, p) in placed.iter_mut().enumerate() {
            if p.width != Some(JumpWidth::Short) {
                continue;
            }
            let inst = &units[p.unit].blocks[p.block].insts[p.inst].inst;
            let target = inst.target().expect("relaxable branches have targets");
            let target_addr = match target {
                Target::Addr(a) => Some(a),
                Target::Label(l) => label_addrs
                    .get(&l)
                    .copied()
                    .or_else(|| extern_labels.get(&l).copied()),
            };
            let Some(to) = target_addr else {
                return Err(EmitError::UnresolvedLabel(
                    target.label().expect("address targets always resolve"),
                ));
            };
            let end = inst_addrs[pi] + inst_lens[pi];
            let rel = to.wrapping_sub(end) as i64;
            if i8::try_from(rel).is_err() {
                p.width = Some(JumpWidth::Near);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Final encoding pass.
    let resolve = |l: Label| -> Result<u64, EmitError> {
        label_addrs
            .get(&l)
            .or_else(|| extern_labels.get(&l))
            .copied()
            .ok_or(EmitError::UnresolvedLabel(l))
    };

    let mut result = EmitResult::default();
    let mut streams: [Vec<u8>; 2] = [Vec::new(), Vec::new()];
    let bases = [text_base, cold_base];
    let mut pi = 0usize;
    // Track per-fragment symbol extents: (unit, is_cold) -> (start, end).
    let mut frag_bounds: HashMap<(usize, bool), (u64, u64)> = HashMap::new();

    for &(stream, ui, bi) in &order {
        let unit = &units[ui];
        let block = &unit.blocks[bi];
        let buf = &mut streams[stream];
        let cur_addr = bases[stream] + buf.len() as u64;
        let target_addr = label_addrs[&block.label];
        debug_assert!(target_addr >= cur_addr);
        push_nops(buf, target_addr - cur_addr);

        let is_cold = stream == 1;
        let entry = frag_bounds
            .entry((ui, is_cold))
            .or_insert((target_addr, target_addr));
        entry.1 = entry.1.max(target_addr);

        for einst in &block.insts {
            let addr = inst_addrs[pi];
            debug_assert_eq!(addr, bases[stream] + buf.len() as u64);
            let mut working = einst.inst;
            if let Some(w) = placed[pi].width {
                set_width(&mut working, w);
            }
            let enc = encode_at(&working, addr)?;
            let mut bytes = enc.bytes;
            for f in &enc.fixups {
                let to = resolve(f.label)?;
                apply_one(&mut bytes, f, addr, to)?;
                result.relocs.push(EmitReloc {
                    at: addr + f.offset as u64,
                    kind: f.kind,
                    label: f.label,
                });
            }
            if let Some(line) = einst.line {
                result.line_entries.push((addr, line));
            }
            if let Some(pad) = einst.eh_pad {
                result.eh_entries.push((addr, pad));
            }
            buf.extend_from_slice(&bytes);
            pi += 1;
        }
        let end = bases[stream] + buf.len() as u64;
        frag_bounds
            .get_mut(&(ui, is_cold))
            .expect("just inserted")
            .1 = end;
    }

    // Fall-through validation: the last block of each fragment must not
    // fall through (callers are responsible for terminating layouts).
    let mut last_of_stream: [Option<(usize, usize)>; 2] = [None, None];
    for &(stream, ui, bi) in &order {
        last_of_stream[stream] = Some((ui, bi));
    }
    for &(_, (ui, bi)) in last_of_stream
        .iter()
        .flatten()
        .enumerate()
        .collect::<Vec<_>>()
        .iter()
    {
        let block = &units[*ui].blocks[*bi];
        let falls = match block.insts.last() {
            None => true,
            Some(i) => {
                !i.inst.is_uncond_branch()
                    && !i.inst.is_return()
                    && !matches!(i.inst, Inst::JmpInd { .. } | Inst::Ud2)
            }
        };
        if falls {
            return Err(EmitError::TrailingFallthrough {
                function: units[*ui].name.clone(),
            });
        }
    }

    // Symbols.
    for (ui, u) in units.iter().enumerate() {
        if let Some((start, end)) = frag_bounds.get(&(ui, false)) {
            result.symbols.push(EmitSymbol {
                name: u.name.clone(),
                addr: *start,
                size: end - start,
                is_cold_fragment: false,
            });
        }
        if let Some((start, end)) = frag_bounds.get(&(ui, true)) {
            result.symbols.push(EmitSymbol {
                name: format!("{}.cold", u.name),
                addr: *start,
                size: end - start,
                is_cold_fragment: true,
            });
        }
    }

    result.text = std::mem::take(&mut streams[0]);
    result.cold = std::mem::take(&mut streams[1]);
    result.label_addrs = label_addrs;
    result.line_entries.sort_unstable_by_key(|e| e.0);
    Ok(result)
}

fn set_width(inst: &mut Inst, w: JumpWidth) {
    match inst {
        Inst::Jcc { width, .. } | Inst::Jmp { width, .. } => *width = w,
        _ => {}
    }
}

fn apply_one(bytes: &mut [u8], f: &Fixup, addr: u64, to: u64) -> Result<(), EmitError> {
    let len = bytes.len();
    apply_fixup(bytes, f, addr, len, to)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::{decode_all, Cond, Reg};

    fn label(n: u32) -> Label {
        Label(n)
    }

    /// Two blocks, forward short jump.
    #[test]
    fn short_branch_selected_when_close() {
        let mut unit = EmitUnit::new("f");
        unit.align = 1;
        let mut b0 = EmitBlock::new(label(0));
        b0.insts.push(
            Inst::Jcc {
                cond: Cond::E,
                target: Target::Label(label(1)),
                width: JumpWidth::Near,
            }
            .into(),
        );
        b0.insts.push(Inst::Ret.into());
        let mut b1 = EmitBlock::new(label(1));
        b1.insts.push(Inst::Ret.into());
        unit.blocks = vec![b0, b1];
        let r = emit_units(&[unit], 0x400000, 0x600000, &HashMap::new()).unwrap();
        // jcc short (2) + ret (1) + ret (1).
        assert_eq!(r.text.len(), 4);
        let decoded = decode_all(&r.text, 0x400000).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(
            decoded[0].1.inst.target(),
            Some(Target::Addr(r.label_addrs[&label(1)]))
        );
    }

    /// A jump over ~200 bytes of padding must relax to near.
    #[test]
    fn long_branch_relaxes_to_near() {
        let mut unit = EmitUnit::new("f");
        unit.align = 1;
        let mut b0 = EmitBlock::new(label(0));
        b0.insts.push(
            Inst::Jmp {
                target: Target::Label(label(2)),
                width: JumpWidth::Short,
            }
            .into(),
        );
        let mut b1 = EmitBlock::new(label(1));
        for _ in 0..40 {
            b1.insts.push(Inst::Nop { len: 9 }.into());
        }
        b1.insts.push(Inst::Ret.into());
        let mut b2 = EmitBlock::new(label(2));
        b2.insts.push(Inst::Ret.into());
        unit.blocks = vec![b0, b1, b2];
        let r = emit_units(&[unit], 0x400000, 0x600000, &HashMap::new()).unwrap();
        let decoded = decode_all(&r.text, 0x400000).unwrap();
        // First instruction must be the 5-byte near jmp, landing exactly on
        // label 2.
        assert_eq!(decoded[0].1.len, 5);
        assert_eq!(
            decoded[0].1.inst.target(),
            Some(Target::Addr(r.label_addrs[&label(2)]))
        );
    }

    #[test]
    fn cold_split_goes_to_cold_stream() {
        let mut unit = EmitUnit::new("split_me");
        unit.align = 16;
        let mut b0 = EmitBlock::new(label(0));
        b0.insts.push(
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Label(label(1)),
                width: JumpWidth::Short,
            }
            .into(),
        );
        b0.insts.push(Inst::Ret.into());
        let mut b1 = EmitBlock::new(label(1)); // cold
        b1.insts.push(Inst::Ret.into());
        unit.blocks = vec![b0, b1];
        unit.cold_start = Some(1);
        let r = emit_units(&[unit], 0x400000, 0x600000, &HashMap::new()).unwrap();
        assert!(!r.cold.is_empty());
        assert_eq!(r.label_addrs[&label(1)], 0x600000);
        // Hot->cold branch must be near (distance is 2MB).
        let decoded = decode_all(&r.text, 0x400000).unwrap();
        assert_eq!(decoded[0].1.len, 6);
        // Two symbols: hot fragment and .cold fragment.
        let names: Vec<&str> = r.symbols.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"split_me"));
        assert!(names.contains(&"split_me.cold"));
    }

    #[test]
    fn alignment_pads_with_nops() {
        let mut unit = EmitUnit::new("a");
        unit.align = 1;
        let mut b0 = EmitBlock::new(label(0));
        b0.insts.push(Inst::Push(Reg::Rbp).into()); // 1 byte
        let mut b1 = EmitBlock::new(label(1));
        b1.align = 16;
        b1.insts.push(Inst::Ret.into());
        unit.blocks = vec![b0, b1];
        let r = emit_units(&[unit], 0x400000, 0x600000, &HashMap::new()).unwrap();
        assert_eq!(r.label_addrs[&label(1)] % 16, 0);
        // Everything still decodes (padding is NOPs).
        let decoded = decode_all(&r.text, 0x400000).unwrap();
        assert!(decoded
            .iter()
            .any(|(_, d)| matches!(d.inst, Inst::Nop { .. })));
    }

    #[test]
    fn extern_labels_and_reloc_records() {
        let mut ext = HashMap::new();
        ext.insert(label(100), 0x700010u64); // some rodata
        let mut unit = EmitUnit::new("f");
        unit.align = 1;
        let mut b0 = EmitBlock::new(label(0));
        b0.insts.push(
            Inst::Load {
                dst: Reg::Rax,
                mem: bolt_isa::Mem::rip(Target::Label(label(100))),
            }
            .into(),
        );
        b0.insts.push(Inst::Ret.into());
        unit.blocks = vec![b0];
        let r = emit_units(&[unit], 0x400000, 0x600000, &ext).unwrap();
        let decoded = decode_all(&r.text, 0x400000).unwrap();
        match decoded[0].1.inst {
            Inst::Load {
                mem: bolt_isa::Mem::RipRel { target },
                ..
            } => {
                assert_eq!(target, Target::Addr(0x700010));
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.relocs.len(), 1);
        assert_eq!(r.relocs[0].label, label(100));
    }

    #[test]
    fn unresolved_label_is_error() {
        let mut unit = EmitUnit::new("f");
        let mut b0 = EmitBlock::new(label(0));
        b0.insts.push(
            Inst::Call {
                target: Target::Label(label(999)),
            }
            .into(),
        );
        b0.insts.push(Inst::Ret.into());
        unit.blocks = vec![b0];
        assert_eq!(
            emit_units(&[unit], 0x400000, 0x600000, &HashMap::new()).unwrap_err(),
            EmitError::UnresolvedLabel(label(999))
        );
    }

    #[test]
    fn trailing_fallthrough_rejected() {
        let mut unit = EmitUnit::new("f");
        let mut b0 = EmitBlock::new(label(0));
        b0.insts.push(Inst::Push(Reg::Rax).into());
        unit.blocks = vec![b0];
        assert!(matches!(
            emit_units(&[unit], 0x400000, 0x600000, &HashMap::new()),
            Err(EmitError::TrailingFallthrough { .. })
        ));
    }

    #[test]
    fn line_and_eh_metadata_carried() {
        let mut unit = EmitUnit::new("f");
        unit.align = 1;
        let mut b0 = EmitBlock::new(label(0));
        let mut call = EmitInst::new(Inst::Call {
            target: Target::Label(label(1)),
        });
        call.line = Some(LineInfo { file: 0, line: 22 });
        call.eh_pad = Some(label(1));
        b0.insts.push(call);
        b0.insts.push(Inst::Ret.into());
        let mut b1 = EmitBlock::new(label(1));
        b1.insts.push(Inst::Ret.into());
        unit.blocks = vec![b0, b1];
        let r = emit_units(&[unit], 0x400000, 0x600000, &HashMap::new()).unwrap();
        assert_eq!(r.line_entries.len(), 1);
        assert_eq!(
            r.line_entries[0],
            (0x400000, LineInfo { file: 0, line: 22 })
        );
        assert_eq!(r.eh_entries.len(), 1);
        assert_eq!(r.eh_entries[0].0, 0x400000);
        assert_eq!(r.eh_entries[0].1, label(1));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut unit = EmitUnit::new("f");
        let mut b0 = EmitBlock::new(label(0));
        b0.insts.push(Inst::Ret.into());
        let mut b1 = EmitBlock::new(label(0));
        b1.insts.push(Inst::Ret.into());
        unit.blocks = vec![b0, b1];
        assert_eq!(
            emit_units(&[unit], 0x400000, 0x600000, &HashMap::new()).unwrap_err(),
            EmitError::DuplicateLabel(label(0))
        );
    }
}
