//! The whole-binary rewriting context shared by passes.

use crate::{BinaryFunction, ExceptionTable, LineTable};
use std::collections::{BTreeMap, HashMap};

/// Read-only data the rewriter needs beyond per-function CFGs: read-only
/// sections (for jump tables and `simplify-ro-loads`), PLT stub
/// resolution, and the metadata tables being rewritten.
#[derive(Debug, Clone, Default)]
pub struct BinaryContext {
    /// All functions, simple or not.
    pub functions: Vec<BinaryFunction>,
    /// Function index by name (includes ICF aliases).
    pub by_name: HashMap<String, usize>,
    /// Function index by start address.
    pub by_addr: BTreeMap<u64, usize>,
    /// Read-only data ranges: `(start_addr, bytes)`.
    pub rodata: Vec<(u64, Vec<u8>)>,
    /// PLT stub address → final target function name.
    pub plt_stubs: HashMap<u64, String>,
    /// The line table read from `.bolt.lines`.
    pub lines: LineTable,
    /// The exception table read from `.bolt.eh`.
    pub exceptions: ExceptionTable,
    /// Program entry point.
    pub entry: u64,
    /// Weighted call-graph edges recovered from the profile:
    /// `(caller index, callee index) -> count`.
    pub call_graph: HashMap<(usize, usize), u64>,
    /// Indirect-call target profile for ICP:
    /// `call-site address -> [(callee index, count)]`.
    pub indirect_call_targets: HashMap<u64, Vec<(usize, u64)>>,
}

impl BinaryContext {
    pub fn new() -> BinaryContext {
        BinaryContext::default()
    }

    /// Adds a function and indexes it.
    pub fn add_function(&mut self, func: BinaryFunction) -> usize {
        let idx = self.functions.len();
        self.by_name.insert(func.name.clone(), idx);
        self.by_addr.insert(func.address, idx);
        self.functions.push(func);
        idx
    }

    /// Rebuilds both indices (after passes rename/fold functions).
    /// Folded functions resolve by name to their fold keeper.
    pub fn reindex(&mut self) {
        self.by_name.clear();
        self.by_addr.clear();
        for (i, f) in self.functions.iter().enumerate() {
            self.by_addr.insert(f.address, i);
            if f.folded_into.is_none() {
                self.by_name.insert(f.name.clone(), i);
                for alias in &f.icf_aliases {
                    self.by_name.insert(alias.clone(), i);
                }
            }
        }
        // Names of folded functions resolve through the fold chain.
        for i in 0..self.functions.len() {
            if self.functions[i].folded_into.is_some() {
                let mut k = i;
                while let Some(next) = self.functions[k].folded_into {
                    k = next;
                }
                self.by_name.insert(self.functions[i].name.clone(), k);
            }
        }
    }

    /// Function lookup by name (following ICF aliases).
    pub fn function_by_name(&self, name: &str) -> Option<&BinaryFunction> {
        self.by_name.get(name).map(|&i| &self.functions[i])
    }

    /// The function whose address range contains `addr`, if any.
    pub fn function_at(&self, addr: u64) -> Option<usize> {
        let (_, &idx) = self.by_addr.range(..=addr).next_back()?;
        let f = &self.functions[idx];
        if addr < f.address + f.size.max(1) {
            Some(idx)
        } else {
            None
        }
    }

    /// Reads bytes from read-only data at a virtual address.
    pub fn read_rodata(&self, addr: u64, len: usize) -> Option<&[u8]> {
        for (start, data) in &self.rodata {
            if addr >= *start {
                let off = (addr - start) as usize;
                if off + len <= data.len() {
                    return Some(&data[off..off + len]);
                }
            }
        }
        None
    }

    /// Reads a u64 from read-only data.
    pub fn read_rodata_u64(&self, addr: u64) -> Option<u64> {
        self.read_rodata(addr, 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Whether an address falls in read-only data.
    pub fn is_rodata_addr(&self, addr: u64) -> bool {
        self.read_rodata(addr, 1).is_some()
    }

    /// Total profile samples across all functions.
    pub fn total_exec_count(&self) -> u64 {
        self.functions.iter().map(|f| f.exec_count).sum()
    }

    /// Simple functions eligible for rewriting, hottest first.
    pub fn simple_functions_by_hotness(&self) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.functions.len())
            .filter(|&i| self.functions[i].is_simple)
            .collect();
        v.sort_by_key(|&i| std::cmp::Reverse(self.functions[i].exec_count));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_lookup_respects_ranges() {
        let mut ctx = BinaryContext::new();
        let mut f1 = BinaryFunction::new("a", 0x400000);
        f1.size = 0x20;
        let mut f2 = BinaryFunction::new("b", 0x400100);
        f2.size = 0x10;
        ctx.add_function(f1);
        ctx.add_function(f2);
        assert_eq!(ctx.function_at(0x400000), Some(0));
        assert_eq!(ctx.function_at(0x40001F), Some(0));
        assert_eq!(ctx.function_at(0x400020), None, "gap between functions");
        assert_eq!(ctx.function_at(0x400105), Some(1));
        assert_eq!(ctx.function_at(0x3FFFFF), None);
    }

    #[test]
    fn rodata_reads() {
        let mut ctx = BinaryContext::new();
        ctx.rodata.push((0x500000, vec![1, 0, 0, 0, 0, 0, 0, 0, 2]));
        assert_eq!(ctx.read_rodata_u64(0x500000), Some(1));
        assert!(ctx.is_rodata_addr(0x500008));
        assert!(!ctx.is_rodata_addr(0x500009));
        assert_eq!(ctx.read_rodata_u64(0x500002), None);
    }

    #[test]
    fn reindex_follows_aliases() {
        let mut ctx = BinaryContext::new();
        let mut f = BinaryFunction::new("original", 0x400000);
        f.icf_aliases.push("folded_twin".into());
        ctx.add_function(f);
        ctx.reindex();
        assert!(ctx.function_by_name("folded_twin").is_some());
        assert_eq!(
            ctx.function_by_name("folded_twin").unwrap().name,
            "original"
        );
    }
}
