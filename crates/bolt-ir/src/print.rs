//! CFG pretty-printer producing dumps in the style of paper Figure 4.

use crate::{BinaryFunction, LineTable};
use std::fmt::Write;

/// Options controlling [`dump_function`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DumpOptions {
    /// Print per-instruction source lines when a line table is provided.
    pub print_debug_info: bool,
}

/// Renders a function's CFG in the BOLT dump format (paper Figure 4):
/// a header block with function-level facts followed by each basic block
/// with its instructions, successor edges, and landing-pad links.
pub fn dump_function(
    func: &BinaryFunction,
    lines: Option<&LineTable>,
    opts: DumpOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Binary Function \"{}\" {{", func.name);
    let _ = writeln!(out, "  State       : CFG constructed");
    let _ = writeln!(out, "  Address     : {:#x}", func.address);
    let _ = writeln!(out, "  Size        : {:#x}", func.size);
    let _ = writeln!(out, "  Section     : {}", func.section);
    let _ = writeln!(out, "  IsSimple    : {}", u8::from(func.is_simple));
    let _ = writeln!(out, "  IsSplit     : {}", u8::from(func.is_split()));
    let _ = writeln!(out, "  BB Count    : {}", func.num_live_blocks());
    let cfi_count: usize = func
        .layout
        .iter()
        .map(|&id| {
            func.block(id)
                .insts
                .iter()
                .map(|i| i.cfi.len())
                .sum::<usize>()
        })
        .sum();
    let _ = writeln!(out, "  CFI Instrs  : {cfi_count}");
    let layout_names: Vec<String> = func.layout.iter().map(|b| b.to_string()).collect();
    let _ = writeln!(out, "  BB Layout   : {}", layout_names.join(", "));
    let _ = writeln!(out, "  Exec Count  : {}", func.exec_count);
    let _ = writeln!(out, "  Profile Acc : {:.1}%", func.profile_accuracy * 100.0);
    let _ = writeln!(out, "}}");

    for (id, b) in func.iter_layout() {
        let _ = writeln!(
            out,
            "{id} ({} instructions, align : {})",
            b.insts.len(),
            b.alignment
        );
        if id == func.entry() {
            let _ = writeln!(out, "  Entry Point");
        }
        if b.is_landing_pad {
            let _ = writeln!(out, "  Landing Pad");
        }
        let _ = writeln!(out, "  Exec Count : {}", b.exec_count);
        if !b.preds.is_empty() {
            let preds: Vec<String> = b.preds.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(out, "  Predecessors: {}", preds.join(", "));
        }
        if !b.throwers.is_empty() {
            let ts: Vec<String> = b.throwers.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(out, "  Throwers: {}", ts.join(", "));
        }
        let mut offset = 0u64;
        for inst in &b.insts {
            let mut line = format!("    {offset:08x}: {}", inst.inst);
            if let Some(lp) = inst.landing_pad {
                line.push_str(&format!(" # handler: {lp}"));
            }
            if opts.print_debug_info {
                if let Some(li) = inst.line {
                    let desc = lines
                        .and_then(|t| {
                            t.files
                                .get(li.file as usize)
                                .map(|f| format!("{f}:{}", li.line))
                        })
                        .unwrap_or_else(|| li.to_string());
                    line.push_str(&format!(" # {desc}"));
                }
            }
            let _ = writeln!(out, "{line}");
            for cfi in &inst.cfi {
                let _ = writeln!(out, "    !CFI ; {cfi}");
            }
            offset += bolt_isa::encoded_len(&inst.inst) as u64;
        }
        if !b.succs.is_empty() {
            let succs: Vec<String> = b
                .succs
                .iter()
                .map(|e| format!("{} (mispreds: {}, count: {})", e.block, e.mispreds, e.count))
                .collect();
            let _ = writeln!(out, "  Successors: {}", succs.join(", "));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasicBlock, BinaryInst, BlockId, LineInfo, SuccEdge};
    use bolt_isa::{Inst, Reg, Target};

    #[test]
    fn dump_contains_figure4_elements() {
        let mut f = BinaryFunction::new("_Z11filter_onlyi", 0x400ab1);
        f.exec_count = 104;
        f.size = 0x2f;
        let b0 = f.add_block(BasicBlock::new());
        let lp = f.add_block(BasicBlock::new());
        let mut call = BinaryInst::new(Inst::Call {
            target: Target::Addr(0x400100),
        });
        call.landing_pad = Some(lp);
        call.line = Some(LineInfo { file: 0, line: 23 });
        f.block_mut(b0).push(BinaryInst::new(Inst::Push(Reg::Rbp)));
        f.block_mut(b0).insts.push(call);
        f.block_mut(b0).exec_count = 104;
        f.block_mut(b0).succs = vec![SuccEdge::with_count(BlockId(1), 4)];
        f.block_mut(lp).push(Inst::Ret);
        f.block_mut(lp).exec_count = 4;
        f.rebuild_preds();

        let mut lt = LineTable::new();
        lt.intern_file("exception4.cpp");
        let s = dump_function(
            &f,
            Some(&lt),
            DumpOptions {
                print_debug_info: true,
            },
        );
        assert!(s.contains("Binary Function \"_Z11filter_onlyi\""));
        assert!(s.contains("Exec Count  : 104"));
        assert!(s.contains("Entry Point"));
        assert!(s.contains("Landing Pad"));
        assert!(s.contains("handler: .BB1"));
        assert!(s.contains("exception4.cpp:23"));
        assert!(s.contains("Successors: .BB1 (mispreds: 0, count: 4)"));
        assert!(s.contains("Throwers: .BB0"));
    }
}
