//! # bolt-ir — the binary intermediate representation
//!
//! The data structures BOLT's rewriting pipeline operates on (paper
//! sections 3.3–3.4): functions reconstructed from a binary
//! ([`BinaryFunction`]), their basic blocks and weighted CFG edges
//! ([`BasicBlock`], [`SuccEdge`]), annotated machine instructions
//! ([`BinaryInst`] — the `MCInst`-with-annotations analogue, carrying CFI
//! placeholders, source lines and landing-pad links), plus:
//!
//! * a dataflow framework ([`dataflow`]) with register liveness and
//!   dominators (paper section 4),
//! * the metadata tables BOLT must rewrite when code moves
//!   ([`LineTable`], [`ExceptionTable`]),
//! * a whole-binary context shared by passes ([`BinaryContext`]),
//! * a CFG pretty-printer in the style of paper Figure 4 ([`mod@print`]).
//!
//! ## Example
//!
//! ```
//! use bolt_ir::{BasicBlock, BinaryFunction, BlockId, SuccEdge};
//! use bolt_isa::{Inst, Reg};
//!
//! let mut f = BinaryFunction::new("hot_loop", 0x400000);
//! let b0 = f.add_block(BasicBlock::new());
//! let b1 = f.add_block(BasicBlock::new());
//! f.block_mut(b0).push(Inst::Push(Reg::Rbp));
//! f.block_mut(b0).succs = vec![SuccEdge::with_count(b1, 100)];
//! f.block_mut(b1).push(Inst::Ret);
//! f.rebuild_preds();
//! assert!(f.validate().is_ok());
//! assert_eq!(f.entry(), BlockId(0));
//! ```

mod block;
mod context;
pub mod dataflow;
pub mod emit;
mod function;
mod inst;
mod meta;
pub mod print;

pub use block::{BasicBlock, BlockId, SuccEdge};
pub use context::BinaryContext;
pub use dataflow::{
    dominators, live_before_each, solve, BlockFacts, CalleeClobbered, DataflowProblem, Direction,
    Liveness, RegSet,
};
pub use emit::{
    emit_units, EmitBlock, EmitError, EmitInst, EmitReloc, EmitResult, EmitSymbol, EmitUnit,
};
pub use function::{edges, BinaryFunction, JumpTable, NonSimpleReason, OptTier};
pub use inst::{BinaryInst, CfiOp, LineInfo};
pub use meta::{ExceptionTable, LineTable, MetaError};
pub use print::{dump_function, DumpOptions};
