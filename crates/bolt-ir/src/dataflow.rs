//! Dataflow-analysis framework (paper section 4: "BOLT is also equipped
//! with a dataflow-analysis framework to feed information to passes that
//! need it", e.g. register liveness, as in Ispike).

use crate::{BinaryFunction, BlockId};
use bolt_isa::Reg;
use std::fmt;

/// A set of general-purpose registers, represented as a 16-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(pub u16);

impl RegSet {
    pub const EMPTY: RegSet = RegSet(0);

    /// The full set of sixteen registers.
    pub const ALL: RegSet = RegSet(u16::MAX);

    pub fn singleton(r: Reg) -> RegSet {
        RegSet(1 << r.num())
    }

    pub fn from_regs(regs: impl IntoIterator<Item = Reg>) -> RegSet {
        let mut s = RegSet::EMPTY;
        for r in regs {
            s.insert(r);
        }
        s
    }

    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.num()) != 0
    }

    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.num();
    }

    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.num());
    }

    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    pub fn minus(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    pub fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..16u8).filter_map(move |n| {
            if self.0 & (1 << n) != 0 {
                Reg::from_num(n)
            } else {
                None
            }
        })
    }

    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
}

/// A gen/kill dataflow problem over [`RegSet`] lattices joined by union.
pub trait DataflowProblem {
    /// Analysis direction.
    fn direction(&self) -> Direction;

    /// Per-instruction transfer: returns (gen, kill) sets.
    fn transfer(&self, inst: &crate::BinaryInst) -> (RegSet, RegSet);

    /// Boundary value at exit blocks (backward) or the entry (forward).
    fn boundary(&self) -> RegSet {
        RegSet::EMPTY
    }
}

/// Per-block dataflow results.
#[derive(Debug, Clone, Default)]
pub struct BlockFacts {
    /// Fact at block entry.
    pub entry: RegSet,
    /// Fact at block exit.
    pub exit: RegSet,
}

/// Solves a gen/kill problem with a worklist over the function CFG.
///
/// Returns facts indexed by block id. Unreachable blocks get the boundary
/// value.
pub fn solve<P: DataflowProblem>(func: &BinaryFunction, problem: &P) -> Vec<BlockFacts> {
    let n = func.blocks.len();
    let mut facts = vec![BlockFacts::default(); n];
    for f in &mut facts {
        f.entry = problem.boundary();
        f.exit = problem.boundary();
    }

    // Precompute per-block transfer by composing instruction transfers.
    // For IN = f(OUT) style composition over RegSet gen/kill:
    //   forward:  out = gen U (in - kill), applied first-to-last
    //   backward: in  = gen U (out - kill), applied last-to-first
    let apply_block = |id: BlockId, input: RegSet| -> RegSet {
        let b = func.block(id);
        let mut cur = input;
        match problem.direction() {
            Direction::Forward => {
                for inst in &b.insts {
                    let (g, k) = problem.transfer(inst);
                    cur = g.union(cur.minus(k));
                }
            }
            Direction::Backward => {
                for inst in b.insts.iter().rev() {
                    let (g, k) = problem.transfer(inst);
                    cur = g.union(cur.minus(k));
                }
            }
        }
        cur
    };

    let mut work: Vec<BlockId> = func.layout.clone();
    let mut on_work = vec![false; n];
    for id in &work {
        on_work[id.index()] = true;
    }

    while let Some(id) = work.pop() {
        on_work[id.index()] = false;
        match problem.direction() {
            Direction::Forward => {
                // entry = union of preds' exits.
                let mut input = if id == func.entry() {
                    problem.boundary()
                } else {
                    RegSet::EMPTY
                };
                for p in &func.block(id).preds {
                    input = input.union(facts[p.index()].exit);
                }
                let out = apply_block(id, input);
                facts[id.index()].entry = input;
                if out != facts[id.index()].exit {
                    facts[id.index()].exit = out;
                    for e in &func.block(id).succs {
                        if !on_work[e.block.index()] {
                            on_work[e.block.index()] = true;
                            work.push(e.block);
                        }
                    }
                }
            }
            Direction::Backward => {
                // exit = union of succs' entries (+ landing pads' entries).
                let blk = func.block(id);
                let mut output = if blk.succs.is_empty() {
                    problem.boundary()
                } else {
                    RegSet::EMPTY
                };
                for e in &blk.succs {
                    output = output.union(facts[e.block.index()].entry);
                }
                for lp in blk.insts.iter().filter_map(|i| i.landing_pad) {
                    output = output.union(facts[lp.index()].entry);
                }
                let inp = apply_block(id, output);
                facts[id.index()].exit = output;
                if inp != facts[id.index()].entry {
                    facts[id.index()].entry = inp;
                    for p in &blk.preds {
                        if !on_work[p.index()] {
                            on_work[p.index()] = true;
                            work.push(*p);
                        }
                    }
                    for t in &blk.throwers {
                        if !on_work[t.index()] {
                            on_work[t.index()] = true;
                            work.push(*t);
                        }
                    }
                }
            }
        }
    }
    facts
}

/// Register liveness (backward may-analysis).
///
/// Calls are treated conservatively: they read argument registers and
/// define the caller-saved set; returns read `%rax` plus callee-saved
/// registers (the caller's expectations).
pub struct Liveness;

impl DataflowProblem for Liveness {
    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn transfer(&self, inst: &crate::BinaryInst) -> (RegSet, RegSet) {
        use bolt_isa::Inst;
        match &inst.inst {
            Inst::Call { .. } | Inst::CallInd { .. } => {
                let mut gen = RegSet::from_regs(Reg::ARGS);
                if let Inst::CallInd { rm } = &inst.inst {
                    match rm {
                        bolt_isa::Rm::Reg(r) => gen.insert(*r),
                        bolt_isa::Rm::Mem(m) => {
                            for r in m.regs_used() {
                                gen.insert(r);
                            }
                        }
                    }
                }
                (gen, RegSet::from_regs(Reg::CALLER_SAVED))
            }
            Inst::Ret | Inst::RepzRet => {
                let mut gen = RegSet::from_regs(Reg::CALLEE_SAVED);
                gen.insert(Reg::Rax);
                gen.insert(Reg::Rsp);
                (gen, RegSet::EMPTY)
            }
            Inst::Syscall => {
                let mut gen = RegSet::from_regs([Reg::Rax, Reg::Rdi, Reg::Rsi, Reg::Rdx]);
                gen.insert(Reg::Rsp);
                (gen, RegSet::from_regs([Reg::Rcx, Reg::R11, Reg::Rax]))
            }
            other => {
                let gen = RegSet::from_regs(other.regs_read());
                let kill = RegSet::from_regs(other.regs_written());
                (gen, kill)
            }
        }
    }

    fn boundary(&self) -> RegSet {
        // At function exit, callee-saved registers and rax are live.
        let mut s = RegSet::from_regs(Reg::CALLEE_SAVED);
        s.insert(Reg::Rax);
        s.insert(Reg::Rsp);
        s
    }
}

/// Callee-saved registers that may have been overwritten since function
/// entry without an intervening restore (forward may-analysis).
///
/// A register enters the set when a non-`pop` instruction writes it and
/// leaves when a `pop` restores it; calls are transparent (the callee
/// preserves the callee-saved set by the ABI). The stack pointer is not
/// tracked — every prologue adjusts it and the epilogue undoes the
/// adjustment structurally, not through a `pop %rsp`.
///
/// `frame-opts`/`shrink-wrapping` verification is built on this: at a
/// `push %r` of a callee-saved register the set must not already contain
/// `r` (the save was moved *past* a clobber, so it saves garbage), and at
/// every `ret` the set must be empty (some path overwrites a callee-saved
/// register without a save/restore pair covering it).
pub struct CalleeClobbered;

impl CalleeClobbered {
    /// The registers the analysis tracks: callee-saved minus `%rsp`.
    pub fn tracked() -> RegSet {
        RegSet::from_regs(Reg::CALLEE_SAVED).minus(RegSet::singleton(Reg::Rsp))
    }
}

impl DataflowProblem for CalleeClobbered {
    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn transfer(&self, inst: &crate::BinaryInst) -> (RegSet, RegSet) {
        use bolt_isa::Inst;
        match &inst.inst {
            // A pop restores the register from the stack: afterwards its
            // entry value is (assumed) back in place.
            Inst::Pop(r) => (RegSet::EMPTY, RegSet::singleton(*r)),
            other => (
                RegSet::from_regs(other.regs_written()).intersect(Self::tracked()),
                RegSet::EMPTY,
            ),
        }
    }
}

/// Computes per-instruction liveness for a block given the block's exit
/// fact: returns the live set *before* each instruction.
pub fn live_before_each(func: &BinaryFunction, id: BlockId, facts: &[BlockFacts]) -> Vec<RegSet> {
    let b = func.block(id);
    let mut cur = facts[id.index()].exit;
    let mut result = vec![RegSet::EMPTY; b.insts.len()];
    for (i, inst) in b.insts.iter().enumerate().rev() {
        let (g, k) = Liveness.transfer(inst);
        cur = g.union(cur.minus(k));
        result[i] = cur;
    }
    result
}

/// Immediate-dominator computation (simple iterative algorithm over RPO).
///
/// Returns `idom[b]` for each block; the entry dominates itself.
/// Blocks unreachable from the entry along `succs` edges map to `None` —
/// this includes `uce`-removable dead blocks (present when `uce` is
/// disabled) and blocks reachable only through landing-pad edges, which
/// `reverse_post_order` does not follow. A function with no blocks yields
/// an empty vector rather than indexing out of bounds on the default
/// entry id.
pub fn dominators(func: &BinaryFunction) -> Vec<Option<BlockId>> {
    let n = func.blocks.len();
    if n == 0 {
        return Vec::new();
    }
    let rpo = func.reverse_post_order();
    let mut rpo_num = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_num[b.index()] = i;
    }
    let entry = func.entry();
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[entry.index()] = Some(entry);

    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_num[a.index()] > rpo_num[b.index()] {
                a = idom[a.index()].expect("processed block");
            }
            while rpo_num[b.index()] > rpo_num[a.index()] {
                b = idom[b.index()].expect("processed block");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &func.block(b).preds {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BasicBlock;
    use bolt_isa::{AluOp, Cond, Inst, JumpWidth, Label, Target};

    fn branch(to: u32) -> Inst {
        Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(to)),
            width: JumpWidth::Near,
        }
    }

    /// 0: rbx = 1; je 2
    /// 1: rax = rbx (rbx live here)
    /// 2: rax = 0
    /// 3: ret
    fn test_func() -> BinaryFunction {
        let mut f = BinaryFunction::new("t", 0);
        for _ in 0..4 {
            f.add_block(BasicBlock::new());
        }
        f.block_mut(BlockId(0)).push(Inst::MovRI {
            dst: Reg::Rbx,
            imm: 1,
        });
        f.block_mut(BlockId(0)).push(branch(2));
        f.block_mut(BlockId(0)).succs = crate::function::edges(&[(2, 1), (1, 1)]);
        f.block_mut(BlockId(1)).push(Inst::MovRR {
            dst: Reg::Rax,
            src: Reg::Rbx,
        });
        f.block_mut(BlockId(1)).succs = crate::function::edges(&[(3, 1)]);
        f.block_mut(BlockId(2)).push(Inst::MovRI {
            dst: Reg::Rax,
            imm: 0,
        });
        f.block_mut(BlockId(2)).succs = crate::function::edges(&[(3, 1)]);
        f.block_mut(BlockId(3)).push(Inst::Ret);
        f.rebuild_preds();
        f
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Reg::Rax);
        s.insert(Reg::R15);
        assert!(s.contains(Reg::Rax));
        assert_eq!(s.len(), 2);
        s.remove(Reg::Rax);
        assert!(!s.contains(Reg::Rax));
        let t = RegSet::from_regs([Reg::R15, Reg::Rdi]);
        assert_eq!(s.union(t).len(), 2);
        assert_eq!(s.intersect(t), s);
        assert_eq!(s.to_string(), "{%r15}");
    }

    #[test]
    fn liveness_sees_branch_use() {
        let f = test_func();
        let facts = solve(&f, &Liveness);
        // rbx is live at exit of block 0 (used in block 1).
        assert!(facts[0].exit.contains(Reg::Rbx));
        // ... but not at exit of block 2.
        // (rbx is callee-saved so it *is* live due to the ret boundary;
        // check a caller-saved register instead: rax is written in 2 and
        // read by ret.)
        assert!(facts[2].exit.contains(Reg::Rax));
        // rax is not live on entry to block 2 (it's redefined there).
        assert!(!facts[2].entry.contains(Reg::Rax));
    }

    #[test]
    fn per_inst_liveness() {
        let f = test_func();
        let facts = solve(&f, &Liveness);
        let live = live_before_each(&f, BlockId(1), &facts);
        assert!(live[0].contains(Reg::Rbx), "rbx live before its use");
    }

    #[test]
    fn call_kill_semantics_precise() {
        let mut f = BinaryFunction::new("c", 0);
        f.add_block(BasicBlock::new());
        f.block_mut(BlockId(0)).push(Inst::Call {
            target: Target::Addr(0x1000),
        });
        f.block_mut(BlockId(0)).push(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::Rax,
            src: Reg::R10,
        });
        f.block_mut(BlockId(0)).push(Inst::Ret);
        f.rebuild_preds();
        let facts = solve(&f, &Liveness);
        let live = live_before_each(&f, BlockId(0), &facts);
        // Before the call, r10 is dead (the call clobbers it).
        assert!(!live[0].contains(Reg::R10));
        // Between call and add, r10 is live.
        assert!(live[1].contains(Reg::R10));
    }

    #[test]
    fn dominators_of_diamond() {
        let f = test_func();
        let idom = dominators(&f);
        assert_eq!(idom[0], Some(BlockId(0)));
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(0)));
        assert_eq!(idom[3], Some(BlockId(0)), "join dominated by fork");
    }

    /// Regression: a function with no blocks at all (the default entry id
    /// points at nothing) must yield an empty result, not index out of
    /// bounds.
    #[test]
    fn dominators_of_empty_function() {
        let f = BinaryFunction::new("empty", 0);
        assert!(dominators(&f).is_empty());
        assert!(f.reverse_post_order().is_empty());
    }

    /// Regression: blocks unreachable from the entry (what `uce` would
    /// delete, still present under `uce`-disabled presets) get `None`,
    /// and reachable blocks are unaffected by their presence.
    #[test]
    fn dominators_ignore_unreachable_blocks() {
        let mut f = test_func();
        // A dead block branching into the live diamond: no preds, never
        // reached, must not perturb the idoms of reachable blocks.
        let dead = f.add_block(BasicBlock::new());
        f.block_mut(dead).push(branch(1));
        f.block_mut(dead).succs = crate::function::edges(&[(1, 0), (2, 0)]);
        f.rebuild_preds();
        let idom = dominators(&f);
        assert_eq!(idom[dead.index()], None, "unreachable block has no idom");
        assert_eq!(idom[0], Some(BlockId(0)));
        assert_eq!(idom[1], Some(BlockId(0)), "dead preds don't shift idoms");
        assert_eq!(idom[3], Some(BlockId(0)));
    }

    /// The clobber analysis: a write to a callee-saved register is
    /// visible at `ret` unless a `pop` restores it on the way.
    #[test]
    fn callee_clobbered_tracks_saves_and_restores() {
        let mut f = BinaryFunction::new("c", 0);
        f.add_block(BasicBlock::new());
        f.block_mut(BlockId(0)).push(Inst::Push(Reg::Rbx));
        f.block_mut(BlockId(0)).push(Inst::MovRI {
            dst: Reg::Rbx,
            imm: 7,
        });
        f.block_mut(BlockId(0)).push(Inst::Pop(Reg::Rbx));
        f.block_mut(BlockId(0)).push(Inst::Ret);
        f.rebuild_preds();
        let facts = solve(&f, &CalleeClobbered);
        assert!(
            facts[0].exit.is_empty(),
            "restored register not clobbered at exit"
        );

        // Without the pop, the clobber survives to the exit.
        f.block_mut(BlockId(0)).insts.remove(2);
        let facts = solve(&f, &CalleeClobbered);
        assert!(facts[0].exit.contains(Reg::Rbx));
        // Calls do not clobber the callee-saved set.
        assert!(!CalleeClobbered::tracked().contains(Reg::Rsp));
    }
}
