//! Annotated machine instructions (the `MCInst`-plus-annotations analogue).

use bolt_isa::Inst;
use std::fmt;

/// A source-location annotation carried through compilation and rewriting
/// (the role DWARF line info plays for real BOLT; see paper section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineInfo {
    /// Index into the program's file table.
    pub file: u32,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for LineInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}:{}", self.file, self.line)
    }
}

/// A DWARF CFI placeholder (paper Figure 4): records how the frame state
/// changes at a program point so unwind information can be rebuilt after
/// blocks are reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CfiOp {
    /// `OpDefCfaOffset`: the CFA is at `offset` from the stack pointer.
    DefCfaOffset(i32),
    /// `OpDefCfaRegister`: the CFA is now computed from `reg`.
    DefCfaRegister(u8),
    /// `OpOffset`: callee-saved register `reg` was saved at `offset` from
    /// the CFA.
    Offset(u8, i32),
    /// `OpSameValue`: register `reg` has been restored.
    SameValue(u8),
}

impl fmt::Display for CfiOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfiOp::DefCfaOffset(o) => write!(f, "OpDefCfaOffset {o}"),
            CfiOp::DefCfaRegister(r) => write!(f, "OpDefCfaRegister Reg{r}"),
            CfiOp::Offset(r, o) => write!(f, "OpOffset Reg{r} {o}"),
            CfiOp::SameValue(r) => write!(f, "OpSameValue Reg{r}"),
        }
    }
}

/// A machine instruction plus the annotations the rewriter tracks:
/// original address, source line, pending CFI ops, and an optional
/// landing-pad annotation for calls that may throw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryInst {
    /// The underlying machine instruction.
    pub inst: Inst,
    /// Address in the input binary (0 for synthesized instructions).
    pub addr: u64,
    /// Source location, if known.
    pub line: Option<LineInfo>,
    /// CFI placeholders that take effect *after* this instruction.
    pub cfi: Vec<CfiOp>,
    /// Landing-pad block (within the same function) if this call can
    /// throw, mirroring BOLT's `handler:` annotation.
    pub landing_pad: Option<super::BlockId>,
}

impl BinaryInst {
    /// Wraps a bare machine instruction with no annotations.
    pub fn new(inst: Inst) -> BinaryInst {
        BinaryInst {
            inst,
            addr: 0,
            line: None,
            cfi: Vec::new(),
            landing_pad: None,
        }
    }

    /// Builder-style setter for the original address.
    pub fn at(mut self, addr: u64) -> BinaryInst {
        self.addr = addr;
        self
    }

    /// Builder-style setter for the source line.
    pub fn with_line(mut self, line: LineInfo) -> BinaryInst {
        self.line = Some(line);
        self
    }
}

impl From<Inst> for BinaryInst {
    fn from(inst: Inst) -> BinaryInst {
        BinaryInst::new(inst)
    }
}

impl fmt::Display for BinaryInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inst)?;
        if let Some(lp) = self.landing_pad {
            write!(f, " # handler: {lp}")?;
        }
        if let Some(line) = self.line {
            write!(f, " # {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::{Inst, Reg};

    #[test]
    fn builder_and_display() {
        let i = BinaryInst::new(Inst::Push(Reg::Rbp))
            .at(0x400000)
            .with_line(LineInfo { file: 1, line: 22 });
        assert_eq!(i.addr, 0x400000);
        assert_eq!(i.to_string(), "pushq %rbp # file1:22");
    }

    #[test]
    fn cfi_display_matches_figure4_style() {
        assert_eq!(CfiOp::DefCfaOffset(-16).to_string(), "OpDefCfaOffset -16");
        assert_eq!(CfiOp::Offset(6, -16).to_string(), "OpOffset Reg6 -16");
        assert_eq!(
            CfiOp::DefCfaRegister(6).to_string(),
            "OpDefCfaRegister Reg6"
        );
    }
}
