//! Property tests for the emitter: for random block graphs, relaxation
//! always converges to encodings where every branch lands exactly on its
//! target block, regardless of block sizes and orderings.

use bolt_ir::{emit_units, EmitBlock, EmitInst, EmitUnit};
use bolt_isa::{decode_all, Cond, Inst, JumpWidth, Label, Target};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random function: `n` blocks, each with `pad` filler instructions and
/// a terminator that branches to a random block (or returns).
#[derive(Debug, Clone)]
struct FuncSpec {
    /// (filler length, branch target index or none, conditional?)
    blocks: Vec<(usize, Option<usize>, bool)>,
}

fn arb_func(max_blocks: usize) -> impl Strategy<Value = FuncSpec> {
    proptest::collection::vec(
        (
            0usize..40,
            proptest::option::of(0usize..max_blocks),
            any::<bool>(),
        ),
        2..max_blocks,
    )
    .prop_map(|mut blocks| {
        // Last block must not fall through: force a return.
        let n = blocks.len();
        for (_, t, _) in blocks.iter_mut() {
            if let Some(t) = t.as_mut() {
                *t %= n;
            }
        }
        let last = blocks.last_mut().expect("non-empty");
        last.1 = None;
        FuncSpec { blocks }
    })
}

fn build_unit(spec: &FuncSpec) -> EmitUnit {
    let mut unit = EmitUnit::new("prop");
    unit.align = 16;
    let n = spec.blocks.len();
    for (i, (pad, target, cond)) in spec.blocks.iter().enumerate() {
        let mut b = EmitBlock::new(Label(i as u32));
        // Filler: mov/add chains of deterministic size (2 x 7-byte movs
        // per unit keeps sizes interesting for relaxation).
        for k in 0..*pad {
            b.insts.push(EmitInst::new(Inst::MovRI {
                dst: bolt_isa::Reg::Rax,
                imm: (k as i64) * 3,
            }));
        }
        match target {
            Some(t) => {
                if *cond {
                    b.insts.push(EmitInst::new(Inst::Jcc {
                        cond: Cond::E,
                        target: Target::Label(Label(*t as u32)),
                        width: JumpWidth::Near,
                    }));
                    // Conditional blocks fall through; ensure the next
                    // block exists (or return).
                    if i + 1 == n {
                        b.insts.push(EmitInst::new(Inst::Ret));
                    }
                } else {
                    b.insts.push(EmitInst::new(Inst::Jmp {
                        target: Target::Label(Label(*t as u32)),
                        width: JumpWidth::Near,
                    }));
                }
            }
            None => b.insts.push(EmitInst::new(Inst::Ret)),
        }
        unit.blocks.push(b);
    }
    // Guarantee no trailing fall-through.
    if let Some(last) = unit.blocks.last_mut() {
        if !matches!(
            last.insts.last().map(|i| &i.inst),
            Some(Inst::Ret) | Some(Inst::Jmp { .. })
        ) {
            last.insts.push(EmitInst::new(Inst::Ret));
        }
    }
    unit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every emitted branch resolves exactly to the address of its target
    /// block, and the whole stream decodes.
    #[test]
    fn relaxation_resolves_all_branches(spec in arb_func(24)) {
        let unit = build_unit(&spec);
        let labels: Vec<Label> = unit.blocks.iter().map(|b| b.label).collect();
        let result = emit_units(&[unit], 0x400000, 0x600000, &HashMap::new()).unwrap();

        // The stream decodes fully (NOP padding included).
        let decoded = decode_all(&result.text, 0x400000).unwrap();

        // Each branch target equals some block's resolved address.
        let block_addrs: Vec<u64> = labels.iter().map(|l| result.label_addrs[l]).collect();
        for (_, d) in &decoded {
            if let Inst::Jcc { target, .. } | Inst::Jmp { target, .. } = d.inst {
                let addr = target.addr().expect("resolved");
                prop_assert!(
                    block_addrs.contains(&addr),
                    "branch to {addr:#x} must hit a block start ({block_addrs:x?})"
                );
            }
        }
    }

    /// Emission is deterministic.
    #[test]
    fn emission_is_deterministic(spec in arb_func(16)) {
        let a = emit_units(&[build_unit(&spec)], 0x400000, 0x600000, &HashMap::new()).unwrap();
        let b = emit_units(&[build_unit(&spec)], 0x400000, 0x600000, &HashMap::new()).unwrap();
        prop_assert_eq!(a.text, b.text);
        prop_assert_eq!(a.cold, b.cold);
    }
}
