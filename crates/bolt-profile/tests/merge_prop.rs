//! Property: [`Profile::merge`] is order-insensitive in counts — merging
//! a batch of per-shard profiles produces the same aggregate no matter
//! how the shards are ordered or grouped, which is what makes sharded
//! profiling deterministic at any worker count.

use bolt_profile::{Profile, ProfileMode};
use proptest::prelude::*;

/// Strategy for one synthetic per-shard profile: a handful of branch,
/// fall-through, and IP records over a small address pool so that merges
/// exercise both colliding and disjoint keys.
fn arb_profile() -> impl Strategy<Value = Profile> {
    let branch = (0u64..32, 0u64..32, 1u64..50, 0u64..5);
    let fallthrough = (0u64..32, 0u64..32, 1u64..50);
    let ip = (0u64..32, 1u64..50);
    (
        proptest::collection::vec(branch, 0..12),
        proptest::collection::vec(fallthrough, 0..12),
        proptest::collection::vec(ip, 0..12),
        0u64..1000,
    )
        .prop_map(|(branches, fallthroughs, ips, num_samples)| {
            let mut p = Profile::new(ProfileMode::Lbr);
            // Addresses from a tiny pool: distinct tuples may collide on
            // the same (from, to) key, exercising count summation.
            for (from, to, count, mispreds) in branches {
                let e = p
                    .branches
                    .entry((0x1000 + from, 0x2000 + to))
                    .or_insert((0, 0));
                e.0 += count;
                e.1 += mispreds.min(count);
            }
            for (from, to, count) in fallthroughs {
                *p.fallthroughs
                    .entry((0x2000 + from, 0x3000 + to))
                    .or_insert(0) += count;
            }
            for (ip, count) in ips {
                *p.ip_samples.entry(0x4000 + ip).or_insert(0) += count;
            }
            p.num_samples = num_samples;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_order_insensitive(
        parts in proptest::collection::vec(arb_profile(), 0..8),
        seed in 0u64..1000,
    ) {
        // Forward shard-index order (what the batch harness does).
        let forward = Profile::merged(ProfileMode::Lbr, &parts);

        // Reversed order.
        let reversed = Profile::merged(ProfileMode::Lbr, parts.iter().rev());
        prop_assert_eq!(&forward, &reversed);

        // A deterministic pseudo-random permutation.
        let mut perm: Vec<&Profile> = parts.iter().collect();
        let n = perm.len();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let permuted = Profile::merged(ProfileMode::Lbr, perm);
        prop_assert_eq!(&forward, &permuted);

        // Regrouped: merge a prefix aggregate with a suffix aggregate.
        let split = n / 2;
        let mut grouped = Profile::merged(ProfileMode::Lbr, &parts[..split]);
        grouped.merge(&Profile::merged(ProfileMode::Lbr, &parts[split..]));
        prop_assert_eq!(&forward, &grouped);

        // Total counts are preserved exactly.
        let branch_total: u64 = parts.iter().map(Profile::total_branch_count).sum();
        prop_assert_eq!(forward.total_branch_count(), branch_total);
        let sample_total: u64 = parts.iter().map(|p| p.num_samples).sum();
        prop_assert_eq!(forward.num_samples, sample_total);

        // The serialized .fdata form is identical too (sorted output over
        // equal maps must be byte-identical).
        prop_assert_eq!(forward.to_fdata(), reversed.to_fdata());
    }
}
