//! # bolt-profile — sample-based profiling
//!
//! The profiling half of the reproduction (paper section 5):
//!
//! * [`LbrSampler`] simulates Intel's Last Branch Records: a ring of the
//!   last 32 *taken* branches flushed on each sample, with fall-through
//!   ranges between consecutive records and shadow-predictor mispredict
//!   bits;
//! * [`IpSampler`] is the plain non-LBR histogram;
//! * [`Profile`] aggregates either into the `.fdata`-style format
//!   (`perf2bolt`'s role);
//! * [`attach_profile`] maps the profile onto reconstructed CFGs, builds
//!   the call graph, and repairs flow-equation violations by attributing
//!   surplus flow to the never-recorded fall-through path (section 5.2);
//! * [`infer_edges_from_counts`] / [`infer_callgraph_from_samples`] are the
//!   non-LBR inference paths compared in section 6.5 / Figure 11.

mod attach;
mod profile;
mod sampler;

pub use attach::{
    attach_profile, attach_profile_opts, infer_callgraph_from_samples, infer_edges_from_counts,
    repair_flow, AttachStats,
};
pub use profile::{BranchRecord, FallthroughRecord, FdataError, Profile, ProfileMode};
pub use sampler::{IpSampler, LbrSampler, SampleTrigger, LBR_DEPTH};
