//! Attaching an aggregated profile to the reconstructed CFGs, repairing
//! flow-equation violations, and (in non-LBR mode) inferring edge counts
//! from IP histograms (paper sections 5.2 and 5.3).

use crate::{Profile, ProfileMode};
use bolt_ir::{BinaryContext, BinaryFunction, BlockId};
use bolt_isa::Inst;

/// Attachment statistics (feeds the per-function `Profile Acc` of paper
/// Figure 4).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AttachStats {
    pub matched_branches: u64,
    pub dropped_branches: u64,
    pub call_edges: u64,
    pub matched_fallthroughs: u64,
}

impl AttachStats {
    /// Fraction of branch records that matched the CFG.
    pub fn accuracy(&self) -> f64 {
        let total = self.matched_branches + self.dropped_branches;
        if total == 0 {
            1.0
        } else {
            self.matched_branches as f64 / total as f64
        }
    }
}

/// Per-function lookup from original addresses to blocks.
struct BlockIndex {
    /// Sorted (start_addr, block).
    starts: Vec<(u64, BlockId)>,
}

impl BlockIndex {
    fn build(func: &BinaryFunction) -> BlockIndex {
        let mut starts: Vec<(u64, BlockId)> = func
            .layout
            .iter()
            .filter(|&&id| !func.block(id).is_empty())
            .map(|&id| (func.block(id).orig_addr, id))
            .collect();
        starts.sort_unstable();
        BlockIndex { starts }
    }

    /// The block containing `addr` (by start address; blocks are
    /// contiguous in the original binary).
    fn block_at(&self, addr: u64) -> Option<BlockId> {
        let i = self.starts.partition_point(|(s, _)| *s <= addr);
        if i == 0 {
            None
        } else {
            Some(self.starts[i - 1].1)
        }
    }

    /// The block starting exactly at `addr`.
    fn block_starting(&self, addr: u64) -> Option<BlockId> {
        let i = self.starts.partition_point(|(s, _)| *s < addr);
        self.starts
            .get(i)
            .filter(|(s, _)| *s == addr)
            .map(|(_, b)| *b)
    }

    /// Block starts strictly inside `(from, to]`, in address order, with
    /// the block that precedes each.
    fn boundaries_in(&self, from: u64, to: u64) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        let i = self.starts.partition_point(|(s, _)| *s <= from);
        for k in i..self.starts.len() {
            let (s, b) = self.starts[k];
            if s > to {
                break;
            }
            if k > 0 {
                out.push((self.starts[k - 1].1, b));
            }
        }
        out
    }
}

/// Attaches `profile` to `ctx` with the tuned non-LBR inference (see
/// [`attach_profile_opts`]).
pub fn attach_profile(ctx: &mut BinaryContext, profile: &Profile) -> AttachStats {
    attach_profile_opts(ctx, profile, true)
}

/// Attaches `profile` to `ctx`: sets edge counts, block and function
/// execution counts, the call graph, and the indirect-call target table.
/// Finishes with flow repair ([`repair_flow`]) on every simple function.
///
/// `tuned_inference` selects between the naive and layout-trusting
/// non-LBR edge inference (paper section 5.1); it has no effect in LBR
/// mode.
pub fn attach_profile_opts(
    ctx: &mut BinaryContext,
    profile: &Profile,
    tuned_inference: bool,
) -> AttachStats {
    let mut stats = AttachStats::default();
    let indexes: Vec<BlockIndex> = ctx.functions.iter().map(BlockIndex::build).collect();

    // Branch records.
    for rec in profile.sorted_branches() {
        let Some(fi) = ctx.function_at(rec.from) else {
            stats.dropped_branches += rec.count;
            continue;
        };
        let from_block = indexes[fi].block_at(rec.from);

        if let Some(ti) = ctx.function_at(rec.to) {
            if ti == fi {
                // Intra-function edge.
                let (Some(fb), Some(tb)) = (from_block, indexes[fi].block_starting(rec.to)) else {
                    stats.dropped_branches += rec.count;
                    continue;
                };
                let func = &mut ctx.functions[fi];
                if let Some(e) = func.block_mut(fb).succ_edge_mut(tb) {
                    e.count += rec.count;
                    e.mispreds += rec.mispreds;
                    stats.matched_branches += rec.count;
                } else {
                    stats.dropped_branches += rec.count;
                }
                continue;
            }
            // Cross-function: call, tail call, or return.
            let to_func = &ctx.functions[ti];
            let is_entry = rec.to == to_func.address;
            // Classify by the source instruction when we can find it.
            let kind = from_block.and_then(|fb| {
                ctx.functions[fi]
                    .block(fb)
                    .insts
                    .iter()
                    .find(|i| i.addr == rec.from)
                    .map(|i| i.inst)
            });
            match kind {
                Some(Inst::Ret) | Some(Inst::RepzRet) => {
                    // Returns don't contribute call-graph weight.
                    stats.matched_branches += rec.count;
                }
                Some(Inst::CallInd { .. }) if is_entry => {
                    *ctx.call_graph.entry((fi, ti)).or_insert(0) += rec.count;
                    ctx.indirect_call_targets
                        .entry(rec.from)
                        .or_default()
                        .push((ti, rec.count));
                    ctx.functions[ti].exec_count += rec.count;
                    stats.call_edges += 1;
                    stats.matched_branches += rec.count;
                }
                Some(Inst::Call { .. })
                | Some(Inst::Jmp { .. })
                | Some(Inst::Jcc { .. })
                | Some(Inst::JmpInd { .. })
                    if is_entry =>
                {
                    // Direct call or (conditional) tail call.
                    *ctx.call_graph.entry((fi, ti)).or_insert(0) += rec.count;
                    ctx.functions[ti].exec_count += rec.count;
                    stats.call_edges += 1;
                    stats.matched_branches += rec.count;
                }
                // Mid-function targets and unclassifiable sources drop.
                _ => {
                    stats.dropped_branches += rec.count;
                }
            }
        } else {
            stats.dropped_branches += rec.count;
        }
    }

    // Fall-through records: credit every block boundary inside the range.
    for rec in profile.sorted_fallthroughs() {
        let Some(fi) = ctx.function_at(rec.from) else {
            continue;
        };
        if ctx.function_at(rec.to) != Some(fi) {
            continue;
        }
        let pairs = indexes[fi].boundaries_in(rec.from, rec.to);
        let func = &mut ctx.functions[fi];
        for (prev, next) in pairs {
            if let Some(e) = func.block_mut(prev).succ_edge_mut(next) {
                e.count += rec.count;
                stats.matched_fallthroughs += rec.count;
            }
        }
    }

    // Non-LBR mode: block exec counts from the IP histogram.
    if profile.mode == ProfileMode::IpSamples {
        for (&ip, &count) in &profile.ip_samples {
            if let Some(fi) = ctx.function_at(ip) {
                if let Some(b) = indexes[fi].block_at(ip) {
                    ctx.functions[fi].block_mut(b).exec_count += count;
                }
            }
        }
    }

    // Finalize: per-function flow repair and accuracy.
    let accuracy = stats.accuracy();
    for fi in 0..ctx.functions.len() {
        let func = &mut ctx.functions[fi];
        if !func.is_simple {
            continue;
        }
        if profile.mode == ProfileMode::IpSamples {
            infer_edges_from_counts(func, tuned_inference);
        }
        repair_flow(func);
        func.profile_accuracy = accuracy;
    }
    stats
}

/// Repairs flow-equation violations (paper section 5.2): LBRs only record
/// taken branches, so surplus inflow is attributed to the fall-through
/// path — trusting the static compiler's original layout.
pub fn repair_flow(func: &mut BinaryFunction) {
    func.rebuild_preds();
    for _round in 0..2 {
        for pos in 0..func.layout.len() {
            let id = func.layout[pos];
            // Inflow: edges from predecessors plus the function entry
            // count for the entry block.
            let mut inflow: u64 = func
                .block(id)
                .preds
                .clone()
                .iter()
                .map(|p| func.block(*p).succ_edge(id).map(|e| e.count).unwrap_or(0))
                .sum();
            if id == func.entry() {
                inflow += func.exec_count;
            }
            let outflow: u64 = func.block(id).outflow();
            let exec = inflow.max(outflow).max(func.block(id).exec_count);
            func.block_mut(id).exec_count = exec;
            let surplus = exec.saturating_sub(outflow);
            if surplus > 0 {
                if let Some(ft) = func.block(id).fallthrough_succ() {
                    if let Some(e) = func.block_mut(id).succ_edge_mut(ft) {
                        e.count += surplus;
                    }
                }
            }
        }
    }
}

/// Non-LBR edge inference from block execution counts (paper section 5.1).
///
/// With `tuned = true`, fall-through edges are trusted first (the static
/// layout bias that makes inference "stay under 1% worse than LBR"); with
/// `tuned = false`, counts are split proportionally to successor counts —
/// the naive inference that can cost ~5%.
pub fn infer_edges_from_counts(func: &mut BinaryFunction, tuned: bool) {
    for pos in 0..func.layout.len() {
        let id = func.layout[pos];
        let exec = func.block(id).exec_count;
        let succs: Vec<BlockId> = func.block(id).succs.iter().map(|e| e.block).collect();
        if succs.is_empty() {
            continue;
        }
        let succ_counts: Vec<u64> = succs
            .iter()
            .map(|s| func.block(*s).exec_count.max(1))
            .collect();
        let total: u64 = succ_counts.iter().sum();
        let ft = func.block(id).fallthrough_succ();
        for (k, s) in succs.iter().enumerate() {
            let assigned = if tuned {
                if Some(*s) == ft {
                    // Trust fall-through: give it everything not clearly
                    // claimed by hotter siblings.
                    let others: u64 = succ_counts
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| succs[*j] != *s)
                        .map(|(j, _)| exec * succ_counts[j] / total / 2)
                        .sum();
                    exec.saturating_sub(others)
                } else {
                    exec * succ_counts[k] / total / 2
                }
            } else {
                exec * succ_counts[k] / total
            };
            if let Some(e) = func.block_mut(id).succ_edge_mut(*s) {
                e.count = assigned;
            }
        }
    }
}

/// Builds call-graph weights without LBRs (paper section 5.3): every block
/// containing a direct call contributes its sample count as the edge
/// weight; indirect calls are invisible.
pub fn infer_callgraph_from_samples(ctx: &mut BinaryContext) {
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    for (fi, func) in ctx.functions.iter().enumerate() {
        for &bb in &func.layout {
            let block = func.block(bb);
            if block.exec_count == 0 {
                continue;
            }
            for inst in &block.insts {
                if let Inst::Call { target } = inst.inst {
                    if let Some(addr) = target.addr() {
                        if let Some(ti) = ctx.function_at(addr) {
                            if ctx.functions[ti].address == addr && ti != fi {
                                edges.push((fi, ti, block.exec_count));
                            }
                        }
                    }
                }
            }
        }
    }
    for (fi, ti, w) in edges {
        *ctx.call_graph.entry((fi, ti)).or_insert(0) += w;
        ctx.functions[ti].exec_count += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{BasicBlock, BinaryInst, SuccEdge};
    use bolt_isa::{Cond, JumpWidth, Reg, Target};

    /// Builds a function at 0x1000 with:
    ///   b0 [0x1000..0x1008): cmp(4B) + jcc(4B)  -> taken b2, fall b1
    ///   b1 [0x1008..0x1010): nop8               -> fall b2
    ///   b2 [0x1010..0x1011): ret
    fn sample_func() -> BinaryFunction {
        let mut f = BinaryFunction::new("f", 0x1000);
        f.size = 0x11;
        let b0 = f.add_block(BasicBlock::new());
        let b1 = f.add_block(BasicBlock::new());
        let b2 = f.add_block(BasicBlock::new());
        {
            let blk = f.block_mut(b0);
            blk.orig_addr = 0x1000;
            blk.insts.push(
                BinaryInst::new(Inst::AluI {
                    op: bolt_isa::AluOp::Cmp,
                    dst: Reg::Rax,
                    imm: 0,
                })
                .at(0x1000),
            );
            blk.insts.push(
                BinaryInst::new(Inst::Jcc {
                    cond: Cond::E,
                    target: Target::Addr(0x1010),
                    width: JumpWidth::Near,
                })
                .at(0x1004),
            );
            blk.succs = vec![SuccEdge::cold(b2), SuccEdge::cold(b1)];
        }
        {
            let blk = f.block_mut(b1);
            blk.orig_addr = 0x1008;
            blk.insts
                .push(BinaryInst::new(Inst::Nop { len: 8 }).at(0x1008));
            blk.succs = vec![SuccEdge::cold(b2)];
        }
        {
            let blk = f.block_mut(b2);
            blk.orig_addr = 0x1010;
            blk.insts.push(BinaryInst::new(Inst::Ret).at(0x1010));
        }
        f.rebuild_preds();
        f
    }

    #[test]
    fn branch_records_set_edge_counts() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(sample_func());
        let mut p = Profile::new(ProfileMode::Lbr);
        for _ in 0..70 {
            p.add_branch(0x1004, 0x1010, false); // taken edge b0->b2
        }
        for _ in 0..30 {
            p.add_fallthrough(0x1000, 0x1008); // ...covers boundary at 0x1008
        }
        let stats = attach_profile(&mut ctx, &p);
        assert_eq!(stats.matched_branches, 70);
        assert_eq!(stats.dropped_branches, 0);
        let f = &ctx.functions[0];
        assert_eq!(f.block(BlockId(0)).succ_edge(BlockId(2)).unwrap().count, 70);
        // Fall-through b0->b1 got the 30 via the fall-through record.
        assert!(f.block(BlockId(0)).succ_edge(BlockId(1)).unwrap().count >= 30);
        assert!(stats.accuracy() > 0.99);
    }

    #[test]
    fn stale_profile_drops_unmatched() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(sample_func());
        let mut p = Profile::new(ProfileMode::Lbr);
        p.add_branch(0x1004, 0x100C, false); // lands mid-block: no edge
        let stats = attach_profile(&mut ctx, &p);
        assert_eq!(stats.matched_branches, 0);
        assert_eq!(stats.dropped_branches, 1);
        assert!(stats.accuracy() < 0.01);
    }

    #[test]
    fn flow_repair_fills_non_taken_path() {
        let mut f = sample_func();
        f.exec_count = 100;
        // Only the taken edge is known (LBR saw 70 takes).
        f.block_mut(BlockId(0))
            .succ_edge_mut(BlockId(2))
            .unwrap()
            .count = 70;
        repair_flow(&mut f);
        // Surplus 30 must flow down the fall-through (paper section 5.2).
        assert_eq!(f.block(BlockId(0)).succ_edge(BlockId(1)).unwrap().count, 30);
        assert_eq!(f.block(BlockId(0)).exec_count, 100);
        assert_eq!(f.block(BlockId(1)).exec_count, 30);
        assert_eq!(f.block(BlockId(2)).exec_count, 100);
    }

    #[test]
    fn call_edges_build_call_graph() {
        let mut ctx = BinaryContext::new();
        let mut caller = BinaryFunction::new("caller", 0x1000);
        caller.size = 0x10;
        let b = caller.add_block(BasicBlock::new());
        caller.block_mut(b).orig_addr = 0x1000;
        caller.block_mut(b).insts.push(
            BinaryInst::new(Inst::Call {
                target: Target::Addr(0x2000),
            })
            .at(0x1000),
        );
        caller
            .block_mut(b)
            .insts
            .push(BinaryInst::new(Inst::Ret).at(0x1005));
        ctx.add_function(caller);
        let mut callee = BinaryFunction::new("callee", 0x2000);
        callee.size = 0x10;
        let b = callee.add_block(BasicBlock::new());
        callee.block_mut(b).orig_addr = 0x2000;
        callee
            .block_mut(b)
            .insts
            .push(BinaryInst::new(Inst::Ret).at(0x2000));
        ctx.add_function(callee);

        let mut p = Profile::new(ProfileMode::Lbr);
        for _ in 0..5 {
            p.add_branch(0x1000, 0x2000, false); // call
            p.add_branch(0x2000, 0x1005, false); // return
        }
        let stats = attach_profile(&mut ctx, &p);
        assert_eq!(ctx.call_graph[&(0, 1)], 5);
        assert_eq!(ctx.functions[1].exec_count, 5);
        assert_eq!(stats.call_edges, 1);
    }
}
