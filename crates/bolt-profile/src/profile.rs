//! The aggregated binary profile (the `perf2bolt` output, BOLT's `.fdata`).

use std::collections::HashMap;
use std::fmt;

/// How the profile was collected (paper section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// Last-branch-record sampling: precise taken-branch edges plus
    /// fall-through ranges between consecutive records.
    #[default]
    Lbr,
    /// Plain instruction-pointer samples; edges must be inferred.
    IpSamples,
}

/// An aggregated taken-branch record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchRecord {
    pub from: u64,
    pub to: u64,
    pub count: u64,
    pub mispreds: u64,
}

/// A fall-through range `[from, to]` executed sequentially `count` times
/// (between two consecutive LBR entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FallthroughRecord {
    pub from: u64,
    pub to: u64,
    pub count: u64,
}

/// The aggregated profile handed to BOLT.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    pub mode: ProfileMode,
    /// Aggregated taken branches, keyed by (from, to).
    pub branches: HashMap<(u64, u64), (u64, u64)>,
    /// Aggregated fall-through ranges.
    pub fallthroughs: HashMap<(u64, u64), u64>,
    /// Instruction-pointer sample histogram.
    pub ip_samples: HashMap<u64, u64>,
    /// Number of hardware samples taken.
    pub num_samples: u64,
}

impl Profile {
    pub fn new(mode: ProfileMode) -> Profile {
        Profile {
            mode,
            ..Profile::default()
        }
    }

    /// Records a taken branch occurrence.
    pub fn add_branch(&mut self, from: u64, to: u64, mispred: bool) {
        let e = self.branches.entry((from, to)).or_insert((0, 0));
        e.0 += 1;
        e.1 += u64::from(mispred);
    }

    /// Records a fall-through range.
    pub fn add_fallthrough(&mut self, from: u64, to: u64) {
        *self.fallthroughs.entry((from, to)).or_insert(0) += 1;
    }

    /// Records an IP sample.
    pub fn add_ip(&mut self, ip: u64) {
        *self.ip_samples.entry(ip).or_insert(0) += 1;
    }

    /// Merges `other` into `self`, summing every count — the `perf`
    /// multi-file merge step: per-shard profiles collected from
    /// independent invocations combine into one aggregate profile.
    ///
    /// Merging is commutative and associative in all counts (each record
    /// key sums independently), so a batch merged in shard-index order
    /// equals the same shards merged in any order. Merging profiles of
    /// different [`ProfileMode`]s is a caller bug and panics.
    pub fn merge(&mut self, other: &Profile) {
        assert_eq!(
            self.mode, other.mode,
            "cannot merge LBR and IP-sample profiles"
        );
        for (&key, &(count, mispreds)) in &other.branches {
            let e = self.branches.entry(key).or_insert((0, 0));
            e.0 += count;
            e.1 += mispreds;
        }
        for (&key, &count) in &other.fallthroughs {
            *self.fallthroughs.entry(key).or_insert(0) += count;
        }
        for (&ip, &count) in &other.ip_samples {
            *self.ip_samples.entry(ip).or_insert(0) += count;
        }
        self.num_samples += other.num_samples;
    }

    /// Merges an iterator of profiles (e.g. one per shard, in
    /// shard-index order) into a single aggregate of the given mode.
    pub fn merged<'a>(mode: ProfileMode, parts: impl IntoIterator<Item = &'a Profile>) -> Profile {
        let mut out = Profile::new(mode);
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Total taken-branch traversals recorded.
    pub fn total_branch_count(&self) -> u64 {
        self.branches.values().map(|(c, _)| c).sum()
    }

    /// Branch records sorted for deterministic iteration.
    pub fn sorted_branches(&self) -> Vec<BranchRecord> {
        let mut v: Vec<BranchRecord> = self
            .branches
            .iter()
            .map(|(&(from, to), &(count, mispreds))| BranchRecord {
                from,
                to,
                count,
                mispreds,
            })
            .collect();
        v.sort_unstable_by_key(|b| (b.from, b.to));
        v
    }

    /// Fall-through records sorted for deterministic iteration.
    pub fn sorted_fallthroughs(&self) -> Vec<FallthroughRecord> {
        let mut v: Vec<FallthroughRecord> = self
            .fallthroughs
            .iter()
            .map(|(&(from, to), &count)| FallthroughRecord { from, to, count })
            .collect();
        v.sort_unstable_by_key(|f| (f.from, f.to));
        v
    }

    /// Serializes in the (simplified, address-based) `.fdata` text format:
    ///
    /// ```text
    /// M <mode> <num_samples>
    /// B <from-hex> <to-hex> <count> <mispreds>
    /// F <from-hex> <to-hex> <count>
    /// S <ip-hex> <count>
    /// ```
    pub fn to_fdata(&self) -> String {
        let mut out = String::new();
        let mode = match self.mode {
            ProfileMode::Lbr => "lbr",
            ProfileMode::IpSamples => "ip",
        };
        out.push_str(&format!("M {mode} {}\n", self.num_samples));
        for b in self.sorted_branches() {
            out.push_str(&format!(
                "B {:x} {:x} {} {}\n",
                b.from, b.to, b.count, b.mispreds
            ));
        }
        for f in self.sorted_fallthroughs() {
            out.push_str(&format!("F {:x} {:x} {}\n", f.from, f.to, f.count));
        }
        let mut ips: Vec<(u64, u64)> = self.ip_samples.iter().map(|(&a, &c)| (a, c)).collect();
        ips.sort_unstable();
        for (ip, count) in ips {
            out.push_str(&format!("S {ip:x} {count}\n"));
        }
        out
    }

    /// Serializes to the compact binary artifact *payload* (see
    /// [`bolt_emu::artifact`] for the framing this slots into): mode
    /// byte, sample count, then the three record tables with `u32`
    /// length prefixes, records sorted by key. Sorting makes the
    /// encoding canonical — equal profiles encode to equal bytes, so a
    /// supervised merge can be compared byte-for-byte against the
    /// in-process path.
    pub fn to_bytes(&self) -> Vec<u8> {
        let branches = self.sorted_branches();
        let fallthroughs = self.sorted_fallthroughs();
        let mut ips: Vec<(u64, u64)> = self.ip_samples.iter().map(|(&a, &c)| (a, c)).collect();
        ips.sort_unstable();
        let mut out = Vec::with_capacity(
            13 + 4 * 3 + branches.len() * 32 + fallthroughs.len() * 24 + ips.len() * 16,
        );
        out.push(match self.mode {
            ProfileMode::Lbr => 0,
            ProfileMode::IpSamples => 1,
        });
        out.extend_from_slice(&self.num_samples.to_le_bytes());
        out.extend_from_slice(&(branches.len() as u32).to_le_bytes());
        for b in &branches {
            out.extend_from_slice(&b.from.to_le_bytes());
            out.extend_from_slice(&b.to.to_le_bytes());
            out.extend_from_slice(&b.count.to_le_bytes());
            out.extend_from_slice(&b.mispreds.to_le_bytes());
        }
        out.extend_from_slice(&(fallthroughs.len() as u32).to_le_bytes());
        for f in &fallthroughs {
            out.extend_from_slice(&f.from.to_le_bytes());
            out.extend_from_slice(&f.to.to_le_bytes());
            out.extend_from_slice(&f.count.to_le_bytes());
        }
        out.extend_from_slice(&(ips.len() as u32).to_le_bytes());
        for (ip, count) in &ips {
            out.extend_from_slice(&ip.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        out
    }

    /// Decodes a [`Profile::to_bytes`] payload. The payload must be
    /// consumed exactly; slack or truncation is rejected (the framing
    /// CRC catches corruption first, but a decoder must stand alone).
    pub fn from_bytes(bytes: &[u8]) -> Result<Profile, bolt_emu::ArtifactError> {
        use bolt_emu::artifact::ByteReader;
        use bolt_emu::ArtifactError;
        let mut r = ByteReader::new(bytes);
        let mut p = Profile::new(match r.u8("profile mode")? {
            0 => ProfileMode::Lbr,
            1 => ProfileMode::IpSamples,
            _ => return Err(ArtifactError::Malformed("profile mode")),
        });
        p.num_samples = r.u64("num_samples")?;
        let n = r.count(32, "branch count")?;
        for _ in 0..n {
            let from = r.u64("branch from")?;
            let to = r.u64("branch to")?;
            let count = r.u64("branch count field")?;
            let mispreds = r.u64("branch mispreds")?;
            if p.branches.insert((from, to), (count, mispreds)).is_some() {
                return Err(ArtifactError::Malformed("duplicate branch key"));
            }
        }
        let n = r.count(24, "fallthrough count")?;
        for _ in 0..n {
            let from = r.u64("fallthrough from")?;
            let to = r.u64("fallthrough to")?;
            let count = r.u64("fallthrough count field")?;
            if p.fallthroughs.insert((from, to), count).is_some() {
                return Err(ArtifactError::Malformed("duplicate fallthrough key"));
            }
        }
        let n = r.count(16, "ip count")?;
        for _ in 0..n {
            let ip = r.u64("ip")?;
            let count = r.u64("ip count field")?;
            if p.ip_samples.insert(ip, count).is_some() {
                return Err(ArtifactError::Malformed("duplicate ip key"));
            }
        }
        r.finish("profile payload slack")?;
        Ok(p)
    }

    /// Frames [`Profile::to_bytes`] as a durable artifact
    /// (`KIND_PROFILE`).
    pub fn to_artifact(&self) -> Vec<u8> {
        bolt_emu::artifact::frame(bolt_emu::artifact::KIND_PROFILE, &self.to_bytes())
    }

    /// Validates framing (magic, version, kind, length, CRC) and
    /// decodes a [`Profile::to_artifact`] byte string.
    pub fn from_artifact(bytes: &[u8]) -> Result<Profile, bolt_emu::ArtifactError> {
        let payload = bolt_emu::artifact::unframe(bytes, bolt_emu::artifact::KIND_PROFILE)?;
        Profile::from_bytes(payload)
    }

    /// Parses the `.fdata` text format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_fdata(text: &str) -> Result<Profile, FdataError> {
        let mut p = Profile::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_ascii_whitespace();
            let tag = it.next().unwrap_or("");
            let mut hex = |what: &'static str| -> Result<u64, FdataError> {
                let tok = it.next().ok_or(FdataError {
                    line: lineno + 1,
                    what,
                })?;
                u64::from_str_radix(tok, 16).map_err(|_| FdataError {
                    line: lineno + 1,
                    what,
                })
            };
            match tag {
                "M" => {
                    let mode = it.next().ok_or(FdataError {
                        line: lineno + 1,
                        what: "mode",
                    })?;
                    p.mode = match mode {
                        "lbr" => ProfileMode::Lbr,
                        "ip" => ProfileMode::IpSamples,
                        _ => {
                            return Err(FdataError {
                                line: lineno + 1,
                                what: "mode",
                            })
                        }
                    };
                    p.num_samples = it.next().and_then(|t| t.parse().ok()).ok_or(FdataError {
                        line: lineno + 1,
                        what: "num_samples",
                    })?;
                }
                "B" => {
                    let from = hex("from")?;
                    let to = hex("to")?;
                    let count: u64 = it.next().and_then(|t| t.parse().ok()).ok_or(FdataError {
                        line: lineno + 1,
                        what: "count",
                    })?;
                    let mispreds: u64 =
                        it.next().and_then(|t| t.parse().ok()).ok_or(FdataError {
                            line: lineno + 1,
                            what: "mispreds",
                        })?;
                    p.branches.insert((from, to), (count, mispreds));
                }
                "F" => {
                    let from = hex("from")?;
                    let to = hex("to")?;
                    let count: u64 = it.next().and_then(|t| t.parse().ok()).ok_or(FdataError {
                        line: lineno + 1,
                        what: "count",
                    })?;
                    p.fallthroughs.insert((from, to), count);
                }
                "S" => {
                    let ip = hex("ip")?;
                    let count: u64 = it.next().and_then(|t| t.parse().ok()).ok_or(FdataError {
                        line: lineno + 1,
                        what: "count",
                    })?;
                    p.ip_samples.insert(ip, count);
                }
                _ => {
                    return Err(FdataError {
                        line: lineno + 1,
                        what: "record tag",
                    })
                }
            }
        }
        Ok(p)
    }
}

/// A malformed `.fdata` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdataError {
    pub line: usize,
    pub what: &'static str,
}

impl fmt::Display for FdataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fdata line {}: bad {}", self.line, self.what)
    }
}

impl std::error::Error for FdataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdata_round_trip() {
        let mut p = Profile::new(ProfileMode::Lbr);
        p.num_samples = 42;
        p.add_branch(0x400010, 0x400100, true);
        p.add_branch(0x400010, 0x400100, false);
        p.add_fallthrough(0x400100, 0x400120);
        p.add_ip(0x400105);
        p.add_ip(0x400105);
        let text = p.to_fdata();
        let back = Profile::from_fdata(&text).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.branches[&(0x400010, 0x400100)], (2, 1));
        assert_eq!(back.ip_samples[&0x400105], 2);
    }

    #[test]
    fn fdata_rejects_garbage() {
        assert!(Profile::from_fdata("Z 1 2 3").is_err());
        assert!(Profile::from_fdata("B xyz 10 1 0").is_err());
        assert!(
            Profile::from_fdata("B 10 20 1").is_err(),
            "missing mispreds"
        );
        // Comments and blanks are fine.
        assert!(Profile::from_fdata("# hi\n\nM lbr 3\n").is_ok());
    }

    #[test]
    fn binary_artifact_round_trip_is_canonical() {
        let mut p = Profile::new(ProfileMode::Lbr);
        p.num_samples = 42;
        p.add_branch(0x400010, 0x400100, true);
        p.add_branch(0x400010, 0x400100, false);
        p.add_branch(0x400200, 0x400000, false);
        p.add_fallthrough(0x400100, 0x400120);
        p.add_ip(0x400105);
        let bytes = p.to_artifact();
        let back = Profile::from_artifact(&bytes).unwrap();
        assert_eq!(back, p);
        // Canonical: re-encoding the decode gives identical bytes.
        assert_eq!(back.to_artifact(), bytes);
        // Empty profile round-trips too.
        let empty = Profile::new(ProfileMode::IpSamples);
        assert_eq!(Profile::from_artifact(&empty.to_artifact()).unwrap(), empty);
    }

    #[test]
    fn binary_decode_rejects_slack_truncation_and_bad_mode() {
        let mut p = Profile::new(ProfileMode::Lbr);
        p.add_branch(1, 2, false);
        let payload = p.to_bytes();
        assert!(Profile::from_bytes(&payload[..payload.len() - 1]).is_err());
        let mut slack = payload.clone();
        slack.push(0);
        assert!(Profile::from_bytes(&slack).is_err());
        let mut bad_mode = payload.clone();
        bad_mode[0] = 9;
        assert!(Profile::from_bytes(&bad_mode).is_err());
    }

    #[test]
    fn merge_sums_every_count() {
        let mut a = Profile::new(ProfileMode::Lbr);
        a.num_samples = 2;
        a.add_branch(0x10, 0x20, true);
        a.add_fallthrough(0x20, 0x30);
        a.add_ip(0x25);
        let mut b = Profile::new(ProfileMode::Lbr);
        b.num_samples = 3;
        b.add_branch(0x10, 0x20, false);
        b.add_branch(0x40, 0x50, false);
        b.add_fallthrough(0x20, 0x30);
        b.add_ip(0x45);

        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.num_samples, 5);
        assert_eq!(m.branches[&(0x10, 0x20)], (2, 1));
        assert_eq!(m.branches[&(0x40, 0x50)], (1, 0));
        assert_eq!(m.fallthroughs[&(0x20, 0x30)], 2);
        assert_eq!(m.ip_samples[&0x25], 1);
        assert_eq!(m.ip_samples[&0x45], 1);

        // Commutative: b.merge(a) gives the same profile.
        let mut m2 = b.clone();
        m2.merge(&a);
        assert_eq!(m, m2);
        // merged() in order equals pairwise merging.
        assert_eq!(Profile::merged(ProfileMode::Lbr, [&a, &b]), m);
        // Merging an empty profile is the identity.
        let mut id = a.clone();
        id.merge(&Profile::new(ProfileMode::Lbr));
        assert_eq!(id, a);
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_rejects_mode_mismatch() {
        let mut a = Profile::new(ProfileMode::Lbr);
        a.merge(&Profile::new(ProfileMode::IpSamples));
    }

    #[test]
    fn totals() {
        let mut p = Profile::new(ProfileMode::Lbr);
        p.add_branch(1, 2, false);
        p.add_branch(1, 2, false);
        p.add_branch(3, 4, true);
        assert_eq!(p.total_branch_count(), 3);
        assert_eq!(p.sorted_branches().len(), 2);
    }
}
