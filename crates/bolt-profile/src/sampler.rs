//! Hardware-profiling simulation: LBR sampling and plain IP sampling
//! (paper section 5.1).

use crate::{Profile, ProfileMode};
use bolt_emu::{BlockEvent, BranchEvent, TraceSink};
use bolt_sim::BranchPredictor;

/// Which hardware event triggers a sample (paper section 5.1 compares
/// retired instructions, taken branches, and cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleTrigger {
    /// Every `period` retired instructions.
    Instructions,
    /// Every `period` taken branches.
    TakenBranches,
    /// Pseudo-cycles: instructions weighted by a coarse cost estimate —
    /// branches count triple (a proxy for the skew a cycles event has).
    PseudoCycles,
}

/// The depth of Intel's last-branch-record stack.
pub const LBR_DEPTH: usize = 32;

/// An LBR-based profiler: keeps a ring of the last [`LBR_DEPTH`] *taken*
/// branches; each sample flushes the ring into the aggregated profile,
/// adding fall-through ranges between consecutive records. A shadow
/// predictor marks records as mispredicted, like the LBR `MISP` bit.
#[derive(Debug)]
pub struct LbrSampler {
    ring: [(u64, u64, bool); LBR_DEPTH],
    filled: usize,
    head: usize,
    period: u64,
    trigger: SampleTrigger,
    countdown: u64,
    /// Instruction skid applied to the sample point (PEBS precision: 0 for
    /// precise, larger values for skiddy events).
    pub skid: u64,
    skid_left: u64,
    pending: bool,
    shadow: BranchPredictor,
    last_ip: u64,
    pub profile: Profile,
}

impl LbrSampler {
    pub fn new(period: u64, trigger: SampleTrigger) -> LbrSampler {
        LbrSampler {
            ring: [(0, 0, false); LBR_DEPTH],
            filled: 0,
            head: 0,
            period: period.max(1),
            trigger,
            countdown: period.max(1),
            skid: 0,
            skid_left: 0,
            pending: false,
            shadow: BranchPredictor::default(),
            last_ip: 0,
            profile: Profile::new(ProfileMode::Lbr),
        }
    }

    fn take_sample(&mut self) {
        self.profile.num_samples += 1;
        // Flush the ring oldest-to-newest.
        let n = self.filled;
        for k in 0..n {
            let idx = (self.head + LBR_DEPTH - n + k) % LBR_DEPTH;
            let (from, to, mispred) = self.ring[idx];
            self.profile.add_branch(from, to, mispred);
            // Fall-through between this record's target and the next
            // record's source.
            if k + 1 < n {
                let next_idx = (self.head + LBR_DEPTH - n + k + 1) % LBR_DEPTH;
                let (next_from, _, _) = self.ring[next_idx];
                if next_from >= to {
                    self.profile.add_fallthrough(to, next_from);
                }
            }
        }
        // Also record the interrupted IP (perf reports it alongside LBR).
        self.profile.add_ip(self.last_ip);
    }

    fn arm(&mut self) {
        if self.skid == 0 {
            self.take_sample();
        } else {
            self.pending = true;
            self.skid_left = self.skid;
        }
    }
}

impl TraceSink for LbrSampler {
    #[inline]
    fn on_inst(&mut self, addr: u64, _len: u8) {
        self.last_ip = addr;
        if self.pending {
            if self.skid_left == 0 {
                self.pending = false;
                self.take_sample();
            } else {
                self.skid_left -= 1;
            }
        }
        if self.trigger == SampleTrigger::Instructions {
            self.countdown -= 1;
            if self.countdown == 0 {
                self.countdown = self.period;
                self.arm();
            }
        } else if self.trigger == SampleTrigger::PseudoCycles {
            self.countdown = self.countdown.saturating_sub(1);
            if self.countdown == 0 {
                self.countdown = self.period;
                self.arm();
            }
        }
    }

    /// Batched path: when no sample (or pending skid) can trigger inside
    /// the block, the whole block is one countdown subtraction; a block
    /// containing the trigger point replays per instruction for exact
    /// attribution. Sampling periods dwarf block sizes, so the fast path
    /// is the overwhelmingly common case.
    #[inline]
    fn on_block(&mut self, ev: BlockEvent<'_>) {
        let Some(&(last_addr, _)) = ev.fetches.last() else {
            return; // an empty block retires nothing
        };
        if !self.pending {
            let n = ev.inst_count as u64;
            match self.trigger {
                // Both triggers decrement once per retired instruction.
                SampleTrigger::Instructions | SampleTrigger::PseudoCycles if self.countdown > n => {
                    self.countdown -= n;
                    self.last_ip = last_addr;
                    return;
                }
                // Branch-triggered samples fire in `on_branch`; retiring
                // instructions only tracks the interrupted IP.
                SampleTrigger::TakenBranches => {
                    self.last_ip = last_addr;
                    return;
                }
                _ => {}
            }
        }
        ev.replay(self);
    }

    #[inline]
    fn on_branch(&mut self, ev: BranchEvent) {
        let mispred = self.shadow.observe(ev).mispredicted;
        if !ev.taken {
            return; // LBRs record taken branches only (paper section 5.2).
        }
        self.ring[self.head] = (ev.from, ev.to, mispred);
        self.head = (self.head + 1) % LBR_DEPTH;
        self.filled = (self.filled + 1).min(LBR_DEPTH);
        match self.trigger {
            SampleTrigger::TakenBranches => {
                self.countdown -= 1;
                if self.countdown == 0 {
                    self.countdown = self.period;
                    self.arm();
                }
            }
            SampleTrigger::PseudoCycles => {
                // Branches are more expensive in the pseudo-cycle count.
                self.countdown = self.countdown.saturating_sub(2);
            }
            SampleTrigger::Instructions => {}
        }
    }
}

/// A plain IP sampler (non-LBR mode, paper section 5.1): a histogram of
/// sampled instruction pointers, with optional skid.
#[derive(Debug)]
pub struct IpSampler {
    period: u64,
    countdown: u64,
    pub skid: u64,
    skid_left: u64,
    pending: bool,
    pub profile: Profile,
}

impl IpSampler {
    pub fn new(period: u64) -> IpSampler {
        IpSampler {
            period: period.max(1),
            countdown: period.max(1),
            skid: 0,
            skid_left: 0,
            pending: false,
            profile: Profile::new(ProfileMode::IpSamples),
        }
    }
}

impl TraceSink for IpSampler {
    #[inline]
    fn on_inst(&mut self, addr: u64, _len: u8) {
        if self.pending {
            if self.skid_left == 0 {
                self.pending = false;
                self.profile.add_ip(addr);
                self.profile.num_samples += 1;
            } else {
                self.skid_left -= 1;
            }
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.period;
            if self.skid == 0 {
                self.profile.add_ip(addr);
                self.profile.num_samples += 1;
            } else {
                self.pending = true;
                self.skid_left = self.skid;
            }
        }
    }

    /// Batched path, mirroring [`LbrSampler::on_block`]: a block that
    /// cannot contain the trigger point is one subtraction.
    #[inline]
    fn on_block(&mut self, ev: BlockEvent<'_>) {
        let n = ev.inst_count as u64;
        if !self.pending && self.countdown > n {
            self.countdown -= n;
            return;
        }
        ev.replay(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_emu::BranchKind;

    fn taken(from: u64, to: u64) -> BranchEvent {
        BranchEvent {
            from,
            to,
            taken: true,
            kind: BranchKind::Uncond,
        }
    }

    #[test]
    fn lbr_records_last_32_taken_branches() {
        let mut s = LbrSampler::new(1_000_000, SampleTrigger::Instructions);
        // 40 distinct branches; only the last 32 are in the ring.
        for i in 0..40u64 {
            s.on_branch(taken(0x1000 + i * 16, 0x9000 + i * 16));
        }
        s.take_sample();
        assert_eq!(s.profile.branches.len(), 32);
        assert!(
            !s.profile.branches.contains_key(&(0x1000, 0x9000)),
            "oldest records were overwritten"
        );
        assert!(s
            .profile
            .branches
            .contains_key(&(0x1000 + 39 * 16, 0x9000 + 39 * 16)));
    }

    #[test]
    fn lbr_infers_fallthroughs_between_records() {
        let mut s = LbrSampler::new(1_000_000, SampleTrigger::Instructions);
        // Branch lands at 0x2000; next branch leaves from 0x2010:
        // the range [0x2000, 0x2010] executed sequentially.
        s.on_branch(taken(0x1000, 0x2000));
        s.on_branch(taken(0x2010, 0x3000));
        s.take_sample();
        assert_eq!(s.profile.fallthroughs.get(&(0x2000, 0x2010)), Some(&1));
    }

    #[test]
    fn lbr_ignores_not_taken() {
        let mut s = LbrSampler::new(1_000_000, SampleTrigger::Instructions);
        s.on_branch(BranchEvent {
            from: 0x1000,
            to: 0x1002,
            taken: false,
            kind: BranchKind::Cond,
        });
        s.take_sample();
        assert!(
            s.profile.branches.is_empty(),
            "not-taken is invisible to LBR"
        );
    }

    #[test]
    fn instruction_trigger_periodicity() {
        let mut s = LbrSampler::new(100, SampleTrigger::Instructions);
        s.on_branch(taken(0x1000, 0x2000));
        for i in 0..1000u64 {
            s.on_inst(0x2000 + i, 1);
        }
        assert_eq!(s.profile.num_samples, 10);
    }

    /// Batched block events must sample identically to per-instruction
    /// replay — across trigger kinds, skid, and trigger points landing
    /// inside blocks.
    #[test]
    fn batched_blocks_match_per_inst_sampling() {
        use bolt_emu::BlockEvent;
        // 3-inst blocks against a period of 7: the trigger point cycles
        // through every intra-block offset; a taken branch between
        // blocks keeps the ring and the branch-trigger countdown live.
        for trigger in [
            SampleTrigger::Instructions,
            SampleTrigger::TakenBranches,
            SampleTrigger::PseudoCycles,
        ] {
            for skid in [0u64, 2] {
                let mut stepped = LbrSampler::new(7, trigger);
                stepped.skid = skid;
                let mut batched = LbrSampler::new(7, trigger);
                batched.skid = skid;
                let mut at = 0x400000u64;
                for round in 0..50u64 {
                    let fetches: Vec<(u64, u8)> = (0..3).map(|i| (at + i * 4, 4u8)).collect();
                    let ev = BlockEvent {
                        entry: at,
                        inst_count: 3,
                        byte_len: 12,
                        fetches: &fetches,
                        lines64: &[],
                        crossings64: 0,
                        mems: &[],
                    };
                    for &(addr, len) in &fetches {
                        stepped.on_inst(addr, len);
                    }
                    batched.on_block(ev);
                    let br = taken(at + 8, 0x400000 + (round % 5) * 64);
                    stepped.on_branch(br);
                    batched.on_branch(br);
                    at = br.to;
                }
                stepped.take_sample();
                batched.take_sample();
                assert_eq!(
                    stepped.profile, batched.profile,
                    "trigger {trigger:?} skid {skid}"
                );
            }
        }
    }

    #[test]
    fn batched_blocks_match_per_inst_ip_sampling() {
        use bolt_emu::BlockEvent;
        for skid in [0u64, 3] {
            let mut stepped = IpSampler::new(7);
            stepped.skid = skid;
            let mut batched = IpSampler::new(7);
            batched.skid = skid;
            for round in 0..40u64 {
                let at = 0x400000 + (round % 6) * 32;
                let fetches: Vec<(u64, u8)> = (0..4).map(|i| (at + i * 4, 4u8)).collect();
                let ev = BlockEvent {
                    entry: at,
                    inst_count: 4,
                    byte_len: 16,
                    fetches: &fetches,
                    lines64: &[],
                    crossings64: 0,
                    mems: &[],
                };
                for &(addr, len) in &fetches {
                    stepped.on_inst(addr, len);
                }
                batched.on_block(ev);
            }
            assert_eq!(stepped.profile, batched.profile, "skid {skid}");
        }
    }

    #[test]
    fn ip_sampler_histogram_and_skid() {
        let mut s = IpSampler::new(10);
        for _ in 0..10 {
            for i in 0..10u64 {
                s.on_inst(0x4000 + i, 1);
            }
        }
        assert_eq!(s.profile.num_samples, 10);
        // Period 10 over a 10-instruction loop: always the same IP.
        assert_eq!(s.profile.ip_samples.len(), 1);

        let mut skiddy = IpSampler::new(10);
        skiddy.skid = 3;
        for _ in 0..10 {
            for i in 0..10u64 {
                skiddy.on_inst(0x4000 + i, 1);
            }
        }
        let skid_ip = *skiddy.profile.ip_samples.keys().next().unwrap();
        let precise_ip = *s.profile.ip_samples.keys().next().unwrap();
        assert_eq!(
            skid_ip,
            0x4000 + ((precise_ip - 0x4000) + 3 + 1) % 10,
            "skid shifts attribution"
        );
    }
}
