//! # bolt-hfsort — profile-guided function ordering
//!
//! Implements the HFSort technique of Ottoni & Maher ("Optimizing Function
//! Placement for Large-scale Data-center Applications", CGO 2017), which
//! BOLT applies as its `reorder-functions` pass (paper Table 1, pass 13),
//! plus the `hfsort+` refinement and the classic Pettis–Hansen ordering
//! for comparison.
//!
//! The input is a weighted dynamic call graph; the output is a function
//! order that packs callers next to hot callees, primarily improving
//! I-TLB behaviour and secondarily I-cache (paper section 4).

mod callgraph;
mod orders;

pub use callgraph::{CallGraph, CgNode};
pub use orders::{hfsort, hfsort_plus, order_functions, pettis_hansen, Algorithm};
