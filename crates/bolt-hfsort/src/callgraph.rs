//! The weighted dynamic call graph.

use std::collections::HashMap;

/// A call-graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgNode {
    pub name: String,
    /// Code size in bytes (used by clustering size caps and density).
    pub size: u64,
    /// Profile samples attributed to the function.
    pub samples: u64,
}

/// A weighted directed call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    pub nodes: Vec<CgNode>,
    /// `(caller, callee) -> weight`.
    pub edges: HashMap<(usize, usize), u64>,
    by_name: HashMap<String, usize>,
}

impl CallGraph {
    pub fn new() -> CallGraph {
        CallGraph::default()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, name: impl Into<String>, size: u64, samples: u64) -> usize {
        let name = name.into();
        let idx = self.nodes.len();
        self.by_name.insert(name.clone(), idx);
        self.nodes.push(CgNode {
            name,
            size,
            samples,
        });
        idx
    }

    /// Looks up a node index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Accumulates call weight from `caller` to `callee`.
    pub fn add_edge(&mut self, caller: usize, callee: usize, weight: u64) {
        if caller == callee {
            return;
        }
        *self.edges.entry((caller, callee)).or_insert(0) += weight;
    }

    /// The hottest caller of `callee` with its weight.
    pub fn hottest_caller(&self, callee: usize) -> Option<(usize, u64)> {
        self.edges
            .iter()
            .filter(|((_, to), _)| *to == callee)
            .map(|(&(from, _), &w)| (from, w))
            .max_by_key(|&(from, w)| (w, std::cmp::Reverse(from)))
    }

    /// Edges sorted by descending weight (deterministic tie-breaks).
    pub fn edges_by_weight(&self) -> Vec<(usize, usize, u64)> {
        let mut v: Vec<(usize, usize, u64)> =
            self.edges.iter().map(|(&(a, b), &w)| (a, b, w)).collect();
        v.sort_unstable_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        v
    }

    /// Node indices by descending sample count (deterministic).
    pub fn nodes_by_heat(&self) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.nodes.len()).collect();
        v.sort_unstable_by_key(|&i| (std::cmp::Reverse(self.nodes[i].samples), i));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_accumulate_and_ignore_self_calls() {
        let mut cg = CallGraph::new();
        let a = cg.add_node("a", 100, 50);
        let b = cg.add_node("b", 200, 10);
        cg.add_edge(a, b, 5);
        cg.add_edge(a, b, 7);
        cg.add_edge(a, a, 100);
        assert_eq!(cg.edges[&(a, b)], 12);
        assert!(!cg.edges.contains_key(&(a, a)));
        assert_eq!(cg.hottest_caller(b), Some((a, 12)));
        assert_eq!(cg.index_of("b"), Some(b));
    }

    #[test]
    fn deterministic_orderings() {
        let mut cg = CallGraph::new();
        let a = cg.add_node("a", 1, 5);
        let b = cg.add_node("b", 1, 5);
        let c = cg.add_node("c", 1, 9);
        cg.add_edge(a, c, 3);
        cg.add_edge(b, c, 3);
        assert_eq!(cg.nodes_by_heat(), vec![c, a, b]);
        let e = cg.edges_by_weight();
        assert_eq!(e[0].0, a, "tie broken by node index");
    }
}
