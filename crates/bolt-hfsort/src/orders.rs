//! The ordering algorithms: HFSort (C3), HFSort+, and Pettis–Hansen.

use crate::CallGraph;

/// Function-ordering algorithm selector (BOLT's `-reorder-functions=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Keep the original order.
    None,
    /// HFSort / C3 clustering.
    Hfsort,
    /// HFSort with page-aware merge gains (`hfsort+`).
    #[default]
    HfsortPlus,
    /// Classic Pettis–Hansen closest-is-best merging.
    PettisHansen,
}

/// Page size used for clustering caps and gain estimation.
const PAGE_SIZE: u64 = 4096;
/// C3 maximum cluster size (one huge page's worth of hot text in the
/// original; scaled to our binaries).
const MAX_CLUSTER_SIZE: u64 = 8 * PAGE_SIZE;
/// C3 merge-density degradation limit.
const DENSITY_DEGRADATION: u64 = 8;

#[derive(Debug, Clone)]
struct Cluster {
    funcs: Vec<usize>,
    size: u64,
    samples: u64,
}

impl Cluster {
    fn density(&self) -> f64 {
        if self.size == 0 {
            0.0
        } else {
            self.samples as f64 / self.size as f64
        }
    }
}

fn singleton_clusters(cg: &CallGraph) -> (Vec<Cluster>, Vec<usize>) {
    let clusters: Vec<Cluster> = (0..cg.nodes.len())
        .map(|i| Cluster {
            funcs: vec![i],
            size: cg.nodes[i].size.max(1),
            samples: cg.nodes[i].samples,
        })
        .collect();
    let cluster_of: Vec<usize> = (0..cg.nodes.len()).collect();
    (clusters, cluster_of)
}

fn merge(clusters: &mut [Cluster], cluster_of: &mut [usize], into: usize, from: usize) {
    let moved = std::mem::take(&mut clusters[from].funcs);
    for &f in &moved {
        cluster_of[f] = into;
    }
    let (fsize, fsamples) = (clusters[from].size, clusters[from].samples);
    clusters[from].size = 0;
    clusters[from].samples = 0;
    clusters[into].funcs.extend(moved);
    clusters[into].size += fsize;
    clusters[into].samples += fsamples;
}

fn emit_order(cg: &CallGraph, clusters: Vec<Cluster>) -> Vec<usize> {
    // Clusters by descending density, then concatenate.
    let mut order: Vec<&Cluster> = clusters.iter().filter(|c| !c.funcs.is_empty()).collect();
    order.sort_by(|a, b| {
        b.density()
            .partial_cmp(&a.density())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.funcs[0].cmp(&b.funcs[0]))
    });
    let mut out: Vec<usize> = order.iter().flat_map(|c| c.funcs.clone()).collect();
    debug_assert_eq!(out.len(), cg.nodes.len());
    // Safety net: any missing nodes appended in index order.
    let mut seen = vec![false; cg.nodes.len()];
    for &f in &out {
        seen[f] = true;
    }
    for (i, s) in seen.iter().enumerate() {
        if !s {
            out.push(i);
        }
    }
    out
}

/// HFSort / C3 clustering (Ottoni & Maher, CGO 2017).
///
/// Functions are visited hottest-first; each is appended to the cluster of
/// its hottest caller when (a) the merged cluster stays under the size
/// cap, and (b) the merge does not dilute the caller cluster's density by
/// more than the degradation limit (8x).
pub fn hfsort(cg: &CallGraph) -> Vec<usize> {
    let (mut clusters, mut cluster_of) = singleton_clusters(cg);
    for f in cg.nodes_by_heat() {
        if cg.nodes[f].samples == 0 {
            continue;
        }
        let Some((caller, _)) = cg.hottest_caller(f) else {
            continue;
        };
        let cf = cluster_of[f];
        let cc = cluster_of[caller];
        if cf == cc {
            continue;
        }
        // Only append to the caller cluster when f's cluster currently
        // starts with f (keeps callee right after its caller chain).
        if clusters[cf].funcs.first() != Some(&f) {
            continue;
        }
        if clusters[cc].size + clusters[cf].size > MAX_CLUSTER_SIZE {
            continue;
        }
        let merged_density = (clusters[cc].samples + clusters[cf].samples) as f64
            / (clusters[cc].size + clusters[cf].size) as f64;
        if merged_density * (DENSITY_DEGRADATION as f64) < clusters[cc].density() {
            continue;
        }
        merge(&mut clusters, &mut cluster_of, cc, cf);
    }
    emit_order(cg, clusters)
}

/// `hfsort+`: like C3 but merges are driven by an expected page-locality
/// gain — callers and callees co-located within a page avoid an I-TLB
/// crossing proportional to the edge weight — and considers both merge
/// orientations.
pub fn hfsort_plus(cg: &CallGraph) -> Vec<usize> {
    let (mut clusters, mut cluster_of) = singleton_clusters(cg);
    // Process edges hottest-first, merging when the gain (edge weight
    // scaled by co-location probability) is positive.
    for (a, b, w) in cg.edges_by_weight() {
        let ca = cluster_of[a];
        let cb = cluster_of[b];
        if ca == cb {
            continue;
        }
        let merged_size = clusters[ca].size + clusters[cb].size;
        if merged_size > MAX_CLUSTER_SIZE {
            continue;
        }
        // Expected page crossings avoided: the caller's tail and callee's
        // head land on the same page with probability ~ 1 - size/page.
        let co_location = 1.0 - (merged_size as f64 / (MAX_CLUSTER_SIZE as f64 * 2.0));
        let gain = w as f64 * co_location.max(0.0);
        if gain <= 0.0 {
            continue;
        }
        // Orient the merge caller-then-callee: append cb after ca when the
        // caller cluster ends hot, otherwise prepend.
        if clusters[cb].funcs.first() == Some(&b) {
            merge(&mut clusters, &mut cluster_of, ca, cb);
        } else if clusters[ca].funcs.first() == Some(&a) {
            merge(&mut clusters, &mut cluster_of, cb, ca);
        }
    }
    emit_order(cg, clusters)
}

/// Classic Pettis–Hansen function ordering: repeatedly merge the clusters
/// joined by the heaviest remaining edge, no size cap.
pub fn pettis_hansen(cg: &CallGraph) -> Vec<usize> {
    let (mut clusters, mut cluster_of) = singleton_clusters(cg);
    for (a, b, _w) in cg.edges_by_weight() {
        let ca = cluster_of[a];
        let cb = cluster_of[b];
        if ca == cb {
            continue;
        }
        merge(&mut clusters, &mut cluster_of, ca, cb);
    }
    emit_order(cg, clusters)
}

/// Dispatch by [`Algorithm`]; returns node indices in new order.
pub fn order_functions(cg: &CallGraph, algo: Algorithm) -> Vec<usize> {
    match algo {
        Algorithm::None => (0..cg.nodes.len()).collect(),
        Algorithm::Hfsort => hfsort(cg),
        Algorithm::HfsortPlus => hfsort_plus(cg),
        Algorithm::PettisHansen => pettis_hansen(cg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// main -> {hot (1000), cold (1)}; hot -> helper (900).
    fn sample_cg() -> CallGraph {
        let mut cg = CallGraph::new();
        let main = cg.add_node("main", 256, 100);
        let hot = cg.add_node("hot", 512, 1000);
        let cold = cg.add_node("cold", 512, 1);
        let helper = cg.add_node("helper", 128, 900);
        cg.add_edge(main, hot, 1000);
        cg.add_edge(main, cold, 1);
        cg.add_edge(hot, helper, 900);
        cg
    }

    fn pos(order: &[usize], node: usize) -> usize {
        order.iter().position(|&n| n == node).unwrap()
    }

    #[test]
    fn all_algorithms_produce_permutations() {
        let cg = sample_cg();
        for algo in [
            Algorithm::None,
            Algorithm::Hfsort,
            Algorithm::HfsortPlus,
            Algorithm::PettisHansen,
        ] {
            let order = order_functions(&cg, algo);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "{algo:?} is a permutation");
        }
    }

    #[test]
    fn hot_chain_is_packed_together() {
        let cg = sample_cg();
        for algo in [
            Algorithm::Hfsort,
            Algorithm::HfsortPlus,
            Algorithm::PettisHansen,
        ] {
            let order = order_functions(&cg, algo);
            let d = pos(&order, 1).abs_diff(pos(&order, 3));
            assert!(
                d <= 2,
                "{algo:?}: hot and helper should be near each other in {order:?}"
            );
            // Cold function should not sit between main and hot.
            let main_p = pos(&order, 0);
            let hot_p = pos(&order, 1);
            let cold_p = pos(&order, 2);
            let between = (main_p.min(hot_p)..main_p.max(hot_p)).contains(&cold_p);
            assert!(
                !between,
                "{algo:?}: cold not between main and hot: {order:?}"
            );
        }
    }

    #[test]
    fn c3_respects_size_cap() {
        let mut cg = CallGraph::new();
        let a = cg.add_node("a", MAX_CLUSTER_SIZE - 10, 100);
        let b = cg.add_node("b", 100, 90);
        cg.add_edge(a, b, 1000);
        let order = hfsort(&cg);
        // Merge rejected by the size cap: both clusters remain; density
        // ordering puts b (denser) first.
        assert_eq!(order.len(), 2);
        let c_a = cg.nodes[a].samples as f64 / cg.nodes[a].size as f64;
        let c_b = cg.nodes[b].samples as f64 / cg.nodes[b].size as f64;
        assert!(c_b > c_a);
        assert_eq!(order[0], b);
    }

    #[test]
    fn cold_functions_sink() {
        let mut cg = CallGraph::new();
        let cold1 = cg.add_node("cold1", 1000, 0);
        let hot = cg.add_node("hot", 100, 5000);
        let cold2 = cg.add_node("cold2", 1000, 0);
        let _ = (cold1, cold2);
        for algo in [Algorithm::Hfsort, Algorithm::HfsortPlus] {
            let order = order_functions(&cg, algo);
            assert_eq!(order[0], hot, "{algo:?}: hottest first in {order:?}");
        }
    }
}
