//! # bolt — a practical binary optimizer for data centers and beyond
//!
//! A complete, pure-Rust reproduction of **BOLT** (Panchenko, Auler, Nell,
//! Ottoni — CGO 2019): a *static post-link binary optimizer* driven by
//! sample-based (LBR) profiles, together with every substrate its
//! evaluation depends on:
//!
//! | crate | role |
//! |-------|------|
//! | [`isa`] | x86-64 subset encoder/disassembler (the LLVM MC analogue) |
//! | [`elf`] | ELF64 reader/writer |
//! | [`ir`] | binary IR: functions, blocks, CFG, dataflow, metadata tables |
//! | [`compiler`] | MIR compiler + linker substrate (PGO, LTO, PLT, jump tables) |
//! | [`emu`] | functional emulator producing the hardware-event trace |
//! | [`sim`] | cache/TLB/branch-predictor model and cycle accounting |
//! | [`profile`] | LBR & IP samplers, `.fdata`, CFG attachment, flow repair |
//! | [`hfsort`] | HFSort / HFSort+ / Pettis–Hansen function ordering |
//! | [`passes`] | the sixteen-pass pipeline of paper Table 1 |
//! | [`opt`] | the BOLT driver: discover → disassemble → optimize → rewrite |
//! | [`verify`] | static CFG-preservation verifier: re-disassembler, IR lint, mutation seeds |
//! | [`workloads`] | synthetic data-center and compiler workloads |
//!
//! ## Quickstart
//!
//! ```
//! use bolt::compiler::CompileOptions;
//! use bolt::opt::{optimize, BoltOptions};
//! use bolt::profile::{LbrSampler, SampleTrigger};
//! use bolt::emu::Machine;
//! use bolt::workloads::{Scale, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Build a workload binary with the compiler substrate.
//! let program = Workload::Tao.build(Scale::Test);
//! let binary = bolt::compiler::compile_and_link(&program, &CompileOptions::default())?;
//!
//! // 2. Run it under the emulator with LBR sampling (the "perf record"
//! //    step).
//! let mut machine = Machine::new();
//! machine.load_elf(&binary.elf);
//! let mut sampler = LbrSampler::new(997, SampleTrigger::Instructions);
//! machine.run(&mut sampler, 100_000_000)?;
//!
//! // 3. BOLT it.
//! let bolted = optimize(&binary.elf, &sampler.profile, &BoltOptions::paper_default())?;
//!
//! // 4. The rewritten binary behaves identically — and takes far fewer
//! //    taken branches (paper Table 2).
//! let mut machine2 = Machine::new();
//! machine2.load_elf(&bolted.elf);
//! machine2.run(&mut bolt::emu::NullSink, 100_000_000)?;
//! assert_eq!(machine.output, machine2.output);
//! assert!(bolted.dyno_after.taken_branches <= bolted.dyno_before.taken_branches);
//! # Ok(())
//! # }
//! ```

pub mod shard_artifact;

pub use bolt_compiler as compiler;
pub use bolt_elf as elf;
pub use bolt_emu as emu;
pub use bolt_hfsort as hfsort;
pub use bolt_ir as ir;
pub use bolt_isa as isa;
pub use bolt_opt as opt;
pub use bolt_passes as passes;
pub use bolt_profile as profile;
pub use bolt_sim as sim;
pub use bolt_verify as verify;
pub use bolt_workloads as workloads;
