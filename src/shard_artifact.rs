//! The combined per-shard run artifact: everything a supervised worker
//! produced for one shard, framed as a single durable
//! [`KIND_SHARD_RUN`](bolt_emu::artifact::KIND_SHARD_RUN) file.
//!
//! A shard run has four outputs the reducer must merge *in shard-index
//! order* to stay byte-identical with the in-process path: the
//! emulated program's output words, the exit status, the step count,
//! and (depending on flags) a sampled [`Profile`] and/or simulated
//! [`Counters`]. Bundling them in one artifact means a shard is either
//! completely durable or not durable at all — there is no window where
//! a crash leaves the profile on disk but not the counters.
//!
//! Payload layout (little-endian, after the standard frame header):
//!
//! ```text
//! u32            shard index
//! u8 tag, i64    exit (0 = Exited(code), 1 = MaxSteps, 2 = Returned)
//! u64            steps retired
//! u32, i64×n     emulated program output words
//! u8 [, u64, b]  optional Profile payload (Profile::to_bytes)
//! u8 [, u64, b]  optional Counters payload (Counters::to_bytes)
//! ```

use bolt_emu::artifact::{self, ArtifactError, ByteReader, KIND_SHARD_RUN};
use bolt_emu::Exit;
use bolt_profile::Profile;
use bolt_sim::Counters;
use std::path::Path;

/// One shard's complete, mergeable result.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardArtifact {
    /// Which shard of the run this is (0-based).
    pub shard: u32,
    /// How the emulated program stopped.
    pub exit: Exit,
    /// Instructions retired.
    pub steps: u64,
    /// The emulated program's output words, in emission order.
    pub output: Vec<i64>,
    /// LBR/IP samples, when the worker ran with a sampler attached.
    pub profile: Option<Profile>,
    /// Simulated hardware counters, when the worker ran the model.
    pub counters: Option<Counters>,
}

fn exit_tag(exit: &Exit) -> (u8, i64) {
    match exit {
        Exit::Exited(code) => (0, *code),
        Exit::MaxSteps => (1, 0),
        Exit::Returned => (2, 0),
    }
}

fn exit_from_tag(tag: u8, code: i64) -> Result<Exit, ArtifactError> {
    match tag {
        0 => Ok(Exit::Exited(code)),
        1 => Ok(Exit::MaxSteps),
        2 => Ok(Exit::Returned),
        _ => Err(ArtifactError::Malformed("shard exit tag")),
    }
}

impl ShardArtifact {
    /// Canonical payload encoding (stable across runs for identical
    /// inputs — the resume test depends on byte-identity).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.shard.to_le_bytes());
        let (tag, code) = exit_tag(&self.exit);
        out.push(tag);
        out.extend_from_slice(&code.to_le_bytes());
        out.extend_from_slice(&self.steps.to_le_bytes());
        out.extend_from_slice(&(self.output.len() as u32).to_le_bytes());
        for w in &self.output {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for (present, bytes) in [
            (
                self.profile.is_some(),
                self.profile.as_ref().map(Profile::to_bytes),
            ),
            (
                self.counters.is_some(),
                self.counters.as_ref().map(Counters::to_bytes),
            ),
        ] {
            out.push(u8::from(present));
            if let Some(b) = bytes {
                out.extend_from_slice(&(b.len() as u64).to_le_bytes());
                out.extend_from_slice(&b);
            }
        }
        out
    }

    /// Decodes a [`ShardArtifact::to_bytes`] payload; the payload must
    /// be consumed exactly.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardArtifact, ArtifactError> {
        let mut r = ByteReader::new(bytes);
        let shard = r.u32("shard index")?;
        let tag = r.u8("exit tag")?;
        let code = r.i64("exit code")?;
        let exit = exit_from_tag(tag, code)?;
        let steps = r.u64("steps")?;
        let n_out = r.count(8, "output count")?;
        let mut output = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            output.push(r.i64("output word")?);
        }
        let profile = match r.u8("profile presence")? {
            0 => None,
            1 => {
                let len = r.u64("profile length")? as usize;
                Some(Profile::from_bytes(r.bytes(len, "profile payload")?)?)
            }
            _ => return Err(ArtifactError::Malformed("profile presence flag")),
        };
        let counters = match r.u8("counters presence")? {
            0 => None,
            1 => {
                let len = r.u64("counters length")? as usize;
                Some(Counters::from_bytes(r.bytes(len, "counters payload")?)?)
            }
            _ => return Err(ArtifactError::Malformed("counters presence flag")),
        };
        r.finish("shard artifact slack")?;
        Ok(ShardArtifact {
            shard,
            exit,
            steps,
            output,
            profile,
            counters,
        })
    }

    /// Frames the payload as a [`KIND_SHARD_RUN`] artifact.
    pub fn to_artifact(&self) -> Vec<u8> {
        artifact::frame(KIND_SHARD_RUN, &self.to_bytes())
    }

    /// Validates framing and decodes a [`ShardArtifact::to_artifact`]
    /// byte string.
    pub fn from_artifact(bytes: &[u8]) -> Result<ShardArtifact, ArtifactError> {
        ShardArtifact::from_bytes(artifact::unframe(bytes, KIND_SHARD_RUN)?)
    }

    /// Writes the framed artifact atomically (temp file + rename).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        artifact::write_atomic(path, &self.to_artifact())
    }

    /// Reads, validates, and decodes a shard artifact file.
    pub fn read(path: &Path) -> Result<ShardArtifact, ArtifactError> {
        ShardArtifact::from_artifact(
            &std::fs::read(path).map_err(|e| ArtifactError::Io(e.to_string()))?,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_profile::ProfileMode;

    fn sample() -> ShardArtifact {
        let mut profile = Profile::new(ProfileMode::Lbr);
        profile.add_branch(0x401000, 0x402000, false);
        profile.add_branch(0x401000, 0x402000, true);
        profile.num_samples = 2;
        let counters = Counters {
            instructions: 1234,
            cycles: 2048.5,
            ..Counters::default()
        };
        ShardArtifact {
            shard: 3,
            exit: Exit::Exited(0),
            steps: 987_654,
            output: vec![1, -2, i64::MAX, i64::MIN],
            profile: Some(profile),
            counters: Some(counters),
        }
    }

    #[test]
    fn round_trips_all_field_combinations() {
        let full = sample();
        assert_eq!(
            ShardArtifact::from_artifact(&full.to_artifact()).unwrap(),
            full
        );

        for (with_profile, with_counters) in [(false, false), (true, false), (false, true)] {
            let mut a = sample();
            if !with_profile {
                a.profile = None;
            }
            if !with_counters {
                a.counters = None;
            }
            assert_eq!(ShardArtifact::from_artifact(&a.to_artifact()).unwrap(), a);
        }

        for exit in [Exit::Exited(-17), Exit::MaxSteps, Exit::Returned] {
            let mut a = sample();
            a.exit = exit;
            let back = ShardArtifact::from_artifact(&a.to_artifact()).unwrap();
            assert_eq!(back.exit, a.exit);
        }
    }

    #[test]
    fn encoding_is_canonical() {
        let a = sample();
        let bytes = a.to_artifact();
        let back = ShardArtifact::from_artifact(&bytes).unwrap();
        assert_eq!(back.to_artifact(), bytes);
    }

    #[test]
    fn rejects_slack_truncation_and_bad_tags() {
        let payload = sample().to_bytes();
        assert!(ShardArtifact::from_bytes(&payload[..payload.len() - 1]).is_err());
        let mut slack = payload.clone();
        slack.push(0);
        assert!(ShardArtifact::from_bytes(&slack).is_err());
        let mut bad_exit = payload.clone();
        bad_exit[4] = 9;
        assert!(ShardArtifact::from_bytes(&bad_exit).is_err());
        let framed = sample().to_artifact();
        let mut flipped = framed.clone();
        *flipped.last_mut().unwrap() ^= 0x80;
        assert!(ShardArtifact::from_artifact(&flipped).is_err());
    }

    #[test]
    fn write_and_read_round_trip() {
        let dir = std::env::temp_dir().join(format!("bolt-shard-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.bolta");
        let a = sample();
        a.write(&path).unwrap();
        assert_eq!(ShardArtifact::read(&path).unwrap(), a);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
