//! The `bolt-run` tool: executes an ELF binary under the emulator,
//! optionally collecting a profile (the `perf record` + `perf2bolt` step)
//! and reporting microarchitectural counters.
//!
//! ```sh
//! bolt-run app.elf --fdata app.fdata          # LBR profiling
//! bolt-run app.elf --fdata app.fdata --ip     # plain IP samples
//! bolt-run app.elf --counters                 # perf-stat style output
//! ```

use bolt::elf::read_elf;
use bolt::emu::{Exit, Machine, NullSink, Tee, TraceSink};
use bolt::profile::{IpSampler, LbrSampler, SampleTrigger};
use bolt::sim::{CpuModel, SimConfig};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bolt-run <app.elf> [--fdata <out.fdata>] [--ip] [--period N] [--counters] [--max-steps N]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut fdata = None;
    let mut use_ip = false;
    let mut period = 997u64;
    let mut counters = false;
    let mut max_steps = u64::MAX;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fdata" => fdata = it.next().cloned(),
            "--ip" => use_ip = true,
            "--counters" => counters = true,
            "--period" => {
                period = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-steps" => {
                max_steps = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            s if s.starts_with('-') => usage(),
            _ if input.is_none() => input = Some(a.clone()),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };

    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bolt-run: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elf = match read_elf(&bytes) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bolt-run: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut machine = Machine::new();
    machine.load_elf(&elf);

    let mut lbr = LbrSampler::new(period, SampleTrigger::Instructions);
    let mut ip = IpSampler::new(period);
    let mut model = CpuModel::new(SimConfig::server());
    let mut null = NullSink;

    // Compose the requested sinks.
    let profiling = fdata.is_some();
    let run = {
        let prof_sink: &mut dyn TraceSink = if !profiling {
            &mut null
        } else if use_ip {
            &mut ip
        } else {
            &mut lbr
        };
        if counters {
            let mut tee = Tee(prof_sink, &mut model);
            machine.run(&mut tee, max_steps)
        } else {
            machine.run(prof_sink, max_steps)
        }
    };

    let run = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bolt-run: execution failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for v in &machine.output {
        println!("{v}");
    }
    eprintln!("bolt-run: {} instructions, exit {:?}", run.steps, run.exit);

    if counters {
        let c = model.counters();
        eprintln!("  cycles            {:>14.0}", c.cycles);
        eprintln!("  ipc               {:>14.2}", c.ipc());
        eprintln!("  branch-misses     {:>14}", c.branch_mispredicts);
        eprintln!("  L1-icache-misses  {:>14}", c.l1i_misses);
        eprintln!("  L1-dcache-misses  {:>14}", c.l1d_misses);
        eprintln!("  iTLB-misses       {:>14}", c.itlb_misses);
        eprintln!("  LLC-misses        {:>14}", c.llc_misses);
    }
    if let Some(path) = fdata {
        let profile = if use_ip { ip.profile } else { lbr.profile };
        if let Err(e) = std::fs::write(&path, profile.to_fdata()) {
            eprintln!("bolt-run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bolt-run: wrote {path} ({} samples)", profile.num_samples);
    }

    match run.exit {
        Exit::Exited(0) => ExitCode::SUCCESS,
        Exit::Exited(_) => ExitCode::from(1),
        _ => ExitCode::FAILURE,
    }
}
