//! The `bolt-run` tool: executes an ELF binary under the emulator,
//! optionally collecting a profile (the `perf record` + `perf2bolt` step)
//! and reporting microarchitectural counters.
//!
//! ```sh
//! bolt-run app.elf --fdata app.fdata          # LBR profiling
//! bolt-run app.elf --fdata app.fdata --ip     # plain IP samples
//! bolt-run app.elf --counters                 # perf-stat style output
//! bolt-run app.elf --fdata app.fdata --shards 8 --threads 4
//! #   sharded profiling: 8 independent invocations across 4 workers,
//! #   per-shard profiles merged in shard order, counters summed
//! bolt-run app.elf --fdata app.fdata --shards 8 --shard-config 4000
//! #   seed-partitioned: shard i runs with the `config` input-selection
//! #   global set to 4000+i, splitting the input space instead of
//! #   repeating the same invocation 8 times
//! bolt-run app.elf --fdata app.fdata --shards 8 --supervise
//! #   crash-safe process-level sharding: each shard is its own OS
//! #   process writing a durable artifact; hung workers are killed at a
//! #   deadline, crashed workers retried with deterministic backoff,
//! #   persistent failures quarantined, and an interrupted run resumes
//! #   by re-executing only the missing shards. The merged result is
//! #   byte-identical to the in-process path.
//! ```

use bolt::elf::read_elf;
use bolt::emu::{
    resolve_engine, resolve_max_steps, resolve_shards, run_batch, run_supervised, BranchEvent,
    Engine, Exit, ShardPlan, SupervisePlan, TraceSink,
};
use bolt::passes::resolve_threads;
use bolt::profile::{IpSampler, LbrSampler, Profile, ProfileMode, SampleTrigger};
use bolt::shard_artifact::ShardArtifact;
use bolt::sim::{Counters, CpuModel, SimConfig};
use bolt::verify::{ArtifactMutation, CrashMode, CrashSpec, XorShift64};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: bolt-run <app.elf> [--fdata <out.fdata>] [--ip] [--period N] \
         [--counters] [--max-steps N] [--shards N] [--threads N] \
         [--engine step|block|superblock|uop] [--validate-uops] [--validate-semantics] \
         [--supervise] [--state-dir DIR] [--deadline-ms N] [--retries N] \
         [--backoff-ms N] [--seed N]\n\
         \n\
         --shards N   run N independent invocations (sharded batch\n\
         \x20            emulation; 0 = auto [BOLT_SHARDS env or 1]); the\n\
         \x20            merged profile and summed counters are byte-identical\n\
         \x20            at any worker count. Without --shard-config the N\n\
         \x20            invocations are identical (N x the work, N x the\n\
         \x20            samples)\n\
         --threads N  workers for the shard batch (0 = auto [BOLT_THREADS\n\
         \x20            env or available parallelism]); with --supervise,\n\
         \x20            the maximum concurrently-running worker processes\n\
         --max-steps N\n\
         \x20            per-shard step budget (0/absent = auto: the\n\
         \x20            BOLT_MAX_STEPS env override, else unlimited)\n\
         --shard-config BASE\n\
         \x20            seed-partition the batch: write BASE+i into the\n\
         \x20            binary's `config` input-selection global for shard i,\n\
         \x20            so the shards split the input space\n\
         --engine step|block|superblock|uop\n\
         \x20            emulation engine (default: the BOLT_ENGINE env\n\
         \x20            override, else per-instruction stepping). `block`\n\
         \x20            executes through a basic-block translation cache;\n\
         \x20            `superblock` additionally spans memory-touching\n\
         \x20            instructions and chains block transitions; `uop`\n\
         \x20            further lowers each block to pre-resolved micro-ops\n\
         \x20            with lazily-materialized flags — byte-identical\n\
         \x20            profiles/counters/output, just faster\n\
         --supervise  run each shard as its own supervised OS process\n\
         \x20            writing a durable, checksummed artifact; crashes and\n\
         \x20            hangs are retried with deterministic backoff and\n\
         \x20            persistent failures quarantined (exit 3 when a\n\
         \x20            partial merge was produced). Interrupted runs resume\n\
         \x20            from the state directory, re-executing only missing\n\
         \x20            or invalid shards\n\
         --state-dir DIR\n\
         \x20            supervision state (artifacts + run manifest);\n\
         \x20            default <app.elf>.supervise\n\
         --deadline-ms N   per-attempt wall-clock deadline (default 300000)\n\
         --retries N       retries per shard after the first failure\n\
         \x20            (default 2)\n\
         --backoff-ms N    base retry backoff; delays are capped exponential\n\
         \x20            plus seeded jitter (default 100)\n\
         --seed N          seed for the deterministic backoff jitter\n\
         --validate-uops\n\
         \x20            (uop engine) symbolically check every lowered block\n\
         \x20            against its source decode at translation time —\n\
         \x20            operand indices, sign-extension, effective-address\n\
         \x20            recipes, flags liveness; a violation aborts the run.\n\
         \x20            Also enabled by BOLT_UOP_VALIDATE=1\n\
         --validate-semantics\n\
         \x20            (translation engines) symbolically prove every\n\
         \x20            translated block semantically equivalent to the step\n\
         \x20            semantics of a fresh decode of its bytes — final\n\
         \x20            registers, observable flags (incl. lazy-flags\n\
         \x20            materialization), ordered memory effects, and the\n\
         \x20            terminator; a disagreement aborts the run. Also\n\
         \x20            enabled by BOLT_SEM_VALIDATE=1"
    );
    std::process::exit(2)
}

/// The per-invocation sink: any combination of an LBR sampler, an IP
/// sampler, and the counter model (owned, so one instance per shard can
/// cross the batch's thread boundary).
#[derive(Default)]
struct RunSink {
    lbr: Option<LbrSampler>,
    ip: Option<IpSampler>,
    model: Option<CpuModel>,
}

impl TraceSink for RunSink {
    #[inline]
    fn on_inst(&mut self, addr: u64, len: u8) {
        if let Some(s) = &mut self.lbr {
            s.on_inst(addr, len);
        }
        if let Some(s) = &mut self.ip {
            s.on_inst(addr, len);
        }
        if let Some(m) = &mut self.model {
            m.on_inst(addr, len);
        }
    }

    #[inline]
    fn on_block(&mut self, ev: bolt::emu::BlockEvent<'_>) {
        if let Some(s) = &mut self.lbr {
            s.on_block(ev);
        }
        if let Some(s) = &mut self.ip {
            s.on_block(ev);
        }
        if let Some(m) = &mut self.model {
            m.on_block(ev);
        }
    }

    #[inline]
    fn on_branch(&mut self, ev: BranchEvent) {
        if let Some(s) = &mut self.lbr {
            s.on_branch(ev);
        }
        if let Some(s) = &mut self.ip {
            s.on_branch(ev);
        }
        if let Some(m) = &mut self.model {
            m.on_branch(ev);
        }
    }

    #[inline]
    fn on_mem(&mut self, addr: u64, len: u8, write: bool) {
        if let Some(s) = &mut self.lbr {
            s.on_mem(addr, len, write);
        }
        if let Some(s) = &mut self.ip {
            s.on_mem(addr, len, write);
        }
        if let Some(m) = &mut self.model {
            m.on_mem(addr, len, write);
        }
    }
}

/// Everything parsed from the command line.
struct Cli {
    input: String,
    fdata: Option<String>,
    use_ip: bool,
    period: u64,
    counters: bool,
    max_steps: Option<u64>,
    shards: usize,
    threads: usize,
    shard_config: Option<i64>,
    engine: Option<Engine>,
    supervise: bool,
    state_dir: Option<String>,
    deadline_ms: u64,
    retries: u32,
    backoff_ms: u64,
    seed: u64,
    validate_uops: bool,
    validate_semantics: bool,
    /// Hidden: run as the supervised worker for this shard index.
    shard_worker: Option<usize>,
    /// Hidden: where the worker writes its shard artifact.
    artifact_out: Option<String>,
    /// Hidden: what the worker samples ("lbr" | "ip" | "none").
    worker_profile: Option<String>,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        input: String::new(),
        fdata: None,
        use_ip: false,
        period: 997,
        counters: false,
        max_steps: None,
        shards: 0,
        threads: 0,
        shard_config: None,
        engine: None,
        supervise: false,
        state_dir: None,
        deadline_ms: 300_000,
        retries: 2,
        backoff_ms: 100,
        seed: 0,
        validate_uops: false,
        validate_semantics: false,
        shard_worker: None,
        artifact_out: None,
        worker_profile: None,
    };
    let mut input = None;

    fn num<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>) -> T {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    }

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fdata" => cli.fdata = it.next().cloned(),
            "--ip" => cli.use_ip = true,
            "--counters" => cli.counters = true,
            "--validate-uops" => cli.validate_uops = true,
            "--validate-semantics" => cli.validate_semantics = true,
            "--period" => cli.period = num(&mut it),
            "--max-steps" => cli.max_steps = Some(num(&mut it)),
            "--shards" => cli.shards = num(&mut it),
            "--threads" => cli.threads = num(&mut it),
            "--shard-config" => cli.shard_config = Some(num(&mut it)),
            "--supervise" => cli.supervise = true,
            "--state-dir" => cli.state_dir = it.next().cloned(),
            "--deadline-ms" => cli.deadline_ms = num(&mut it),
            "--retries" => cli.retries = num(&mut it),
            "--backoff-ms" => cli.backoff_ms = num(&mut it),
            "--seed" => cli.seed = num(&mut it),
            "--shard-worker" => cli.shard_worker = Some(num(&mut it)),
            "--artifact-out" => cli.artifact_out = it.next().cloned(),
            "--worker-profile" => cli.worker_profile = it.next().cloned(),
            "--engine" => {
                let Some(arg) = it.next() else { usage() };
                cli.engine = match arg.parse() {
                    Ok(e) => Some(e),
                    Err(msg) => {
                        eprintln!("bolt-run: --engine: {msg}");
                        std::process::exit(2);
                    }
                };
            }
            s if s.starts_with('-') => usage(),
            _ if input.is_none() => input = Some(a.clone()),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    cli.input = input;
    cli
}

fn main() -> ExitCode {
    let cli = parse_cli();
    if cli.validate_uops {
        bolt::emu::enable_uop_validation();
    }
    if cli.validate_semantics {
        bolt::emu::enable_sem_validation();
    }

    let bytes = match std::fs::read(&cli.input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bolt-run: cannot read {}: {e}", cli.input);
            return ExitCode::FAILURE;
        }
    };
    let elf = match read_elf(&bytes) {
        Ok(e) => e,
        Err(e) => {
            // Malformed input is a usage-class failure (exit 2), distinct
            // from a failed execution of a well-formed binary (exit 1).
            eprintln!("bolt-run: {}: {e}", cli.input);
            return ExitCode::from(2);
        }
    };

    if let Some(shard) = cli.shard_worker {
        return run_worker(&cli, &elf, shard);
    }
    if cli.supervise {
        return run_supervise_mode(&cli, &bytes, &elf);
    }
    run_in_process(&cli, &elf)
}

/// Resolves the address of the `config` input-selection global when
/// `--shard-config` is in play.
fn config_addr(cli: &Cli, elf: &bolt::elf::Elf) -> Result<Option<u64>, ()> {
    match cli.shard_config {
        Some(_) => match elf.symbol("config") {
            Some(s) => Ok(Some(s.value)),
            None => {
                eprintln!(
                    "bolt-run: --shard-config given but {} has no `config` global",
                    cli.input
                );
                Err(())
            }
        },
        None => Ok(None),
    }
}

/// The original single-process path: shards across threads in this
/// process, merged in shard-index order.
fn run_in_process(cli: &Cli, elf: &bolt::elf::Elf) -> ExitCode {
    let profiling = cli.fdata.is_some();
    let mut plan = ShardPlan::new(resolve_shards(cli.shards))
        .with_threads(resolve_threads(cli.threads))
        .with_max_steps(resolve_max_steps(cli.max_steps, u64::MAX));
    plan.engine = cli.engine;
    let make_sink = |_: usize| RunSink {
        lbr: (profiling && !cli.use_ip)
            .then(|| LbrSampler::new(cli.period, SampleTrigger::Instructions)),
        ip: (profiling && cli.use_ip).then(|| IpSampler::new(cli.period)),
        model: cli.counters.then(|| CpuModel::new(SimConfig::server())),
    };

    // Seed partitioning: shard i gets `config = BASE + i`.
    let Ok(addr) = config_addr(cli, elf) else {
        return ExitCode::FAILURE;
    };
    let prepare = |shard: usize, m: &mut bolt::emu::Machine| {
        if let (Some(addr), Some(base)) = (addr, cli.shard_config) {
            m.mem.write_u64(addr, (base + shard as i64) as u64);
        }
    };

    let runs = match run_batch(elf, &plan, make_sink, prepare) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bolt-run: execution failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Merge per-shard observations in shard-index order.
    let mut merge = Merge::new(cli);
    for r in &runs {
        let profile = r.sink.lbr.as_ref().map(|s| &s.profile);
        let ip_profile = r.sink.ip.as_ref().map(|s| &s.profile);
        let counters = r.sink.model.as_ref().map(|m| m.counters());
        merge.shard(
            r.shard,
            plan.shards,
            plan.max_steps,
            &r.output,
            r.result.exit,
            r.result.steps,
            profile.or(ip_profile),
            counters.as_ref(),
        );
    }
    if plan.shards > 1 {
        eprintln!(
            "bolt-run: {} instructions over {} shards ({} workers), exit {:?}",
            merge.total_steps,
            plan.shards,
            plan.workers(),
            merge.worst_exit
        );
    } else {
        eprintln!(
            "bolt-run: {} instructions, exit {:?}",
            merge.total_steps, merge.worst_exit
        );
    }
    merge.finish(0)
}

/// The merge state shared by the in-process and supervised paths. Both
/// feed shards in index order, so the printed output words, the merged
/// profile (and therefore the fdata bytes), and the summed counters are
/// byte-identical between the two paths.
struct Merge<'a> {
    cli: &'a Cli,
    profile: Profile,
    total: Counters,
    total_steps: u64,
    worst_exit: Exit,
}

impl<'a> Merge<'a> {
    fn new(cli: &'a Cli) -> Merge<'a> {
        let mode = if cli.use_ip {
            ProfileMode::IpSamples
        } else {
            ProfileMode::Lbr
        };
        Merge {
            cli,
            profile: Profile::new(mode),
            total: Counters::default(),
            total_steps: 0,
            worst_exit: Exit::Exited(0),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn shard(
        &mut self,
        shard: usize,
        shards: usize,
        budget: u64,
        output: &[i64],
        exit: Exit,
        steps: u64,
        profile: Option<&Profile>,
        counters: Option<&Counters>,
    ) {
        for v in output {
            println!("{v}");
        }
        if let Some(p) = profile {
            self.profile.merge(p);
        }
        if let Some(c) = counters {
            self.total.merge(c);
        }
        self.total_steps += steps;
        // A shard that never reached the exit syscall gets its own
        // diagnostic line — the batch still reports the other shards.
        if !matches!(exit, Exit::Exited(_)) {
            eprintln!(
                "bolt-run: shard {shard}/{shards} did not exit: {exit:?} after {steps} steps \
                 (budget {budget}; raise with --max-steps or BOLT_MAX_STEPS)"
            );
        }
        // The batch fails if any shard does: the first non-clean exit
        // (by shard index) decides the process status.
        if self.worst_exit == Exit::Exited(0) && exit != Exit::Exited(0) {
            self.worst_exit = exit;
        }
    }

    /// Prints the counter block, writes the fdata file, and maps the
    /// outcome to the exit-code taxonomy: 0 = full clean merge, 3 =
    /// merged but `quarantined` shards are missing from it, else the
    /// worst shard exit decides (1 for a nonzero program exit,
    /// FAILURE for a shard that never exited).
    fn finish(self, quarantined: usize) -> ExitCode {
        if self.cli.counters {
            let total = &self.total;
            eprintln!("  cycles            {:>14.0}", total.cycles);
            eprintln!("  ipc               {:>14.2}", total.ipc());
            eprintln!("  branch-misses     {:>14}", total.branch_mispredicts);
            eprintln!("  L1-icache-misses  {:>14}", total.l1i_misses);
            eprintln!("  L1-dcache-misses  {:>14}", total.l1d_misses);
            eprintln!("  iTLB-misses       {:>14}", total.itlb_misses);
            eprintln!("  LLC-misses        {:>14}", total.llc_misses);
        }
        if let Some(path) = &self.cli.fdata {
            if let Err(e) = std::fs::write(path, self.profile.to_fdata()) {
                eprintln!("bolt-run: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "bolt-run: wrote {path} ({} samples)",
                self.profile.num_samples
            );
        }

        if quarantined > 0 {
            return ExitCode::from(3);
        }
        match self.worst_exit {
            Exit::Exited(0) => ExitCode::SUCCESS,
            Exit::Exited(_) => ExitCode::from(1),
            _ => ExitCode::FAILURE,
        }
    }
}

/// Supervised mode: one OS process per shard, durable artifacts,
/// deadline/retry/quarantine, resume from the state directory.
fn run_supervise_mode(cli: &Cli, elf_bytes: &[u8], elf: &bolt::elf::Elf) -> ExitCode {
    // Resolve every knob *here*, in the supervisor, and forward the
    // results as explicit worker flags — workers must not re-resolve
    // environment overrides (the fingerprint below must describe what
    // the workers will actually do).
    let shards = resolve_shards(cli.shards);
    let procs = resolve_threads(cli.threads);
    let engine = resolve_engine(cli.engine);
    let max_steps = resolve_max_steps(cli.max_steps, u64::MAX);
    let profile_kind = match (&cli.fdata, cli.use_ip) {
        (None, _) => "none",
        (Some(_), false) => "lbr",
        (Some(_), true) => "ip",
    };
    if config_addr(cli, elf).is_err() {
        return ExitCode::FAILURE;
    }

    // Run identity: any knob that changes worker output is part of the
    // fingerprint, so artifacts from a different configuration are
    // never resumed into this run.
    let basename = Path::new(&cli.input)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| cli.input.clone());
    let fingerprint = format!(
        "{basename} elf-crc {:08x} shards {shards} profile {profile_kind} period {} \
         counters {} engine {engine} shard-config {} max-steps {max_steps}",
        bolt::emu::artifact::crc32(elf_bytes),
        cli.period,
        cli.counters,
        cli.shard_config
            .map_or_else(|| "off".into(), |b| b.to_string()),
    );

    let state_dir = cli
        .state_dir
        .clone()
        .unwrap_or_else(|| format!("{}.supervise", cli.input));
    let mut plan = SupervisePlan::new(shards, PathBuf::from(&state_dir), fingerprint);
    plan.procs = procs;
    plan.deadline = Duration::from_millis(cli.deadline_ms);
    plan.max_attempts = cli.retries.saturating_add(1);
    plan.backoff_base = Duration::from_millis(cli.backoff_ms);
    plan.seed = cli.seed;

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bolt-run: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = run_supervised(&plan, |shard, attempt, artifact| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg(&cli.input)
            .arg("--shard-worker")
            .arg(shard.to_string())
            .arg("--artifact-out")
            .arg(artifact)
            .arg("--worker-profile")
            .arg(profile_kind)
            .arg("--period")
            .arg(cli.period.to_string())
            .arg("--max-steps")
            .arg(max_steps.to_string())
            .arg("--engine")
            .arg(engine.to_string())
            // The fault injector keys off shard *and* attempt; the
            // attempt number only exists here.
            .env("BOLT_SHARD_ATTEMPT", attempt.to_string());
        if cli.counters {
            cmd.arg("--counters");
        }
        if let Some(base) = cli.shard_config {
            cmd.arg("--shard-config").arg(base.to_string());
        }
        if cli.validate_uops {
            cmd.arg("--validate-uops");
        }
        if cli.validate_semantics {
            cmd.arg("--validate-semantics");
        }
        cmd
    });
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bolt-run: supervision failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprint!("{}", outcome.report.render());

    // Merge surviving artifacts in shard-index order — the same order
    // the in-process path merges in, so the result is byte-identical.
    let mut merge = Merge::new(cli);
    let mut quarantined = outcome.report.quarantined.len();
    let mut usable = 0usize;
    for (shard, path) in outcome.artifacts.iter().enumerate() {
        let Some(path) = path else { continue };
        // Framing was already validated by the supervisor; decoding
        // the payload can still fail (e.g. a version-compatible but
        // semantically bad payload) — such a shard is as lost as a
        // quarantined one.
        let art = match ShardArtifact::read(path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("bolt-run: shard {shard} artifact rejected at merge: {e}");
                quarantined += 1;
                continue;
            }
        };
        if art.shard as usize != shard {
            eprintln!(
                "bolt-run: shard {shard} artifact claims to be shard {}; rejected",
                art.shard
            );
            quarantined += 1;
            continue;
        }
        usable += 1;
        merge.shard(
            shard,
            shards,
            max_steps,
            &art.output,
            art.exit,
            art.steps,
            art.profile.as_ref(),
            art.counters.as_ref(),
        );
    }
    if usable == 0 {
        eprintln!("bolt-run: no usable shard artifacts; nothing merged");
        return ExitCode::from(1);
    }
    if shards > 1 {
        eprintln!(
            "bolt-run: {} instructions over {} shards ({} workers), exit {:?}",
            merge.total_steps, shards, procs, merge.worst_exit
        );
    } else {
        eprintln!(
            "bolt-run: {} instructions, exit {:?}",
            merge.total_steps, merge.worst_exit
        );
    }
    merge.finish(quarantined)
}

/// Hidden worker mode: runs exactly one shard and writes its durable
/// artifact atomically. Exits 0 iff a valid artifact was written; the
/// emulated program's own exit status travels *inside* the artifact.
fn run_worker(cli: &Cli, elf: &bolt::elf::Elf, shard: usize) -> ExitCode {
    let Some(out) = &cli.artifact_out else {
        eprintln!("bolt-run: --shard-worker requires --artifact-out");
        return ExitCode::from(2);
    };
    let out = PathBuf::from(out);
    let attempt: u32 = std::env::var("BOLT_SHARD_ATTEMPT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let injected = CrashSpec::from_env().action_for(shard as u32, attempt);

    // Faults that manifest before any work: the supervisor must cope
    // with workers that die, stall, or emit junk without ever running
    // the emulator.
    let mut rng = XorShift64::new(
        (shard as u64 + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt)),
    );
    match injected {
        Some(CrashMode::Abort) => std::process::abort(),
        Some(CrashMode::ExitNoArtifact) => return ExitCode::from(21),
        Some(CrashMode::Hang) => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        Some(CrashMode::GarbageArtifact) => {
            // Deliberately *not* the atomic path: a buggy worker that
            // writes junk straight to the final name.
            let junk: Vec<u8> = (0..64).map(|_| rng.next_u64() as u8).collect();
            if std::fs::write(&out, junk).is_err() {
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        _ => {}
    }

    let max_steps = resolve_max_steps(cli.max_steps, u64::MAX);
    let mut plan = ShardPlan::new(1).with_threads(1).with_max_steps(max_steps);
    plan.engine = cli.engine;
    let profile_kind = cli.worker_profile.as_deref().unwrap_or("none");
    let make_sink = |_: usize| RunSink {
        lbr: (profile_kind == "lbr")
            .then(|| LbrSampler::new(cli.period, SampleTrigger::Instructions)),
        ip: (profile_kind == "ip").then(|| IpSampler::new(cli.period)),
        model: cli.counters.then(|| CpuModel::new(SimConfig::server())),
    };
    let Ok(addr) = config_addr(cli, elf) else {
        return ExitCode::FAILURE;
    };
    // This worker *is* global shard `shard` of the run: the config
    // global gets BASE + shard even though the local batch has 1 shard.
    let prepare = |_: usize, m: &mut bolt::emu::Machine| {
        if let (Some(addr), Some(base)) = (addr, cli.shard_config) {
            m.mem.write_u64(addr, (base + shard as i64) as u64);
        }
    };
    let runs = match run_batch(elf, &plan, make_sink, prepare) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bolt-run: shard {shard}: execution failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = &runs[0];
    let art = ShardArtifact {
        shard: shard as u32,
        exit: run.result.exit,
        steps: run.result.steps,
        output: run.output.clone(),
        profile: run
            .sink
            .lbr
            .as_ref()
            .map(|s| s.profile.clone())
            .or_else(|| run.sink.ip.as_ref().map(|s| s.profile.clone())),
        counters: run.sink.model.as_ref().map(|m| m.counters()),
    };

    // Faults that manifest in the artifact bytes after a real run: a
    // clean exit with a torn or corrupted file. Written directly (not
    // atomically) — these model exactly the writers that skip the
    // temp-file protocol.
    match injected {
        Some(CrashMode::TruncatedArtifact) => {
            let bytes = art.to_artifact();
            let keep = bytes.len() / 2;
            if std::fs::write(&out, &bytes[..keep]).is_err() {
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        Some(CrashMode::CorruptArtifact) => {
            let mut bytes = art.to_artifact();
            let seed = rng.next_u64();
            if !ArtifactMutation::FlipPayloadBit.apply(&mut bytes, seed) {
                ArtifactMutation::FlipCrc.apply(&mut bytes, seed);
            }
            if std::fs::write(&out, bytes).is_err() {
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        _ => {}
    }

    match art.write(&out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bolt-run: shard {shard}: cannot write artifact: {e}");
            ExitCode::FAILURE
        }
    }
}
