//! The `bolt-run` tool: executes an ELF binary under the emulator,
//! optionally collecting a profile (the `perf record` + `perf2bolt` step)
//! and reporting microarchitectural counters.
//!
//! ```sh
//! bolt-run app.elf --fdata app.fdata          # LBR profiling
//! bolt-run app.elf --fdata app.fdata --ip     # plain IP samples
//! bolt-run app.elf --counters                 # perf-stat style output
//! bolt-run app.elf --fdata app.fdata --shards 8 --threads 4
//! #   sharded profiling: 8 independent invocations across 4 workers,
//! #   per-shard profiles merged in shard order, counters summed
//! bolt-run app.elf --fdata app.fdata --shards 8 --shard-config 4000
//! #   seed-partitioned: shard i runs with the `config` input-selection
//! #   global set to 4000+i, splitting the input space instead of
//! #   repeating the same invocation 8 times
//! ```

use bolt::elf::read_elf;
use bolt::emu::{resolve_shards, run_batch, BranchEvent, Engine, Exit, ShardPlan, TraceSink};
use bolt::passes::resolve_threads;
use bolt::profile::{IpSampler, LbrSampler, Profile, ProfileMode, SampleTrigger};
use bolt::sim::{Counters, CpuModel, SimConfig};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bolt-run <app.elf> [--fdata <out.fdata>] [--ip] [--period N] \
         [--counters] [--max-steps N] [--shards N] [--threads N] \
         [--engine step|block|superblock|uop] [--validate-uops] [--validate-semantics]\n\
         \n\
         --shards N   run N independent invocations (sharded batch\n\
         \x20            emulation; 0 = auto [BOLT_SHARDS env or 1]); the\n\
         \x20            merged profile and summed counters are byte-identical\n\
         \x20            at any worker count. Without --shard-config the N\n\
         \x20            invocations are identical (N x the work, N x the\n\
         \x20            samples)\n\
         --threads N  workers for the shard batch (0 = auto [BOLT_THREADS\n\
         \x20            env or available parallelism])\n\
         --shard-config BASE\n\
         \x20            seed-partition the batch: write BASE+i into the\n\
         \x20            binary's `config` input-selection global for shard i,\n\
         \x20            so the shards split the input space\n\
         --engine step|block|superblock|uop\n\
         \x20            emulation engine (default: the BOLT_ENGINE env\n\
         \x20            override, else per-instruction stepping). `block`\n\
         \x20            executes through a basic-block translation cache;\n\
         \x20            `superblock` additionally spans memory-touching\n\
         \x20            instructions and chains block transitions; `uop`\n\
         \x20            further lowers each block to pre-resolved micro-ops\n\
         \x20            with lazily-materialized flags — byte-identical\n\
         \x20            profiles/counters/output, just faster\n\
         --validate-uops\n\
         \x20            (uop engine) symbolically check every lowered block\n\
         \x20            against its source decode at translation time —\n\
         \x20            operand indices, sign-extension, effective-address\n\
         \x20            recipes, flags liveness; a violation aborts the run.\n\
         \x20            Also enabled by BOLT_UOP_VALIDATE=1\n\
         --validate-semantics\n\
         \x20            (translation engines) symbolically prove every\n\
         \x20            translated block semantically equivalent to the step\n\
         \x20            semantics of a fresh decode of its bytes — final\n\
         \x20            registers, observable flags (incl. lazy-flags\n\
         \x20            materialization), ordered memory effects, and the\n\
         \x20            terminator; a disagreement aborts the run. Also\n\
         \x20            enabled by BOLT_SEM_VALIDATE=1"
    );
    std::process::exit(2)
}

/// The per-invocation sink: any combination of an LBR sampler, an IP
/// sampler, and the counter model (owned, so one instance per shard can
/// cross the batch's thread boundary).
#[derive(Default)]
struct RunSink {
    lbr: Option<LbrSampler>,
    ip: Option<IpSampler>,
    model: Option<CpuModel>,
}

impl TraceSink for RunSink {
    #[inline]
    fn on_inst(&mut self, addr: u64, len: u8) {
        if let Some(s) = &mut self.lbr {
            s.on_inst(addr, len);
        }
        if let Some(s) = &mut self.ip {
            s.on_inst(addr, len);
        }
        if let Some(m) = &mut self.model {
            m.on_inst(addr, len);
        }
    }

    #[inline]
    fn on_block(&mut self, ev: bolt::emu::BlockEvent<'_>) {
        if let Some(s) = &mut self.lbr {
            s.on_block(ev);
        }
        if let Some(s) = &mut self.ip {
            s.on_block(ev);
        }
        if let Some(m) = &mut self.model {
            m.on_block(ev);
        }
    }

    #[inline]
    fn on_branch(&mut self, ev: BranchEvent) {
        if let Some(s) = &mut self.lbr {
            s.on_branch(ev);
        }
        if let Some(s) = &mut self.ip {
            s.on_branch(ev);
        }
        if let Some(m) = &mut self.model {
            m.on_branch(ev);
        }
    }

    #[inline]
    fn on_mem(&mut self, addr: u64, len: u8, write: bool) {
        if let Some(s) = &mut self.lbr {
            s.on_mem(addr, len, write);
        }
        if let Some(s) = &mut self.ip {
            s.on_mem(addr, len, write);
        }
        if let Some(m) = &mut self.model {
            m.on_mem(addr, len, write);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut fdata = None;
    let mut use_ip = false;
    let mut period = 997u64;
    let mut counters = false;
    let mut max_steps = u64::MAX;
    let mut shards = 0usize;
    let mut threads = 0usize;
    let mut shard_config: Option<i64> = None;
    let mut engine: Option<Engine> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fdata" => fdata = it.next().cloned(),
            "--ip" => use_ip = true,
            "--counters" => counters = true,
            "--validate-uops" => bolt::emu::enable_uop_validation(),
            "--validate-semantics" => bolt::emu::enable_sem_validation(),
            "--period" => {
                period = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-steps" => {
                max_steps = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--shard-config" => {
                shard_config = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--engine" => {
                let Some(arg) = it.next() else { usage() };
                engine = match arg.parse() {
                    Ok(e) => Some(e),
                    Err(msg) => {
                        eprintln!("bolt-run: --engine: {msg}");
                        std::process::exit(2);
                    }
                };
            }
            s if s.starts_with('-') => usage(),
            _ if input.is_none() => input = Some(a.clone()),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };

    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bolt-run: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elf = match read_elf(&bytes) {
        Ok(e) => e,
        Err(e) => {
            // Malformed input is a usage-class failure (exit 2), distinct
            // from a failed execution of a well-formed binary (exit 1).
            eprintln!("bolt-run: {input}: {e}");
            return ExitCode::from(2);
        }
    };

    let profiling = fdata.is_some();
    let mut plan = ShardPlan::new(resolve_shards(shards))
        .with_threads(resolve_threads(threads))
        .with_max_steps(max_steps);
    plan.engine = engine;
    let make_sink = |_: usize| RunSink {
        lbr: (profiling && !use_ip).then(|| LbrSampler::new(period, SampleTrigger::Instructions)),
        ip: (profiling && use_ip).then(|| IpSampler::new(period)),
        model: counters.then(|| CpuModel::new(SimConfig::server())),
    };

    // Seed partitioning: shard i gets `config = BASE + i`.
    let config_addr = match shard_config {
        Some(_) => match elf.symbol("config") {
            Some(s) => Some(s.value),
            None => {
                eprintln!("bolt-run: --shard-config given but {input} has no `config` global");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let prepare = |shard: usize, m: &mut bolt::emu::Machine| {
        if let (Some(addr), Some(base)) = (config_addr, shard_config) {
            m.mem.write_u64(addr, (base + shard as i64) as u64);
        }
    };

    let runs = match run_batch(&elf, &plan, make_sink, prepare) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bolt-run: execution failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Merge per-shard observations in shard-index order.
    let mode = if use_ip {
        ProfileMode::IpSamples
    } else {
        ProfileMode::Lbr
    };
    let mut profile = Profile::new(mode);
    let mut total = Counters::default();
    let mut total_steps = 0u64;
    let mut worst_exit = Exit::Exited(0);
    for r in &runs {
        for v in &r.output {
            println!("{v}");
        }
        if let Some(s) = &r.sink.lbr {
            profile.merge(&s.profile);
        }
        if let Some(s) = &r.sink.ip {
            profile.merge(&s.profile);
        }
        if let Some(m) = &r.sink.model {
            total.merge(&m.counters());
        }
        total_steps += r.result.steps;
        // A shard that never reached the exit syscall gets its own
        // diagnostic line — the batch still reports the other shards.
        if !matches!(r.result.exit, Exit::Exited(_)) {
            eprintln!(
                "bolt-run: shard {}/{} did not exit: {:?} after {} steps (budget {})",
                r.shard, plan.shards, r.result.exit, r.result.steps, plan.max_steps
            );
        }
        // The batch fails if any shard does: the first non-clean exit
        // (by shard index) decides the process status.
        if worst_exit == Exit::Exited(0) && r.result.exit != Exit::Exited(0) {
            worst_exit = r.result.exit;
        }
    }
    if plan.shards > 1 {
        eprintln!(
            "bolt-run: {} instructions over {} shards ({} workers), exit {:?}",
            total_steps,
            plan.shards,
            plan.workers(),
            worst_exit
        );
    } else {
        eprintln!(
            "bolt-run: {} instructions, exit {:?}",
            total_steps, worst_exit
        );
    }

    if counters {
        eprintln!("  cycles            {:>14.0}", total.cycles);
        eprintln!("  ipc               {:>14.2}", total.ipc());
        eprintln!("  branch-misses     {:>14}", total.branch_mispredicts);
        eprintln!("  L1-icache-misses  {:>14}", total.l1i_misses);
        eprintln!("  L1-dcache-misses  {:>14}", total.l1d_misses);
        eprintln!("  iTLB-misses       {:>14}", total.itlb_misses);
        eprintln!("  LLC-misses        {:>14}", total.llc_misses);
    }
    if let Some(path) = fdata {
        if let Err(e) = std::fs::write(&path, profile.to_fdata()) {
            eprintln!("bolt-run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bolt-run: wrote {path} ({} samples)", profile.num_samples);
    }

    match worst_exit {
        Exit::Exited(0) => ExitCode::SUCCESS,
        Exit::Exited(_) => ExitCode::from(1),
        _ => ExitCode::FAILURE,
    }
}
