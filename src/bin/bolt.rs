//! The `bolt` command-line tool: rewrites an ELF executable using a
//! profile, mirroring `llvm-bolt`'s interface.
//!
//! ```sh
//! bolt input.elf -o output.elf -b profile.fdata \
//!     -reorder-blocks=cache+ -reorder-functions=hfsort+ \
//!     -split-functions -icf -dyno-stats -report-bad-layout
//! ```

use bolt::elf::{read_elf, write_elf};
use bolt::hfsort::Algorithm;
use bolt::opt::{optimize, timing_report, BoltOptions};
use bolt::passes::{BlockLayout, PassOptions, SplitMode};
use bolt::profile::Profile;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bolt <input.elf> -o <output.elf> [-b <profile.fdata>] [options]\n\
         \n\
         options:\n\
           -preset=default|layout-only|functions-only|bbs-only|none\n\
           \x20   (applied first; individual pass flags override the preset)\n\
           -reorder-blocks=none|reverse|branch|cache|cache+\n\
           -reorder-functions=none|hfsort|hfsort+|pettis-hansen\n\
           -split-functions | -no-split-functions\n\
           -icf | -no-icf\n\
           -threads=N\n\
           \x20   (worker threads for per-function passes and disassembly;\n\
           \x20   0 = auto [the default, available parallelism capped at 8],\n\
           \x20   1 forces the serial path, values above 64 are clamped,\n\
           \x20   output is byte-identical at any value)\n\
           -shards=N\n\
           \x20   (measurement-side emulation shard count, recorded on\n\
           \x20   BoltOptions for profiling harnesses; 0 = auto [BOLT_SHARDS\n\
           \x20   env or 1]. Rewriting is unaffected — see bolt-run --shards)\n\
           -engine=step|block|superblock|uop\n\
           \x20   (measurement-side emulation engine, recorded on BoltOptions\n\
           \x20   for profiling harnesses; default follows the BOLT_ENGINE env\n\
           \x20   override or `step`. Byte-identical results under every\n\
           \x20   engine — block translates basic blocks, superblock spans\n\
           \x20   memory ops and chains blocks, uop additionally lowers to\n\
           \x20   pre-resolved micro-ops with lazy flags, each faster than\n\
           \x20   the last. See bolt-run --engine)\n\
           -skip-unchanged\n\
           \x20   (skip repeated pipeline registrations of a pass whose earlier\n\
           \x20   instance reported zero changes this run, e.g. the second icf\n\
           \x20   on small binaries; skipped passes are marked in -time-passes)\n\
           -verify\n\
           \x20   (static verification: IR lint after the pipeline plus an\n\
           \x20   independent re-disassembly of the rewritten binary checked\n\
           \x20   against the optimized CFG; any finding fails the run)\n\
           -verify-each\n\
           \x20   (like -verify, but the IR lint runs after every pass,\n\
           \x20   pinpointing the pass that broke an invariant)\n\
           -verify-sem\n\
           \x20   (symbolic translation validation: every emitted function's\n\
           \x20   bytes are translated under each emulation tier — block,\n\
           \x20   superblock, uop — and each translation is proven\n\
           \x20   semantically equivalent to a fresh decode of its bytes;\n\
           \x20   any finding fails the run)\n\
           -verify-json\n\
           \x20   (emit every verifier finding — rewrite, lint, semantic —\n\
           \x20   and every quarantine event as one JSON object per line on\n\
           \x20   stdout)\n\
           -poison-pass=N\n\
           \x20   (fault-injection: register a pass whose kernel panics on\n\
           \x20   the Nth simple function, exercising the quarantine ladder\n\
           \x20   default -> layout-only -> quarantined; the run must still\n\
           \x20   succeed with exactly that function excluded)\n\
           -dyno-stats\n\
           -time-passes\n\
           -report-bad-layout\n\
           -print-debug-info\n\
           -v"
    );
    std::process::exit(2)
}

/// Minimal JSON string escaping for the `-verify-json` finding stream.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut fdata = None;
    let mut verify_json = false;
    let mut opts = BoltOptions::paper_default();

    // Presets apply first, wherever they appear, so the fine-grained pass
    // flags always refine the preset instead of being silently overwritten
    // by a later `-preset=`.
    for a in &args {
        if let Some(name) = a.strip_prefix("-preset=") {
            opts.passes = match PassOptions::preset(name) {
                Some(p) => p,
                None => usage(),
            };
        }
    }

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = it.next().cloned(),
            "-b" => fdata = it.next().cloned(),
            "-dyno-stats" => opts.dyno_stats = true,
            "-time-passes" => opts.time_passes = true,
            "-skip-unchanged" => opts.skip_unchanged = true,
            "-verify" => opts.verify = true,
            "-verify-each" => opts.verify_each = true,
            "-verify-sem" => opts.verify_sem = true,
            "-verify-json" => verify_json = true,
            "-report-bad-layout" => opts.report_bad_layout = true,
            "-print-debug-info" => opts.print_debug_info = true,
            "-v" => opts.verbose = true,
            "-icf" => opts.passes.icf = true,
            "-no-icf" => opts.passes.icf = false,
            "-split-functions" => opts.passes.split_functions = SplitMode::Profiled,
            "-no-split-functions" => {
                opts.passes.split_functions = SplitMode::None;
                opts.passes.split_all_cold = false;
                opts.passes.split_eh = false;
            }
            s if s.starts_with("-preset=") => {} // applied in the pre-scan above
            s if s.starts_with("-threads=") => {
                // 0 = auto (BOLT_THREADS env override or available
                // parallelism), matching BoltOptions::threads.
                opts.threads = match s["-threads=".len()..].parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => usage(),
                };
            }
            s if s.starts_with("-shards=") => {
                // 0 = auto (BOLT_SHARDS env override or 1), matching
                // BoltOptions::shards.
                opts.shards = match s["-shards=".len()..].parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => usage(),
                };
            }
            s if s.starts_with("-poison-pass=") => {
                opts.poison_nth = match s["-poison-pass=".len()..].parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => usage(),
                };
            }
            s if s.starts_with("-engine=") => {
                opts.engine = match s["-engine=".len()..].parse::<bolt::emu::Engine>() {
                    Ok(e) => Some(e),
                    Err(msg) => {
                        eprintln!("bolt: -engine=: {msg}");
                        std::process::exit(2);
                    }
                };
            }
            s if s.starts_with("-reorder-blocks=") => {
                opts.passes.reorder_blocks = match &s["-reorder-blocks=".len()..] {
                    "none" => BlockLayout::None,
                    "reverse" => BlockLayout::Reverse,
                    "branch" => BlockLayout::Branch,
                    "cache" => BlockLayout::Cache,
                    "cache+" => BlockLayout::CachePlus,
                    _ => usage(),
                };
            }
            s if s.starts_with("-reorder-functions=") => {
                opts.passes.reorder_functions = match &s["-reorder-functions=".len()..] {
                    "none" => Algorithm::None,
                    "hfsort" => Algorithm::Hfsort,
                    "hfsort+" => Algorithm::HfsortPlus,
                    "pettis-hansen" => Algorithm::PettisHansen,
                    _ => usage(),
                };
            }
            s if s.starts_with('-') => usage(),
            _ if input.is_none() => input = Some(a.clone()),
            _ => usage(),
        }
    }
    let (Some(input), Some(output)) = (input, output) else {
        usage()
    };

    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bolt: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elf = match read_elf(&bytes) {
        Ok(e) => e,
        Err(e) => {
            // Malformed input is a usage-class failure (exit 2), distinct
            // from a pipeline failure on well-formed input (exit 1).
            eprintln!("bolt: {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let profile = match &fdata {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bolt: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Profile::from_fdata(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("bolt: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => {
            eprintln!("bolt: warning: no profile given; layout passes will be conservative");
            Profile::default()
        }
    };

    let out = match optimize(&elf, &profile, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bolt: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.verbose {
        for r in &out.pipeline.reports {
            eprintln!("  {:<20} {:>10}  {:.3?}", r.name, r.changes, r.duration);
        }
        eprintln!(
            "  {} simple / {} total functions; profile accuracy {:.1}%",
            out.simple_functions,
            out.ctx.functions.len(),
            out.attach_stats.accuracy() * 100.0
        );
    }
    if opts.time_passes {
        eprint!("{}", timing_report(&out.pipeline));
    }
    // Degraded runs always report what was demoted or quarantined;
    // -time-passes additionally confirms a clean run.
    if !out.quarantine.is_clean() || opts.time_passes {
        eprint!("{}", out.quarantine.render());
    }
    if verify_json {
        for ev in &out.quarantine.events {
            println!(
                "{{\"quarantine\":true,\"function\":\"{}\",\"stage\":\"{}\",\
                 \"action\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(&ev.function),
                json_escape(&ev.stage),
                ev.action.as_str(),
                json_escape(&ev.detail)
            );
        }
    }
    if let Some(report) = &out.bad_layout {
        println!("{report}");
    }
    if opts.verify || opts.verify_each || opts.verify_sem {
        let findings = out.all_findings();
        if let Some(v) = &out.verify {
            eprintln!(
                "bolt: verify: {} findings across {} functions in {:.3?}",
                findings.len(),
                v.functions_checked,
                v.duration
            );
        }
        if let Some(v) = &out.verify_sem {
            eprintln!(
                "bolt: verify-sem: {} findings across {} functions in {:.3?}",
                v.findings.len(),
                v.functions_checked,
                v.duration
            );
        }
        if verify_json {
            for f in &findings {
                println!(
                    "{{\"kind\":\"{}\",\"function\":\"{}\",\"addr\":{},\"detail\":\"{}\"}}",
                    f.kind,
                    json_escape(&f.function),
                    f.addr,
                    json_escape(&f.detail)
                );
            }
        }
        if !findings.is_empty() {
            for f in &findings {
                eprintln!("bolt: verify: {f}");
            }
            return ExitCode::FAILURE;
        }
    }
    if opts.dyno_stats {
        println!("BOLT dyno stats (this profile, new layout vs old):");
        print!("{}", out.dyno_after.delta_report(&out.dyno_before));
    }

    let bytes = match write_elf(&out.elf) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bolt: serializing output: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&output, bytes) {
        eprintln!("bolt: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bolt: wrote {output} ({} functions rewritten, hot text {} bytes)",
        out.rewrite_stats.emitted_functions, out.rewrite_stats.hot_text_size
    );
    ExitCode::SUCCESS
}
