//! The `bolt-workload` tool: builds one of the evaluation workload
//! binaries to disk so the `bolt-run` / `bolt` CLI pipeline can be driven
//! by hand.
//!
//! ```sh
//! bolt-workload hhvm -o hhvm.elf --scale bench [--lto] [--emit-relocs]
//! bolt-run hhvm.elf --fdata hhvm.fdata
//! bolt hhvm.elf -o hhvm.bolt.elf -b hhvm.fdata -dyno-stats
//! bolt-run hhvm.bolt.elf --counters
//! ```

use bolt::compiler::{compile_and_link, CompileOptions};
use bolt::elf::write_elf;
use bolt::workloads::{Scale, Workload};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bolt-workload <hhvm|tao|proxygen|multifeed1|multifeed2|clang|gcc|interp> \\\n\
         \t-o <out.elf> [--scale test|bench] [--lto] [--legacy-amd] [--emit-relocs] [-O0|-O1|-O2]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = None;
    let mut output = None;
    let mut scale = Scale::Bench;
    let mut opts = CompileOptions::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = it.next().cloned(),
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("bench") => Scale::Bench,
                    _ => usage(),
                };
            }
            "--lto" => opts.lto = true,
            "--legacy-amd" => opts.legacy_amd = true,
            "--emit-relocs" => opts.emit_relocs = true,
            "-O0" => opts.opt_level = 0,
            "-O1" => opts.opt_level = 1,
            "-O2" => opts.opt_level = 2,
            s if s.starts_with('-') => usage(),
            _ if which.is_none() => which = Some(a.clone()),
            _ => usage(),
        }
    }
    let (Some(which), Some(output)) = (which, output) else {
        usage()
    };
    let wl = match which.as_str() {
        "hhvm" => Workload::Hhvm,
        "tao" => Workload::Tao,
        "proxygen" => Workload::Proxygen,
        "multifeed1" => Workload::Multifeed1,
        "multifeed2" => Workload::Multifeed2,
        "clang" => Workload::ClangLike,
        "gcc" => Workload::GccLike,
        "interp" => Workload::Interp,
        _ => usage(),
    };

    let program = wl.build(scale);
    let bin = match compile_and_link(&program, &opts) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bolt-workload: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bytes = match write_elf(&bin.elf) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bolt-workload: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&output, bytes) {
        eprintln!("bolt-workload: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bolt-workload: wrote {output} ({} functions, {} bytes of text)",
        program.functions.len(),
        bin.elf.text_size()
    );
    ExitCode::SUCCESS
}
