//! Complementarity demo (the paper's contribution 3): compiler PGO+LTO
//! and BOLT each help, and stacking them is best — because they use the
//! same samples at different accuracy levels.
//!
//! ```sh
//! cargo run --release --example pgo_vs_bolt
//! ```

use bolt::compiler::{CompileOptions, SourceProfile};
use bolt::emu::{Machine, Tee};
use bolt::ir::LineTable;
use bolt::opt::{optimize, BoltOptions};
use bolt::profile::{LbrSampler, Profile, SampleTrigger};
use bolt::sim::{Counters, CpuModel, SimConfig};
use bolt::workloads::{Scale, Workload};

fn profile_and_measure(elf: &bolt::elf::Elf, cfg: &SimConfig) -> (Profile, Counters, Vec<i64>) {
    let mut m = Machine::new();
    m.load_elf(elf);
    let mut sampler = LbrSampler::new(997, SampleTrigger::Instructions);
    let mut model = CpuModel::new(cfg.clone());
    {
        let mut tee = Tee(&mut sampler, &mut model);
        m.run(&mut tee, u64::MAX).expect("runs");
    }
    (sampler.profile, model.counters(), m.output)
}

/// The AutoFDO step: map the binary profile back to source lines.
fn to_source(profile: &Profile, elf: &bolt::elf::Elf) -> SourceProfile {
    let lines = LineTable::from_bytes(&elf.section(".bolt.lines").unwrap().data).unwrap();
    let mut sp = SourceProfile::new();
    for (&ip, &count) in &profile.ip_samples {
        if let Some((_f, line)) = lines.lookup(ip) {
            sp.add_line(line, count);
        }
    }
    for ft in profile.sorted_fallthroughs() {
        let lo = lines.entries.partition_point(|e| e.0 < ft.from);
        let hi = lines.entries.partition_point(|e| e.0 <= ft.to);
        for e in &lines.entries[lo..hi] {
            sp.add_line(e.2, ft.count);
        }
    }
    sp
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::server();
    let program = Workload::ClangLike.build(Scale::Test);

    // Baseline -O2.
    let base = bolt::compiler::compile_and_link(&program, &CompileOptions::default())?;
    let (base_profile, base_c, base_out) = profile_and_measure(&base.elf, &cfg);

    // (a) BOLT only.
    let bolted = optimize(&base.elf, &base_profile, &BoltOptions::paper_default())?;
    let (_, bolt_c, out) = profile_and_measure(&bolted.elf, &cfg);
    assert_eq!(out, base_out);

    // (b) PGO+LTO only (samples retrofitted to source lines).
    let sp = to_source(&base_profile, &base.elf);
    let pgo = bolt::compiler::compile_and_link(&program, &CompileOptions::pgo_lto(sp))?;
    let (pgo_profile, pgo_c, out) = profile_and_measure(&pgo.elf, &cfg);
    assert_eq!(out, base_out);

    // (c) PGO+LTO+BOLT.
    let both = optimize(&pgo.elf, &pgo_profile, &BoltOptions::paper_default())?;
    let (_, both_c, out) = profile_and_measure(&both.elf, &cfg);
    assert_eq!(out, base_out);

    println!("{:<16} {:>10}", "configuration", "speedup");
    for (name, c) in [
        ("BOLT", &bolt_c),
        ("PGO+LTO", &pgo_c),
        ("PGO+LTO+BOLT", &both_c),
    ] {
        println!("{:<16} {:>9.2}%", name, base_c.speedup_over(c));
    }
    println!("\n(the combination should be best: the approaches are complementary)");
    Ok(())
}
