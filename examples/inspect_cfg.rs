//! Inspection tooling: disassemble a binary, attach a profile, dump the
//! hottest function's CFG in the paper's Figure 4 format, and print the
//! `-report-bad-layout` analysis (Figure 10).
//!
//! ```sh
//! cargo run --release --example inspect_cfg
//! ```

use bolt::compiler::CompileOptions;
use bolt::emu::Machine;
use bolt::ir::{dump_function, DumpOptions};
use bolt::opt::bad_layout_report;
use bolt::profile::{attach_profile, LbrSampler, SampleTrigger};
use bolt::workloads::{Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Workload::ClangLike.build(Scale::Test);
    let binary = bolt::compiler::compile_and_link(&program, &CompileOptions::default())?;

    // Profile.
    let mut m = Machine::new();
    m.load_elf(&binary.elf);
    let mut sampler = LbrSampler::new(499, SampleTrigger::Instructions);
    m.run(&mut sampler, u64::MAX)?;

    // Reconstruct and annotate.
    let (mut ctx, raw) = bolt::opt::discover(&binary.elf);
    let simple = bolt::opt::disassemble_all(&mut ctx, &raw, &binary.elf);
    let stats = attach_profile(&mut ctx, &sampler.profile);
    println!(
        "{} functions discovered, {} simple; profile accuracy {:.1}%",
        ctx.functions.len(),
        simple,
        stats.accuracy() * 100.0
    );

    // Dump the hottest profiled function, Figure 4 style.
    let hottest = ctx
        .simple_functions_by_hotness()
        .into_iter()
        .next()
        .expect("at least one hot function");
    println!(
        "\n{}",
        dump_function(
            &ctx.functions[hottest],
            Some(&ctx.lines),
            DumpOptions {
                print_debug_info: true
            }
        )
    );

    // Bad-layout report (Figure 10).
    println!("{}", bad_layout_report(&ctx, false));
    Ok(())
}
