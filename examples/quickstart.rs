//! Quickstart: build a small program, profile it, BOLT it, and verify the
//! result behaves identically while taking fewer taken branches.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bolt::compiler::{
    compile_and_link, BinOp, CmpOp, CompileOptions, FunctionBuilder, MirProgram, Operand, Rvalue,
};
use bolt::emu::{Machine, NullSink};
use bolt::opt::{optimize, BoltOptions};
use bolt::profile::{LbrSampler, SampleTrigger};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a deliberately bad layout: the hot loop arm is second
    // in source order, so the baseline takes a branch every iteration.
    let mut p = MirProgram::with_entry("main");
    let mut f = FunctionBuilder::new("main", 0, "main.c", 0);
    let sum = f.new_local();
    let i = f.new_local();
    f.assign_to(sum, Rvalue::Use(Operand::Const(0)));
    f.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let head = f.goto_new();
    f.switch_to(head);
    let c = f.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(200_000));
    let (body, done) = f.branch(Operand::Local(c));
    f.switch_to(body);
    // Rare path first (pessimal source order).
    let bits = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(i),
        Operand::Const(1023),
    ));
    let rare = f.assign_cmp(CmpOp::Eq, Operand::Local(bits), Operand::Const(0));
    let (rare_bb, hot_bb) = f.branch(Operand::Local(rare));
    let cont = f.new_block();
    f.switch_to(rare_bb);
    f.assign_to(
        sum,
        Rvalue::BinOp(BinOp::Add, Operand::Local(sum), Operand::Const(100)),
    );
    f.goto(cont);
    f.switch_to(hot_bb);
    f.assign_to(
        sum,
        Rvalue::BinOp(BinOp::Add, Operand::Local(sum), Operand::Const(1)),
    );
    f.goto(cont);
    f.switch_to(cont);
    f.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    f.goto(head);
    f.switch_to(done);
    f.emit(Operand::Local(sum));
    let code = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(sum),
        Operand::Const(0x7F),
    ));
    f.ret(Operand::Local(code));
    p.add_function(f.finish());

    // Compile and run with LBR sampling (the perf-record step).
    let binary = compile_and_link(&p, &CompileOptions::default())?;
    let mut m = Machine::new();
    m.load_elf(&binary.elf);
    let mut sampler = LbrSampler::new(199, SampleTrigger::Instructions);
    m.run(&mut sampler, 1_000_000_000)?;
    println!(
        "profiled {} samples, {} distinct branch edges",
        sampler.profile.num_samples,
        sampler.profile.branches.len()
    );

    // BOLT it with the paper's options.
    let bolted = optimize(&binary.elf, &sampler.profile, &BoltOptions::paper_default())?;
    println!("\nper-pass activity:");
    for r in &bolted.pipeline.reports {
        if r.changes > 0 {
            println!("  {:<20} {}", r.name, r.changes);
        }
    }

    // The rewritten binary behaves identically.
    let mut m2 = Machine::new();
    m2.load_elf(&bolted.elf);
    m2.run(&mut NullSink, 1_000_000_000)?;
    assert_eq!(m.output, m2.output, "BOLT must preserve semantics");

    println!(
        "\ntaken branches (dyno stats): {} -> {} ({:+.1}%)",
        bolted.dyno_before.taken_branches,
        bolted.dyno_after.taken_branches,
        bolted.dyno_after.taken_branch_delta(&bolted.dyno_before)
    );
    println!("output preserved: {:?}", m2.output);
    Ok(())
}
