//! Data-center scenario: the Figure 5 flow on one workload — baseline
//! with HFSort at link time, then BOLT on top, measured with the
//! microarchitectural model.
//!
//! ```sh
//! cargo run --release --example datacenter
//! ```

use bolt::compiler::CompileOptions;
use bolt::emu::{Machine, Tee};
use bolt::opt::{optimize, BoltOptions};
use bolt::profile::{attach_profile, LbrSampler, SampleTrigger};
use bolt::sim::{Counters, CpuModel, SimConfig};
use bolt::workloads::{Scale, Workload};

fn run(elf: &bolt::elf::Elf, cfg: &SimConfig) -> (Vec<i64>, Counters) {
    let mut m = Machine::new();
    m.load_elf(elf);
    let mut model = CpuModel::new(cfg.clone());
    m.run(&mut model, u64::MAX).expect("runs");
    (m.output, model.counters())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::server();
    let wl = Workload::Tao;
    println!("workload: {} (test scale)", wl.name());
    let program = wl.build(Scale::Test);

    // Train, derive the HFSort link order, rebuild the baseline.
    let plain = bolt::compiler::compile_and_link(&program, &CompileOptions::default())?;
    let mut m = Machine::new();
    m.load_elf(&plain.elf);
    let mut sampler = LbrSampler::new(997, SampleTrigger::Instructions);
    m.run(&mut sampler, u64::MAX)?;
    let (mut ctx, raw) = bolt::opt::discover(&plain.elf);
    bolt::opt::disassemble_all(&mut ctx, &raw, &plain.elf);
    attach_profile(&mut ctx, &sampler.profile);
    let order = bolt::passes::reorder_functions::run_reorder_functions(
        &ctx,
        bolt::hfsort::Algorithm::Hfsort,
    );
    let names: Vec<String> = order
        .iter()
        .map(|&i| ctx.functions[i].name.clone())
        .collect();
    let baseline = bolt::compiler::compile_and_link(
        &program,
        &CompileOptions {
            function_order: Some(names),
            ..CompileOptions::default()
        },
    )?;

    // Profile the baseline and BOLT it.
    let mut m = Machine::new();
    m.load_elf(&baseline.elf);
    let mut sampler = LbrSampler::new(997, SampleTrigger::Instructions);
    let mut model = CpuModel::new(cfg.clone());
    {
        let mut tee = Tee(&mut sampler, &mut model);
        m.run(&mut tee, u64::MAX)?;
    }
    let base = model.counters();
    let bolted = optimize(
        &baseline.elf,
        &sampler.profile,
        &BoltOptions::paper_default(),
    )?;
    let (out, new) = run(&bolted.elf, &cfg);
    assert_eq!(out, m.output, "semantics preserved");

    println!(
        "{:<16} {:>14} {:>14} {:>10}",
        "metric", "baseline", "BOLT", "reduction"
    );
    for (name, b, n) in [
        ("cycles", base.cycles as u64, new.cycles as u64),
        ("L1I misses", base.l1i_misses, new.l1i_misses),
        ("iTLB misses", base.itlb_misses, new.itlb_misses),
        (
            "branch misses",
            base.branch_mispredicts,
            new.branch_mispredicts,
        ),
        ("LLC misses", base.llc_misses, new.llc_misses),
    ] {
        println!(
            "{:<16} {:>14} {:>14} {:>9.1}%",
            name,
            b,
            n,
            Counters::reduction(b, n)
        );
    }
    println!("speedup: {:.2}%", base.speedup_over(&new));
    Ok(())
}
